// Section 5.2 example: "Measuring the SUN NFS".
//
// Reproduces the paper's measurement study as a runnable application: sweep
// the number of simultaneous users and the population mix, measure response
// times on the simulated SUN NFS, and print the resulting load/latency
// profile — the data behind Figures 5.6-5.11.
//
// Run:  ./measure_nfs [max_users] [sessions_per_user]

#include <cstdlib>
#include <iostream>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

namespace {

using namespace wlgen;

struct Measurement {
  double response_per_byte = 0.0;
  double mean_response = 0.0;
  double disk_utilization = 0.0;
  double client_hit_ratio = 0.0;
};

Measurement measure(const core::Population& population, std::size_t users,
                    std::size_t sessions) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);

  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
  usim.run();

  const core::UsageAnalyzer analyzer(usim.log());
  Measurement m;
  m.response_per_byte = analyzer.response_per_byte_us();
  m.mean_response = analyzer.response_stats().mean();
  m.disk_utilization = nfs.server_disk().utilization();
  m.client_hit_ratio = nfs.client_cache().hit_ratio();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlgen;
  const std::size_t max_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t sessions = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 25;

  const std::vector<std::pair<std::string, core::Population>> mixes = {
      {"100% heavy", core::mixed_population(1.0)},
      {"50% heavy / 50% light", core::mixed_population(0.5)},
      {"100% light", core::mixed_population(0.0)},
  };

  for (const auto& [name, population] : mixes) {
    std::cout << "=== population: " << name << " ===\n";
    util::TextTable table(
        {"users", "resp/byte us", "mean resp us", "server disk util", "client hit ratio"});
    for (std::size_t users = 1; users <= max_users; ++users) {
      const Measurement m = measure(population, users, sessions);
      table.add_row({std::to_string(users), util::TextTable::num(m.response_per_byte, 3),
                     util::TextTable::num(m.mean_response, 0),
                     util::TextTable::num(m.disk_utilization, 2),
                     util::TextTable::num(m.client_hit_ratio, 3)});
    }
    std::cout << table.render() << "\n";
  }
  std::cout << "Interpretation (paper section 5.2): response grows with simultaneous\n"
               "users as the shared server disk saturates; the heavy and light mixes\n"
               "land close together because a 5 ms think time is already long relative\n"
               "to the response-time variance.\n";
  return 0;
}
