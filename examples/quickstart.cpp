// Quickstart: the full pipeline of the paper's generator in ~60 lines.
//
//   1. specify distributions  (GDS        -> core/spec.h, core/presets.h)
//   2. create a file system   (FSC        -> core/fsc.h)
//   3. simulate users         (USIM       -> core/usim.h)
//   4. analyze the usage log  (Analyzer   -> core/analysis.h)
//
// Run:  ./quickstart [num_users] [sessions_per_user]

#include <cstdlib>
#include <iostream>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wlgen;

  const std::size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
  const std::size_t sessions = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

  // A simulated clock, a logical file system, and the SUN-NFS-like model the
  // paper measures (client caches + Ethernet + server CPU/disk).
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);

  // FSC: build the initial file system from the paper's Table 5.1 profile.
  core::FscConfig fsc_config;
  fsc_config.num_users = num_users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  std::cout << "FSC created " << manifest.file_count() << " files ("
            << fsys.bytes_in_use() / 1024 << " KiB)\n";

  // USIM: the paper's default population (heavy users, exp(5000) us think
  // time, exp(1024) B access size, Table 5.2 usage distributions).
  core::UsimConfig usim_config;
  usim_config.num_users = num_users;
  usim_config.sessions_per_user = sessions;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(),
                           usim_config);
  usim.run();

  // Usage Analyzer: Table 5.3-style output.
  const core::UsageAnalyzer analyzer(usim.log());
  const auto access = analyzer.access_size_stats();
  const auto response = analyzer.response_stats();

  util::TextTable table({"metric", "value"});
  table.add_row({"users", std::to_string(num_users)});
  table.add_row({"sessions completed", std::to_string(usim.sessions_completed())});
  table.add_row({"system calls issued", std::to_string(usim.total_ops())});
  table.add_row({"access size mean(std) B", access.mean_std_string()});
  table.add_row({"response mean(std) us", response.mean_std_string()});
  table.add_row({"response per byte us/B", util::TextTable::num(analyzer.response_per_byte_us(), 4)});
  table.add_row({"simulated time s", util::TextTable::num(simulation.now() / 1e6, 2)});
  std::cout << "\n" << table.render() << "\n" << nfs.stats_summary();
  return 0;
}
