// GDS example: fitting distributions to measured data.
//
// Simulates the workflow of the paper's Graphic Distribution Specifier:
// take raw observations (here: synthetic "measured" file sizes with two
// behaviour modes), fit the paper's two parametric families plus a plain
// exponential, compare goodness-of-fit with the Kolmogorov-Smirnov test, and
// render the winner — all without X11, as the paper's fallback mode does.
//
// Run:  ./fit_distributions

#include <iostream>

#include "core/spec.h"
#include "dist/fitting.h"
#include "dist/tabulated.h"
#include "stats/tests.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wlgen;

  // "Measured" data: small config files plus occasional big documents —
  // the bimodal shape real file-size traces show.
  util::RngStream rng(2026, "fit-example");
  std::vector<double> sizes;
  for (int i = 0; i < 3000; ++i) sizes.push_back(rng.exponential(900.0));
  for (int i = 0; i < 1200; ++i) sizes.push_back(15000.0 + rng.gamma(2.0, 6000.0));

  core::DistributionSpecifier gds;
  const auto exp_fit = gds.fit("exp", sizes, core::DistributionSpecifier::Family::exponential);
  const auto phase_fit =
      gds.fit("phase", sizes, core::DistributionSpecifier::Family::phase_exponential, 2);
  const auto gamma_fit =
      gds.fit("gamma", sizes, core::DistributionSpecifier::Family::multistage_gamma, 2);

  util::TextTable table({"family", "fitted mean", "data mean", "KS statistic", "KS p-value"});
  const double data_mean = dist::sample_mean(sizes);
  for (const auto& [name, d] : {std::pair<std::string, core::DistRef>{"exponential", exp_fit},
                                {"phase-type exponential (2)", phase_fit},
                                {"multi-stage gamma (2)", gamma_fit}}) {
    const auto ks = stats::ks_test(sizes, *d);
    table.add_row({name, util::TextTable::num(d->mean(), 0),
                   util::TextTable::num(data_mean, 0), util::TextTable::num(ks.statistic, 4),
                   util::TextTable::num(ks.p_value, 4)});
  }
  std::cout << table.render() << "\n";

  std::cout << "Fitted phase-type spec (parseable, feed it back via load_spec_text):\n  "
            << core::serialize_distribution(*phase_fit) << "\n\n";
  std::cout << gds.render_ascii("phase") << "\n";

  // Emit the CDF table the FSC/USIM would consume (paper Figure 4.1 arrow).
  const auto cdf = gds.cdf_table("phase", 16);
  std::cout << "16-point CDF table (x F):\n" << cdf.serialize() << "\n";
  std::cout << "A single exponential cannot express the two modes (low KS p-value);\n"
               "the mixture families can — the reason the GDS supports them.\n";
  return 0;
}
