// Population-design example: the "what if the user mix changes?" question
// the paper's user-oriented model exists to answer (sections 1 and 5.3).
//
// Sweeps the heavy-user share of a six-user population from 0% to 100% and
// reports the measured NFS response profile, plus one future-work variant:
// the same sweep with each user running two concurrent login sessions (the
// section 6.2 "window system" extension).
//
// Run:  ./population_sweep [sessions]

#include <cstdlib>
#include <iostream>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

namespace {

using namespace wlgen;

double sweep_point(double heavy_fraction, std::size_t windows, std::size_t sessions) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  fsc_config.num_users = 6;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig config;
  config.num_users = 6;
  config.sessions_per_user = sessions;
  config.windows_per_user = windows;
  core::UserSimulator usim(simulation, fsys, nfs, manifest,
                           core::mixed_population(heavy_fraction), config);
  usim.run();
  return core::UsageAnalyzer(usim.log()).response_per_byte_us();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlgen;
  const std::size_t sessions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15;

  util::TextTable table({"heavy users", "resp/byte us (1 window)", "resp/byte us (2 windows)"});
  for (double f : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    table.add_row({util::TextTable::num(f * 100.0, 0) + "%",
                   util::TextTable::num(sweep_point(f, 1, sessions), 3),
                   util::TextTable::num(sweep_point(f, 2, sessions), 3)});
  }
  std::cout << table.render();
  std::cout << "\nReading: with one window per user the mix barely moves the response\n"
               "profile (the Figures 5.7-5.11 observation).  Doubling the windows per\n"
               "user doubles the offered load at fixed headcount — the kind of question\n"
               "(\"what if everyone gets a window system?\") trace replay cannot answer\n"
               "but a user-oriented generator can.\n";
  return 0;
}
