// Population-design example: the "what if the user mix changes?" question
// the paper's user-oriented model exists to answer (sections 1 and 5.3).
//
// Sweeps the heavy-user share of a twelve-user population from 0% to 100%
// through runner::ShardedRunner — every user an independent workstation
// universe, partitioned over 4 Simulation shards on a worker pool, with the
// per-user results merged deterministically (the same sweep on 1 shard or
// 40 is bit-identical; see DESIGN.md "Sharded runner").  Also reports the
// section 6.2 "window system" variant: two concurrent login sessions per
// user.
//
// Semantics note: under the sharded runner users do NOT queue against each
// other — each response profile is one user against their own machine.  For
// the shared-machine contention regime of Figures 5.6-5.11 (cross-user
// queueing on one server), use the single-Simulation path instead:
// examples/measure_nfs.cpp or `wlgen run` without --shards.
//
// Run:  ./population_sweep [sessions]

#include <cstdlib>
#include <iostream>

#include "core/presets.h"
#include "runner/sharded_runner.h"
#include "util/table.h"

namespace {

using namespace wlgen;

constexpr std::size_t kUsers = 12;

double sweep_point(double heavy_fraction, std::size_t windows, std::size_t sessions) {
  runner::RunnerConfig config;
  config.num_users = kUsers;
  config.shards = 4;
  config.usim.sessions_per_user = sessions;
  config.usim.windows_per_user = windows;
  config.population = core::mixed_population(heavy_fraction);
  config.collect_log = false;  // the mergeable aggregates are all we need
  runner::ShardedRunner run(std::move(config));
  return run.run().stats.response_per_byte_us();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wlgen;
  const std::size_t sessions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15;

  util::TextTable table({"heavy users", "resp/byte us (1 window)", "resp/byte us (2 windows)"});
  for (double f : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    table.add_row({util::TextTable::num(f * 100.0, 0) + "%",
                   util::TextTable::num(sweep_point(f, 1, sessions), 3),
                   util::TextTable::num(sweep_point(f, 2, sessions), 3)});
  }
  std::cout << table.render();
  std::cout << "\nReading: with one window per user the mix barely moves each user's\n"
               "response profile (the Figures 5.7-5.11 observation).  Doubling the\n"
               "windows per user doubles the load every user offers their own\n"
               "workstation - the kind of question (\"what if everyone gets a window\n"
               "system?\") trace replay cannot answer but a user-oriented generator\n"
               "can.  The sweep runs through the sharded runner: add users or threads\n"
               "and the numbers stay bit-identical while the wall clock shrinks.\n";
  return 0;
}
