// Section 5.3 example: "Comparing Different File Systems".
//
// Walks the paper's six-step comparison procedure end to end:
//   1. obtain usage distributions        (here: the Table 5.1/5.2 presets —
//      with a real system you would fit traces via the GDS, see
//      fit_distributions.cpp)
//   2. generate CDF tables with the GDS
//   3. build an artificial file system with the FSC
//   4. run the USIM against candidate file system A, measure
//   5. repeat for candidates B, C with everything else unchanged
//   6. compare
//
// Run:  ./compare_filesystems [users] [sessions]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/spec.h"
#include "core/usim.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wlgen;
  const std::size_t users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::size_t sessions = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;

  // Step 1+2 — usage distributions through the GDS.  Loading them through
  // the spec DSL here demonstrates where site-specific measurements plug in.
  core::DistributionSpecifier gds;
  gds.load_spec_text(
      "think_time  = exp(theta=5000)\n"
      "access_size = exp(theta=1024)\n");
  std::cout << "GDS distributions:\n" << gds.serialize() << "\n";
  core::UserType user_type = core::heavy_user();
  user_type.think_time_us = gds.get("think_time");
  user_type.access_size_bytes = gds.get("access_size");
  core::Population population;
  population.groups.push_back({user_type, 1.0});
  population.validate_and_normalize();

  // Steps 3-5 — identical FSC + USIM against each candidate model.
  struct Candidate {
    std::string name;
    std::function<std::unique_ptr<fsmodel::FileSystemModel>(sim::Simulation&)> make;
  };
  const std::vector<Candidate> candidates = {
      {"SUN NFS", [](sim::Simulation& s) { return std::make_unique<fsmodel::NfsModel>(s); }},
      {"local disk",
       [](sim::Simulation& s) { return std::make_unique<fsmodel::LocalDiskModel>(s); }},
      {"whole-file cache",
       [](sim::Simulation& s) { return std::make_unique<fsmodel::WholeFileCacheModel>(s); }},
  };

  util::TextTable table({"candidate", "resp/byte us", "mean resp us", "p95-ish max resp ms",
                         "syscalls"});
  for (const auto& candidate : candidates) {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    fsys.set_clock([&simulation] { return simulation.now(); });
    auto model = candidate.make(simulation);

    core::FscConfig fsc_config;
    fsc_config.num_users = users;
    core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
    const core::CreatedFileSystem manifest = fsc.create();

    core::UsimConfig config;
    config.num_users = users;
    config.sessions_per_user = sessions;
    core::UserSimulator usim(simulation, fsys, *model, manifest, population, config);
    usim.run();

    const core::UsageAnalyzer analyzer(usim.log());
    const auto response = analyzer.response_stats();
    table.add_row({candidate.name, util::TextTable::num(analyzer.response_per_byte_us(), 3),
                   util::TextTable::num(response.mean(), 0),
                   util::TextTable::num(response.max() / 1000.0, 1),
                   std::to_string(usim.total_ops())});
    std::cout << "--- " << candidate.name << " ---\n" << model->stats_summary() << "\n";
  }

  // Step 6 — compare.
  std::cout << table.render();
  std::cout << "\nThe right choice depends on the workload: rerun with a different\n"
               "population (edit the GDS spec above) and the ranking can flip — the\n"
               "paper's argument for workload-driven file system selection.\n";
  return 0;
}
