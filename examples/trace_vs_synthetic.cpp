// Trace data vs the synthetic generator — the paper's section 2.1 trade-off
// as a runnable demonstration.
//
// Records a 2-user trace on the NFS model, then tries to answer "what
// happens with 4 users?" two ways:
//   (a) trace replay: the honest best a trace can do is replay what it
//       recorded (it cannot invent users it never saw);
//   (b) the user-oriented generator: regenerate from the characterisation
//       with num_users = 4.
// It also validates the generated workload against its own specification
// (the paper's "statistical tests of similarity" objective).
//
// Run:  ./trace_vs_synthetic

#include <iostream>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/usim.h"
#include "core/validation.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

namespace {

using namespace wlgen;

core::UsageLog generate(std::size_t users, std::size_t sessions) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsModel nfs(simulation);
  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(), config);
  usim.run();
  return usim.log();
}

}  // namespace

int main() {
  using namespace wlgen;
  std::cout << "Recording a 2-user, 20-session trace on the NFS model...\n";
  const core::UsageLog trace = generate(2, 20);
  const core::UsageAnalyzer trace_analyzer(trace);

  // (a) Trace replay: stuck with the 2 recorded users.
  sim::Simulation replay_sim;
  fsmodel::NfsModel replay_model(replay_sim);
  core::TraceReplayer replayer(replay_sim, replay_model, trace);
  core::TraceReplayer::Options options;
  options.preserve_timing = false;
  const core::UsageLog replayed = replayer.run(options);
  const core::UsageAnalyzer replay_analyzer(replayed);

  // (b) The generator: same characterisation, four users.
  const core::UsageLog synthetic = generate(4, 20);
  const core::UsageAnalyzer synthetic_analyzer(synthetic);

  util::TextTable table({"workload source", "users", "resp/byte us", "mean resp us"});
  table.add_row({"recorded trace", "2", util::TextTable::num(trace_analyzer.response_per_byte_us(), 3),
                 util::TextTable::num(trace_analyzer.response_stats().mean(), 0)});
  table.add_row({"trace replay (closed loop)", "2 (stuck)",
                 util::TextTable::num(replay_analyzer.response_per_byte_us(), 3),
                 util::TextTable::num(replay_analyzer.response_stats().mean(), 0)});
  table.add_row({"synthetic generator", "4",
                 util::TextTable::num(synthetic_analyzer.response_per_byte_us(), 3),
                 util::TextTable::num(synthetic_analyzer.response_stats().mean(), 0)});
  std::cout << "\n" << table.render();

  std::cout << "\nThe trace replays faithfully — and only ever with the population it\n"
               "recorded (paper 2.1: \"it is not usually possible to arbitrarily modify\n"
               "the data to produce other kinds of workloads, such as one representing\n"
               "a different number of users\").  The generator answers the 4-user\n"
               "question directly.\n";

  std::cout << "\nValidating the synthetic workload against its specification:\n";
  const core::ValidationReport report =
      core::validate_log(synthetic, core::heavy_user());
  std::cout << report.render();
  std::cout << (report.all_passed() ? "\nAll similarity checks passed.\n"
                                    : "\nSome checks failed - see table.\n");
  return 0;
}
