#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in compile_commands.json.  Part of the `lint` CMake
# target and CI's lint job; tolerant of clang-tidy being absent because the
# local container image may ship gcc only — CI always installs it, so a
# skip here can never hide a violation from the gate.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not installed — skipping (CI runs it; install" \
       "clang-tidy to reproduce the lint job locally)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

# run-clang-tidy parallelises when available; otherwise loop serially over
# the repo's own sources (dependencies fetched into the build tree are not
# ours to lint).
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
  "$RUNNER" -p "$BUILD_DIR" -quiet "^$ROOT/(src|tests|bench|examples)/.*"
else
  status=0
  while IFS= read -r file; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$file" || status=1
  done < <(python3 -c "
import json, sys
for entry in json.load(open('$BUILD_DIR/compile_commands.json')):
    f = entry['file']
    if f.startswith('$ROOT/src/') or f.startswith('$ROOT/tests/') \
       or f.startswith('$ROOT/bench/') or f.startswith('$ROOT/examples/'):
        print(f)
")
  exit $status
fi
