// Figure 5.11 — average response time per byte, 100% light I/O users
// (exp(20000) us think time).  Paper: "the average response times in these
// figures are similar; that means a 5000-microsecond think time is not much
// different from a 20000-microsecond think time."

#include "core/presets.h"
#include "experiments.h"
#include "common/response.h"

namespace wlgen::bench {

exp::Experiment make_fig5_11() {
  using exp::Verdict;
  return response_experiment(
      "fig5_11", "Figure 5.11", "response time per byte, 100% light I/O users",
      core::mixed_population(0.0),
      "similar average level to Figures 5.7-5.10 (paper section 5.2)",
      {
          exp::expect_monotonic_up("response", 0.25, Verdict::fail,
                                   "response per byte still grows with users"),
          exp::expect_final_in_range("response", 1.0, 3.5, Verdict::warn,
                                     "paper level: similar to Figures 5.7-5.10"),
          exp::expect_final_in_range("response", 0.5, 8.0, Verdict::fail,
                                     "sanity band for the think-time-paced regime"),
          exp::expect_scalar_in_range("growth_ratio", 1.0, 4.0, Verdict::fail,
                                      "the lightest population grows most gently"),
      });
}

}  // namespace wlgen::bench
