// Figure 5.11 — average response time per byte, 100% light I/O users
// (exp(20000) us think time).  Paper: "the average response times in these
// figures are similar; that means a 5000-microsecond think time is not much
// different from a 20000-microsecond think time."

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  bench::run_response_figure("Figure 5.11", "response time per byte, 100% light I/O users",
                             core::mixed_population(0.0),
                             "similar average level to Figures 5.7-5.10 (paper section 5.2)");
  return 0;
}
