// Ablation — smoothing sensitivity for Figures 5.3-5.5.
//
// The paper shows each session histogram "before and after smoothing" but
// does not document the smoother.  This bench sweeps moving-average windows
// and Gaussian bandwidths on the Figure 5.3 histogram and reports how far
// the smoothed shape drifts from the raw one (L1 distance and mode shift),
// so a user can pick a smoother and know its cost.

#include <cmath>
#include <iostream>

#include "common/figures.h"
#include "util/table.h"

namespace {

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total_a = 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::fabs(a[i] - b[i]);
    total_a += a[i];
  }
  return total_a > 0.0 ? d / total_a : 0.0;
}

std::size_t mode_bin(const std::vector<double>& counts) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return best;
}

}  // namespace

int main() {
  using namespace wlgen;
  bench::print_header("Ablation — smoothing window sensitivity (Figure 5.3 input)",
                      "paper smooths Figs 5.3-5.5 without specifying the smoother");

  const bench::ExperimentOutput out = bench::characterisation_run(400);
  const core::UsageAnalyzer analyzer(out.log);
  const auto histogram = analyzer.session_access_per_byte_histogram(30);
  const auto raw = histogram.counts();
  const std::size_t raw_mode = mode_bin(raw);

  util::TextTable table({"smoother", "parameter", "L1 drift (frac of mass)", "mode shift (bins)"});
  for (double window : {3.0, 5.0, 9.0}) {
    const auto s = stats::smooth_histogram(histogram, stats::SmoothingKind::moving_average,
                                           window);
    table.add_row({"moving average", util::TextTable::num(window, 0),
                   util::TextTable::num(l1_distance(raw, s.counts()), 3),
                   std::to_string(static_cast<long long>(mode_bin(s.counts())) -
                                  static_cast<long long>(raw_mode))});
  }
  for (double sigma : {0.75, 1.5, 3.0}) {
    const auto s = stats::smooth_histogram(histogram, stats::SmoothingKind::gaussian, sigma);
    table.add_row({"gaussian", util::TextTable::num(sigma, 2),
                   util::TextTable::num(l1_distance(raw, s.counts()), 3),
                   std::to_string(static_cast<long long>(mode_bin(s.counts())) -
                                  static_cast<long long>(raw_mode))});
  }
  std::cout << table.render();
  std::cout << "\nReading: small windows (3-bin MA, sigma<=1.5) keep the mode in place and\n"
               "move <20% of the mass — safe for the paper's visual use.  Wide windows\n"
               "start erasing the skew that distinguishes Figure 5.3's shape.\n";
  return 0;
}
