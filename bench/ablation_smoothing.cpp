// Ablation — smoothing sensitivity for Figures 5.3-5.5.
//
// The paper shows each session histogram "before and after smoothing" but
// does not document the smoother.  This experiment sweeps moving-average
// windows and Gaussian bandwidths on the Figure 5.3 histogram and grades how
// far the smoothed shape drifts from the raw one (L1 distance and mode
// shift), so a user can pick a smoother and know its cost.

#include <cmath>

#include "core/analysis.h"
#include "exp/workload.h"
#include "experiments.h"
#include "stats/smoothing.h"

namespace wlgen::bench {

namespace {

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double total_a = 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::fabs(a[i] - b[i]);
    total_a += a[i];
  }
  return total_a > 0.0 ? d / total_a : 0.0;
}

std::size_t mode_bin(const std::vector<double>& counts) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return best;
}

}  // namespace

exp::Experiment make_ablation_smoothing() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "ablation_smoothing";
  experiment.title = "smoothing window sensitivity (Figure 5.3 input)";
  experiment.paper_claim = "paper smooths Figs 5.3-5.5 without specifying the smoother";
  experiment.expectations = {
      exp::expect_monotonic_up("L1 drift moving average", 0.0, Verdict::fail,
                               "wider windows must move more mass, monotonically"),
      exp::expect_monotonic_up("L1 drift gaussian", 0.0, Verdict::fail,
                               "larger bandwidths must move more mass, monotonically"),
      exp::expect_scalar_in_range("drift_ma_3", 0.0, 0.25, Verdict::fail,
                                  "the default 3-bin window is safe for the paper's "
                                  "visual use (<25% of mass moved)"),
      exp::expect_scalar_in_range("mode_shift_ma_3_bins", -2.0, 2.0, Verdict::fail,
                                  "small windows keep the Figure 5.3 mode in place"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const exp::WorkloadOutput& out = exp::characterisation_run(ctx.sessions(400), ctx.seed);
    const core::UsageAnalyzer analyzer(out.log);
    const stats::Histogram histogram = analyzer.session_access_per_byte_histogram(30);
    const std::vector<double>& raw = histogram.counts();
    const std::size_t raw_mode = mode_bin(raw);

    exp::ExperimentResult result;
    result.x_label = "smoother parameter (window bins / sigma bins)";
    result.y_label = "L1 drift (fraction of mass)";
    std::vector<double> ma_xs, ma_drift;
    for (const double window : {3.0, 5.0, 9.0}) {
      const stats::Histogram s =
          stats::smooth_histogram(histogram, stats::SmoothingKind::moving_average, window);
      ma_xs.push_back(window);
      ma_drift.push_back(l1_distance(raw, s.counts()));
      if (window == 3.0) {
        result.set_scalar("drift_ma_3", ma_drift.back());
        result.set_scalar("mode_shift_ma_3_bins",
                          static_cast<double>(mode_bin(s.counts())) -
                              static_cast<double>(raw_mode));
      }
    }
    result.add_series("L1 drift moving average", std::move(ma_xs), std::move(ma_drift));

    std::vector<double> g_xs, g_drift;
    for (const double sigma : {0.75, 1.5, 3.0}) {
      const stats::Histogram s =
          stats::smooth_histogram(histogram, stats::SmoothingKind::gaussian, sigma);
      g_xs.push_back(sigma);
      g_drift.push_back(l1_distance(raw, s.counts()));
    }
    result.add_series("L1 drift gaussian", std::move(g_xs), std::move(g_drift));
    result.notes.push_back(
        "Small windows (3-bin MA, sigma <= 1.5) keep the mode in place and "
        "move a bounded share of the mass — safe for the paper's visual use.  "
        "Wide windows start erasing the skew that distinguishes Figure 5.3.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
