// Figure 5.2 — examples of multi-stage gamma distributions.

#include <iostream>

#include "common/experiment.h"
#include "core/spec.h"
#include "dist/multistage_gamma.h"
#include "util/ascii_plot.h"
#include "util/numeric.h"
#include "util/svg.h"

int main() {
  using namespace wlgen;
  bench::print_header("Figure 5.2 — examples of multi-stage gamma distributions",
                      "g(1.5,25.4,x-12); 0.7g(1.4,12.4,x)+0.2g(1.5,12.4,x-23)+0.1g(...,x-41)");

  const std::vector<std::pair<std::string, dist::MultiStageGamma>> panels = {
      {"panel (a): single gamma", dist::MultiStageGamma::paper_example_a()},
      {"panel (b): f(x) = g(1.5, 25.4, x - 12)", dist::MultiStageGamma::paper_example_b()},
      {"panel (c): f(x) = 0.7g(1.4,12.4,x) + 0.2g(1.5,12.4,x-23) + 0.1g(1.5,12.3,x-41)",
       dist::MultiStageGamma::paper_example_c()},
  };

  core::DistributionSpecifier gds;
  for (const auto& [title, d] : panels) {
    util::PlotOptions options;
    options.title = title;
    options.x_label = "x (0..100, as in the paper)";
    options.y_label = "f(x)";
    options.height = 12;
    std::cout << util::ascii_function([&](double x) { return d.pdf(x); }, 0.0, 100.0, 96,
                                      options)
              << "\n";
    const double mass =
        util::simpson([&](double x) { return d.pdf(x); }, 0.0, 2000.0, 20000);
    std::cout << "  mass on [0,inf) ~= " << mass << "   mean = " << d.mean()
              << "   spec: " << core::serialize_distribution(d) << "\n\n";
  }

  util::SvgOptions svg_options;
  svg_options.title = "Figure 5.2: multi-stage gamma examples";
  svg_options.x_label = "x";
  svg_options.y_label = "f(x)";
  std::vector<util::SvgSeries> series;
  const std::vector<std::string> colors = {"#1f77b4", "#d62728", "#2ca02c"};
  for (std::size_t i = 0; i < panels.size(); ++i) {
    util::SvgSeries s;
    s.label = "panel " + std::string(1, static_cast<char>('a' + i));
    s.color = colors[i];
    for (double x = 0.0; x <= 100.0; x += 0.5) {
      s.xs.push_back(x);
      s.ys.push_back(panels[i].second.pdf(x));
    }
    series.push_back(std::move(s));
  }
  const std::string path = bench::write_artifact("fig5_2.svg", util::svg_plot(series, svg_options));
  if (!path.empty()) std::cout << "SVG written to " << path << "\n";
  return 0;
}
