// Figure 5.2 — examples of multi-stage gamma distributions.
//
// Same invariants as Figure 5.1 for the gamma family: unit mass and the
// analytic means of the published example mixtures.

#include "dist/multistage_gamma.h"
#include "experiments.h"
#include "util/numeric.h"

namespace wlgen::bench {

exp::Experiment make_fig5_2() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_2";
  experiment.artifact = "Figure 5.2";
  experiment.title = "examples of multi-stage gamma distributions";
  experiment.paper_claim =
      "g(1.5,25.4,x-12); 0.7g(1.4,12.4,x)+0.2g(1.5,12.4,x-23)+0.1g(1.5,12.3,x-41)";
  for (const char* panel : {"a", "b", "c"}) {
    experiment.expectations.push_back(exp::expect_scalar_in_range(
        std::string("mass_") + panel, 0.98, 1.02, Verdict::fail,
        "each panel's density must integrate to one"));
  }
  experiment.expectations.push_back(exp::expect_scalar_in_range(
      "mean_b", 48.0, 52.0, Verdict::fail,
      "panel (b) is g(1.5, 25.4, x-12): analytic mean 1.5*25.4+12 = 50.1"));

  experiment.run = [](const exp::RunContext&) {
    const std::vector<std::pair<std::string, dist::MultiStageGamma>> panels = {
        {"a", dist::MultiStageGamma::paper_example_a()},
        {"b", dist::MultiStageGamma::paper_example_b()},
        {"c", dist::MultiStageGamma::paper_example_c()},
    };
    exp::ExperimentResult result;
    result.x_label = "x (0..100, as in the paper)";
    result.y_label = "f(x)";
    for (const auto& [panel, d] : panels) {
      std::vector<double> xs, ys;
      for (double x = 0.0; x <= 100.0; x += 0.5) {
        xs.push_back(x);
        ys.push_back(d.pdf(x));
      }
      result.add_series("panel " + panel, std::move(xs), std::move(ys));
      result.set_scalar("mass_" + panel,
                        util::simpson([&](double x) { return d.pdf(x); }, 0.0, 2000.0, 20000));
      result.set_scalar("mean_" + panel, d.mean());
    }
    result.notes.push_back(
        "The gamma family adds a shape knob alpha over Figure 5.1's exponential "
        "stages; stage offsets again compose multi-modal densities.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
