// Figure 5.3 — distribution of average access-per-byte over 600 login
// sessions, before and after smoothing.
//
// Paper shape: a right-skewed histogram with its mode near 1-2 accesses per
// byte and a tail out to ~7.

#include "core/analysis.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_fig5_3() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_3";
  experiment.artifact = "Figure 5.3";
  experiment.title = "average access-per-byte over 600 login sessions";
  experiment.paper_claim = "right-skewed, mode ~1-2, tail to ~7 accesses per byte";
  experiment.expectations = {
      exp::expect_scalar_in_range("mean_access_per_byte", 1.5, 3.0, Verdict::warn,
                                  "paper: mass concentrated between 1 and ~3"),
      exp::expect_scalar_in_range("mean_access_per_byte", 0.5, 5.0, Verdict::fail,
                                  "sanity band for the characterisation run"),
      exp::expect_scalar_in_range("mode_center", 0.0, 4.0, Verdict::fail,
                                  "paper: the mode sits near 1-2 accesses per byte"),
      exp::expect_scalar_in_range("fraction_below_3", 0.55, 1.0, Verdict::fail,
                                  "paper: the bulk of the mass lies below ~3"),
      exp::expect_scalar_in_range("smoothed_mass_ratio", 0.999, 1.001, Verdict::fail,
                                  "smoothing must preserve total session mass"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const exp::WorkloadOutput& out = exp::characterisation_run(ctx.sessions(600), ctx.seed);
    const core::UsageAnalyzer analyzer(out.log);
    const stats::Histogram histogram = analyzer.session_access_per_byte_histogram(24);

    exp::ExperimentResult result;
    result.x_label = "accesses per byte";
    result.y_label = "sessions";
    exp::add_histogram_series(result, histogram);

    stats::RunningSummary apb;
    std::size_t below3 = 0, counted = 0;
    for (const auto& s : out.sessions) {
      if (s.files_referenced == 0) continue;
      apb.add(s.access_per_byte);
      ++counted;
      if (s.access_per_byte < 3.0) ++below3;
    }
    const auto& counts = histogram.counts();
    std::size_t mode = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[mode]) mode = i;
    }
    result.set_scalar("sessions", static_cast<double>(out.sessions.size()));
    result.set_scalar("mean_access_per_byte", apb.mean());
    result.set_scalar("std_access_per_byte", apb.stddev());
    result.set_scalar("mode_center", histogram.centers()[mode]);
    result.set_scalar("fraction_below_3",
                      counted > 0 ? static_cast<double>(below3) / counted : 0.0);
    result.notes.push_back(
        "Right-skew with the bulk below ~3 accesses/byte reproduces the DI86 "
        "measurement the FSC/USIM pipeline was characterised from.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
