// Figure 5.3 — distribution of average access-per-byte over 600 login
// sessions, before and after smoothing.
//
// Paper shape: a right-skewed histogram with its mode near 1-2 accesses per
// byte and a tail out to ~7.

#include <iostream>

#include "common/figures.h"

int main() {
  using namespace wlgen;
  bench::print_header("Figure 5.3 — average access-per-byte (600 sessions)",
                      "right-skewed, mode ~1-2, tail to ~7 accesses per byte");
  const bench::ExperimentOutput out = bench::characterisation_run();
  const core::UsageAnalyzer analyzer(out.log);
  const auto histogram = analyzer.session_access_per_byte_histogram(24);
  bench::print_session_figure("fig5_3", "average access-per-byte", histogram,
                              "accesses per byte");

  stats::RunningSummary apb;
  for (const auto& s : out.sessions) {
    if (s.files_referenced > 0) apb.add(s.access_per_byte);
  }
  std::cout << "\nSessions: " << out.sessions.size()
            << "   access-per-byte mean(std): " << apb.mean_std_string(2) << "\n";
  std::cout << "Shape check: skewed right with bulk below ~3 (paper Fig 5.3 shows the\n"
               "mass between 0 and ~4 with a thin tail).\n";
  return 0;
}
