// Figure 5.6 — average response time per byte, all users *extremely heavy*
// (zero think time).  Paper: "the response time has a linear relation to the
// number of users ... because all the users compete for resources all the
// time"; the curve climbs to ~10-15 us/byte at 6 users.

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  bench::run_response_figure(
      "Figure 5.6", "response time per byte, 100% extremely heavy I/O users", population,
      "near-linear growth, steepest of Figs 5.6-5.11 (saturated server)");
  return 0;
}
