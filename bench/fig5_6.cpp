// Figure 5.6 — average response time per byte, all users *extremely heavy*
// (zero think time).  Paper: "the response time has a linear relation to the
// number of users ... because all the users compete for resources all the
// time"; the curve climbs to ~10-15 us/byte at 6 users.

#include "core/presets.h"
#include "experiments.h"
#include "common/response.h"

namespace wlgen::bench {

exp::Experiment make_fig5_6() {
  using exp::Verdict;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  return response_experiment(
      "fig5_6", "Figure 5.6", "response time per byte, 100% extremely heavy I/O users",
      std::move(population),
      "near-linear growth, steepest of Figs 5.6-5.11 (saturated server), "
      "climbing to ~10-15 us/byte at 6 users",
      {
          exp::expect_monotonic_up("response", 0.05, Verdict::fail,
                                   "saturated users: each added user must raise the level"),
          exp::expect_approx_linear("response", 0.25, Verdict::warn,
                                    "paper: \"the response time has a linear relation to "
                                    "the number of users\""),
          exp::expect_final_in_range("response", 6.0, 15.0, Verdict::warn,
                                     "paper level ~10-15 us/byte at 6 users; the model's "
                                     "shared-capacity ceiling calibrates to ~7 — the gap is "
                                     "irreducible without breaking Figures 5.7-5.11 (DESIGN.md "
                                     "'Contended calibration')"),
          exp::expect_final_in_range("response", 4.0, 20.0, Verdict::fail,
                                     "tightened sanity band around the calibrated 6-user level"),
          exp::expect_scalar_in_range("growth_ratio", 2.0, 8.0, Verdict::fail,
                                      "steepest curve of the series: strong contention growth"),
      });
}

}  // namespace wlgen::bench
