// Figure 5.4 — distribution of average file size (bytes) over 600 login
// sessions, before and after smoothing.
//
// Paper shape: right-skewed histogram over 0..60000 bytes with the bulk
// below ~20000.

#include <iostream>

#include "common/figures.h"

int main() {
  using namespace wlgen;
  bench::print_header("Figure 5.4 — average file size (600 sessions)",
                      "right-skewed over 0..60000 B, bulk below ~20000 B");
  const bench::ExperimentOutput out = bench::characterisation_run();
  const core::UsageAnalyzer analyzer(out.log);
  const auto histogram = analyzer.session_file_size_histogram(24);
  bench::print_session_figure("fig5_4", "average file size (bytes)", histogram, "file size (B)");

  stats::RunningSummary size;
  for (const auto& s : out.sessions) {
    if (s.files_referenced > 0) size.add(s.mean_file_size);
  }
  std::cout << "\nSessions: " << out.sessions.size()
            << "   mean session file size mean(std): " << size.mean_std_string(0) << " B\n";
  std::cout << "Shape check: right-skewed with a tail driven by the NOTES categories\n"
               "(mean sizes 31347/18771 B in Table 5.1).\n";
  return 0;
}
