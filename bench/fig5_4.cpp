// Figure 5.4 — distribution of average file size (bytes) over 600 login
// sessions, before and after smoothing.
//
// Paper shape: right-skewed histogram over 0..60000 bytes with the bulk
// below ~20000.

#include "core/analysis.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_fig5_4() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_4";
  experiment.artifact = "Figure 5.4";
  experiment.title = "average file size over 600 login sessions";
  experiment.paper_claim = "right-skewed over 0..60000 B, bulk below ~20000 B";
  experiment.expectations = {
      exp::expect_scalar_in_range("mean_file_size", 8000.0, 20000.0, Verdict::warn,
                                  "paper: session means concentrate below ~20000 B"),
      exp::expect_scalar_in_range("mean_file_size", 2000.0, 40000.0, Verdict::fail,
                                  "sanity band given Table 5.1's 714..31347 B category means"),
      exp::expect_scalar_in_range("fraction_below_20000", 0.55, 1.0, Verdict::fail,
                                  "paper: the bulk of the mass lies below ~20000 B"),
      exp::expect_scalar_in_range("smoothed_mass_ratio", 0.999, 1.001, Verdict::fail,
                                  "smoothing must preserve total session mass"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const exp::WorkloadOutput& out = exp::characterisation_run(ctx.sessions(600), ctx.seed);
    const core::UsageAnalyzer analyzer(out.log);
    const stats::Histogram histogram = analyzer.session_file_size_histogram(24);

    exp::ExperimentResult result;
    result.x_label = "average file size (B)";
    result.y_label = "sessions";
    exp::add_histogram_series(result, histogram);

    stats::RunningSummary size;
    std::size_t below = 0, counted = 0;
    for (const auto& s : out.sessions) {
      if (s.files_referenced == 0) continue;
      size.add(s.mean_file_size);
      ++counted;
      if (s.mean_file_size < 20000.0) ++below;
    }
    result.set_scalar("sessions", static_cast<double>(out.sessions.size()));
    result.set_scalar("mean_file_size", size.mean());
    result.set_scalar("std_file_size", size.stddev());
    result.set_scalar("fraction_below_20000",
                      counted > 0 ? static_cast<double>(below) / counted : 0.0);
    result.notes.push_back(
        "The right tail is driven by the NOTES categories (mean sizes 31347 and "
        "18771 B in Table 5.1).");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
