// Figure 5.7 — average response time per byte, 100% heavy I/O users
// (exp(5000) us think time).  Paper: shallow growth, ~1-3 us/byte, much
// flatter than Figure 5.6.

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  bench::run_response_figure("Figure 5.7", "response time per byte, 100% heavy I/O users",
                             core::mixed_population(1.0),
                             "flat-ish 1-3 us/byte; slope far below Figure 5.6");
  return 0;
}
