// Figure 5.7 — average response time per byte, 100% heavy I/O users
// (exp(5000) us think time).  Paper: shallow growth, ~1-3 us/byte, much
// flatter than Figure 5.6.

#include "core/presets.h"
#include "experiments.h"
#include "common/response.h"

namespace wlgen::bench {

exp::Experiment make_fig5_7() {
  using exp::Verdict;
  return response_experiment(
      "fig5_7", "Figure 5.7", "response time per byte, 100% heavy I/O users",
      core::mixed_population(1.0), "flat-ish 1-3 us/byte; slope far below Figure 5.6",
      {
          exp::expect_monotonic_up("response", 0.15, Verdict::fail,
                                   "contention still grows with users, just gently"),
          exp::expect_final_in_range("response", 1.0, 3.5, Verdict::warn,
                                     "paper level: ~1-3 us/byte across 1..6 users"),
          exp::expect_final_in_range("response", 0.5, 8.0, Verdict::fail,
                                     "sanity band for the think-time-paced regime"),
          exp::expect_scalar_in_range("growth_ratio", 1.0, 4.0, Verdict::fail,
                                      "slope far below Figure 5.6's saturated growth"),
      });
}

}  // namespace wlgen::bench
