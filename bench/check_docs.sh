#!/usr/bin/env bash
# check_docs.sh — executes every ```sh fenced block in README.md (in order,
# from the repo root) so the documented quickstart can never rot.  Blocks
# tagged with any other language (```text, ```ini, ...) are display-only and
# are not executed.
#
# Usage:  bench/check_docs.sh [README.md]
# Also exposed as the `check_docs` CMake target and run by CI.
set -euo pipefail
cd "$(dirname "$0")/.."
readme="${1:-README.md}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

awk -v dir="$workdir" '
  /^```sh[ \t]*$/ { in_block = 1; n += 1; next }
  /^```/          { in_block = 0; next }
  in_block        { print >> sprintf("%s/block_%03d.sh", dir, n) }
' "$readme"

shopt -s nullglob
blocks=("$workdir"/block_*.sh)
if [ "${#blocks[@]}" -eq 0 ]; then
  echo "check_docs: no \`\`\`sh blocks found in $readme" >&2
  exit 1
fi

for block in "${blocks[@]}"; do
  echo "== check_docs: $(basename "$block") =="
  sed 's/^/   | /' "$block"
  bash -euo pipefail "$block"
done
echo "check_docs: ${#blocks[@]} fenced sh block(s) from $readme executed OK"
