// Microbenchmark (google-benchmark): end-to-end USIM throughput — simulated
// sessions and system calls per wall-clock second, the figure of merit for
// whether the generator itself is cheap enough to drive large studies.

#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/nfs_model.h"

namespace {

using namespace wlgen;

void run_usim_sessions(benchmark::State& state, std::size_t draw_batch) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  for (auto _ : state) {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    fsmodel::NfsModel nfs(simulation);
    core::FscConfig fsc_config;
    fsc_config.num_users = users;
    core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
    const core::CreatedFileSystem manifest = fsc.create();
    core::UsimConfig config;
    config.num_users = users;
    config.sessions_per_user = 5;
    config.draw_batch = draw_batch;
    config.collect_log = false;  // measure the simulator, not the log
    core::UserSimulator usim(simulation, fsys, nfs, manifest, core::default_population(),
                             config);
    usim.run();
    ops += usim.total_ops();
    sessions += usim.sessions_completed();
  }
  state.counters["syscalls/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["sessions/s"] =
      benchmark::Counter(static_cast<double>(sessions), benchmark::Counter::kIsRate);
}

void BM_UsimSessions(benchmark::State& state) { run_usim_sessions(state, 1); }
BENCHMARK(BM_UsimSessions)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The same workload with 16 draws prefetched per characteristic
// (UsimConfig::draw_batch — deterministic but a different realization than
// the unbatched sequence; see the field's doc comment).  Compare syscalls/s
// against BM_UsimSessions to see what batch refills buy end to end.
void BM_UsimSessionsBatched(benchmark::State& state) { run_usim_sessions(state, 16); }
BENCHMARK(BM_UsimSessionsBatched)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

WLGEN_BENCHMARK_MAIN();
