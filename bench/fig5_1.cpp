// Figure 5.1 — examples of phase-type exponential distributions.
//
// Reproduces the three example densities of the figure (one, two and three
// phases) and checks the analytic invariants the figure illustrates: unit
// mass on [0, inf) and the published means.

#include "dist/phase_exponential.h"
#include "experiments.h"
#include "util/numeric.h"

namespace wlgen::bench {

exp::Experiment make_fig5_1() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_1";
  experiment.artifact = "Figure 5.1";
  experiment.title = "examples of phase-type exponential distributions";
  experiment.paper_claim =
      "f(x)=exp(22.1,x); two-phase; 0.4exp(12.7,x)+0.3exp(18.2,x-18)+0.3exp(15,x-40)";
  for (const char* panel : {"a", "b", "c"}) {
    experiment.expectations.push_back(exp::expect_scalar_in_range(
        std::string("mass_") + panel, 0.98, 1.02, Verdict::fail,
        "each panel's density must integrate to one"));
  }
  experiment.expectations.push_back(exp::expect_scalar_in_range(
      "mean_a", 21.0, 23.0, Verdict::fail, "panel (a) is exp(22.1): analytic mean 22.1"));

  experiment.run = [](const exp::RunContext&) {
    const std::vector<std::pair<std::string, dist::PhaseTypeExponential>> panels = {
        {"a", dist::PhaseTypeExponential::paper_example_a()},
        {"b", dist::PhaseTypeExponential::paper_example_b()},
        {"c", dist::PhaseTypeExponential::paper_example_c()},
    };
    exp::ExperimentResult result;
    result.x_label = "x (0..100, as in the paper)";
    result.y_label = "f(x)";
    for (const auto& [panel, d] : panels) {
      std::vector<double> xs, ys;
      for (double x = 0.0; x <= 100.0; x += 0.5) {
        xs.push_back(x);
        ys.push_back(d.pdf(x));
      }
      result.add_series("panel " + panel, std::move(xs), std::move(ys));
      result.set_scalar("mass_" + panel,
                        util::simpson([&](double x) { return d.pdf(x); }, 0.0, 2000.0, 20000));
      result.set_scalar("mean_" + panel, d.mean());
    }
    result.notes.push_back(
        "Unit mass and offset bumps are the figure's point: phase offsets s_i "
        "shift each exponential stage right, composing multi-modal densities.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
