// Figure 5.12 — average access (response) time per byte under different mean
// access sizes of file I/O system calls, 128..2048 bytes, one extremely
// heavy I/O user.
//
// Paper: monotonically decreasing per-byte cost — "it is better to have
// large access sizes for file I/O system calls, which is why most language
// libraries want to keep a buffer for each file".

#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_fig5_12() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_12";
  experiment.artifact = "Figure 5.12";
  experiment.title = "response time per byte vs mean access size";
  experiment.paper_claim = "decreasing curve from ~4 us/B at 128 B to ~1 us/B at 2048 B";
  experiment.expectations = {
      exp::expect_monotonic_down("response", 0.15, Verdict::fail,
                                 "per-byte cost must fall as access size grows (the tail "
                                 "flattens once the per-call cost is amortised, so small "
                                 "counter-steps there are sampling noise)"),
      exp::expect_scalar_in_range("amortisation_ratio", 2.5, 6.0, Verdict::warn,
                                  "paper: ~4x between 128 B and 2048 B calls"),
      exp::expect_scalar_in_range("amortisation_ratio", 1.2, 10.0, Verdict::fail,
                                  "fixed per-call cost must amortise visibly"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<double> means = {128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048};
    std::vector<double> levels;
    for (const double mean : means) {
      core::Population population;
      population.groups.push_back(
          {core::with_access_size_mean(core::extremely_heavy_user(), mean), 1.0});
      population.validate_and_normalize();
      exp::WorkloadConfig config;
      config.num_users = 1;
      config.sessions_per_user = ctx.sessions(50);  // paper: mean over 50 login sessions
      config.population = population;
      config.seed = ctx.seed + 512 + static_cast<std::uint64_t>(mean);
      levels.push_back(exp::run_workload(config).response_per_byte_us);
    }

    exp::ExperimentResult result;
    result.x_label = "average access size per file I/O system call (B)";
    result.y_label = "response time per byte (us)";
    result.add_series("response", means, levels);
    result.set_scalar("us_per_byte_at_128", levels.front());
    result.set_scalar("us_per_byte_at_2048", levels.back());
    result.set_scalar("amortisation_ratio",
                      levels.back() > 0.0 ? levels.front() / levels.back() : 0.0);
    result.notes.push_back(
        "Fixed per-call cost amortised over larger transfers — the paper's "
        "argument for buffered language-level I/O.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
