// Figure 5.12 — average access (response) time per byte under different mean
// access sizes of file I/O system calls, 128..2048 bytes, one extremely
// heavy I/O user.
//
// Paper: monotonically decreasing per-byte cost — "it is better to have
// large access sizes for file I/O system calls, which is why most language
// libraries want to keep a buffer for each file".

#include <iostream>

#include "common/experiment.h"
#include "core/presets.h"
#include "util/ascii_plot.h"
#include "util/svg.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Figure 5.12 — response time per byte vs mean access size",
                      "decreasing curve from ~4 us/B at 128 B to ~1 us/B at 2048 B");

  const std::vector<double> means = {128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048};
  std::vector<double> series;
  util::TextTable table({"mean access size (B)", "response time per byte (us)"});
  for (double mean : means) {
    core::Population population;
    population.groups.push_back({core::with_access_size_mean(core::extremely_heavy_user(), mean),
                                 1.0});
    population.validate_and_normalize();
    bench::ExperimentConfig config;
    config.num_users = 1;
    config.sessions_per_user = 50;  // paper: mean over 50 login sessions
    config.population = population;
    config.seed = 512 + static_cast<std::uint64_t>(mean);
    const bench::ExperimentOutput out = bench::run_experiment(config);
    series.push_back(out.response_per_byte_us);
    table.add_row({util::TextTable::num(mean, 0),
                   util::TextTable::num(out.response_per_byte_us, 3)});
  }
  std::cout << table.render() << "\n";

  util::PlotOptions options;
  options.title = "response time per byte vs mean access size (extremely heavy user)";
  options.x_label = "average access size per file I/O system call (B)";
  options.y_label = "us per byte";
  options.height = 12;
  std::cout << util::ascii_curve(means, series, options) << "\n";

  util::SvgSeries svg_series;
  svg_series.xs = means;
  svg_series.ys = series;
  svg_series.label = "Figure 5.12";
  util::SvgOptions svg_options;
  svg_options.title = "Figure 5.12: per-byte response vs access size";
  svg_options.x_label = "mean access size (B)";
  svg_options.y_label = "us per byte";
  const std::string path =
      bench::write_artifact("fig5_12.svg", util::svg_plot({svg_series}, svg_options));
  if (!path.empty()) std::cout << "SVG written to " << path << "\n";

  std::cout << "\nShape: " << util::TextTable::num(series.front(), 2) << " us/B at 128 B vs "
            << util::TextTable::num(series.back(), 2) << " us/B at 2048 B ("
            << util::TextTable::num(series.front() / series.back(), 2)
            << "x) — fixed per-call cost amortised over larger transfers, the paper's\n"
               "argument for buffered language-level I/O.\n";
  return 0;
}
