// Figure 5.12 — average access (response) time per byte under different mean
// access sizes of file I/O system calls, 128..2048 bytes, one extremely
// heavy I/O user.
//
// Paper: monotonically decreasing per-byte cost — "it is better to have
// large access sizes for file I/O system calls, which is why most language
// libraries want to keep a buffer for each file".
//
// The graded series is the response per byte of the *file I/O (read/write)
// calls* — the calls whose access size the x-axis varies.  The all-calls
// metric used by Figures 5.6–5.11 is carried as a reference series: it is
// dominated (~70% of total response at 2048 B) by per-file synchronous
// metadata — creat/unlink and the close-to-open flush — whose cost is
// invariant in access size, so it compresses the amortisation the figure
// demonstrates from ~4.8x to ~2x (decomposition in DESIGN.md, "Contended
// calibration and the fig5_12 metric").

#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"
#include "fsmodel/model.h"

namespace wlgen::bench {

exp::Experiment make_fig5_12() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_12";
  experiment.artifact = "Figure 5.12";
  experiment.title = "response time per byte vs mean access size";
  experiment.paper_claim = "decreasing curve from ~4 us/B at 128 B to ~1 us/B at 2048 B";
  experiment.expectations = {
      exp::expect_monotonic_down("response", 0.15, Verdict::fail,
                                 "per-byte cost must fall as access size grows (the tail "
                                 "flattens once the per-call cost is amortised, so small "
                                 "counter-steps there are sampling noise)"),
      exp::expect_scalar_in_range("amortisation_ratio", 2.5, 6.0, Verdict::warn,
                                  "paper: ~4x between 128 B and 2048 B calls"),
      exp::expect_scalar_in_range("amortisation_ratio", 1.2, 10.0, Verdict::fail,
                                  "fixed per-call cost must amortise visibly"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<double> means = {128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048};
    std::vector<double> levels, all_call_levels;
    for (const double mean : means) {
      core::Population population;
      population.groups.push_back(
          {core::with_access_size_mean(core::extremely_heavy_user(), mean), 1.0});
      population.validate_and_normalize();
      exp::WorkloadConfig config;
      config.num_users = 1;
      config.sessions_per_user = ctx.sessions(50);  // paper: mean over 50 login sessions
      config.population = population;
      config.seed = ctx.seed + 512 + static_cast<std::uint64_t>(mean);
      const exp::WorkloadOutput out = exp::run_workload(config);

      // Response per byte of the read/write calls only — the metric the
      // figure's access-size knob actually exercises.
      double data_response_us = 0.0;
      double data_bytes = 0.0;
      for (const auto& [op, s] : out.per_op) {
        if (fsmodel::is_data_op(op)) {
          data_response_us += s.response_us.sum();
          data_bytes += s.access_size.sum();
        }
      }
      levels.push_back(data_bytes > 0.0 ? data_response_us / data_bytes : 0.0);
      all_call_levels.push_back(out.response_per_byte_us);
    }

    exp::ExperimentResult result;
    result.x_label = "average access size per file I/O system call (B)";
    result.y_label = "response time per byte (us)";
    result.add_series("response", means, levels);
    result.add_series("all_calls", means, all_call_levels).color = "#c0c0c0";
    result.set_scalar("us_per_byte_at_128", levels.front());
    result.set_scalar("us_per_byte_at_2048", levels.back());
    result.set_scalar("amortisation_ratio",
                      levels.back() > 0.0 ? levels.front() / levels.back() : 0.0);
    result.set_scalar("all_calls_ratio",
                      all_call_levels.back() > 0.0
                          ? all_call_levels.front() / all_call_levels.back()
                          : 0.0);
    result.notes.push_back(
        "Fixed per-call cost amortised over larger transfers — the paper's "
        "argument for buffered language-level I/O.  The grey reference curve "
        "includes per-file metadata calls (creat/close-flush/unlink), whose "
        "access-size-invariant cost hides most of the amortisation.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
