// Figure 5.8 — average response time per byte, 80% heavy / 20% light I/O
// users.  Paper: similar level to Figure 5.7 (the 5000 vs 20000 us think
// times barely separate given the response-time variance).

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  bench::run_response_figure("Figure 5.8",
                             "response time per byte, 80% heavy / 20% light I/O users",
                             core::mixed_population(0.8),
                             "level and slope close to Figure 5.7");
  return 0;
}
