// Figure 5.8 — average response time per byte, 80% heavy / 20% light I/O
// users.  Paper: similar level to Figure 5.7 (the 5000 vs 20000 us think
// times barely separate given the response-time variance).

#include "core/presets.h"
#include "experiments.h"
#include "common/response.h"

namespace wlgen::bench {

exp::Experiment make_fig5_8() {
  using exp::Verdict;
  return response_experiment(
      "fig5_8", "Figure 5.8", "response time per byte, 80% heavy / 20% light I/O users",
      core::mixed_population(0.8), "level and slope close to Figure 5.7",
      {
          exp::expect_monotonic_up("response", 0.2, Verdict::fail,
                                   "response per byte still grows with users"),
          exp::expect_final_in_range("response", 1.0, 3.5, Verdict::warn,
                                     "paper level: close to Figure 5.7's 1-3 us/byte"),
          exp::expect_final_in_range("response", 0.5, 8.0, Verdict::fail,
                                     "sanity band for the think-time-paced regime"),
          exp::expect_scalar_in_range("growth_ratio", 1.0, 4.0, Verdict::fail,
                                      "slope stays far below Figure 5.6"),
      });
}

}  // namespace wlgen::bench
