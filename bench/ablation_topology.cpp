// Ablation — diskless-workstation topology: N users on one shared client vs
// one workstation each.
//
// The paper's testbed packs every simulated user onto a single SUN 3/50.
// Its introduction, however, claims the model covers "a centralized and
// distributed system, consisting of possible different types of machines".
// This experiment exercises that claim: the same population on (a) one
// shared client and (b) one client per user, both against the same server
// and Ethernet — the late-80s diskless-workstation sizing question.

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "exp/workload.h"
#include "experiments.h"
#include "fs/filesystem.h"
#include "fsmodel/nfs_model.h"
#include "sim/simulation.h"

namespace wlgen::bench {

namespace {

double topology_point(std::size_t users, std::size_t clients, std::size_t sessions,
                      std::uint64_t seed) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsParams params;
  params.num_clients = clients;
  fsmodel::NfsModel nfs(simulation, params);
  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed + users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.client_machines = clients;
  config.seed = seed + users;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  core::UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
  usim.run();
  return core::UsageAnalyzer(usim.log()).response_per_byte_us();
}

}  // namespace

exp::Experiment make_ablation_topology() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "ablation_topology";
  experiment.title = "one shared workstation vs one workstation per user";
  experiment.paper_claim = "the paper's 1-client testbed vs its distributed-system claim";
  experiment.expectations = {
      exp::expect_scalar_in_range("speedup_1_user", 0.97, 1.03, Verdict::fail,
                                  "at one user the topologies must coincide (sanity)"),
      exp::expect_scalar_in_range("speedup_6_users", 0.9, 3.0, Verdict::fail,
                                  "private workstations remove only client contention"),
      exp::expect_monotonic_up("shared client", 0.05, Verdict::fail,
                               "the shared-client curve must grow with users"),
      exp::expect_monotonic_up("client per user", 0.05, Verdict::fail,
                               "the server+Ethernet keep response growing even with "
                               "private workstations"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<std::size_t> user_counts = {1, 2, 4, 6};
    const std::size_t sessions = ctx.sessions(25);
    std::vector<double> xs, shared, spread;
    for (const std::size_t users : user_counts) {
      xs.push_back(static_cast<double>(users));
      shared.push_back(topology_point(users, 1, sessions, ctx.seed + 61));
      spread.push_back(topology_point(users, users, sessions, ctx.seed + 61));
    }

    exp::ExperimentResult result;
    result.x_label = "number of users";
    result.y_label = "response time per byte (us)";
    result.add_series("shared client", xs, shared);
    result.add_series("client per user", xs, spread);
    result.set_scalar("speedup_1_user", spread.front() > 0.0 ? shared.front() / spread.front() : 0.0);
    result.set_scalar("speedup_6_users", spread.back() > 0.0 ? shared.back() / spread.back() : 0.0);
    result.notes.push_back(
        "Buying every user a workstation does not buy back Figure 5.6's slope, "
        "it only shrinks its intercept — the residual growth is the "
        "server-bound regime NFS deployments of the era actually hit.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
