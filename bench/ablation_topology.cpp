// Ablation — diskless-workstation topology: N users on one shared client vs
// one workstation each.
//
// The paper's testbed packs every simulated user onto a single SUN 3/50.
// Its introduction, however, claims the model covers "a centralized and
// distributed system, consisting of possible different types of machines".
// This bench exercises that claim: the same population on (a) one shared
// client and (b) one client per user, both against the same server and
// Ethernet — the late-80s diskless-workstation sizing question.

#include <iostream>

#include "common/experiment.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

namespace {

using namespace wlgen;

double run_topology(std::size_t users, std::size_t clients, std::size_t sessions) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsParams params;
  params.num_clients = clients;
  fsmodel::NfsModel nfs(simulation, params);
  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = 61 + users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.client_machines = clients;
  config.seed = 61 + users;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  core::UserSimulator usim(simulation, fsys, nfs, manifest, population, config);
  usim.run();
  return core::UsageAnalyzer(usim.log()).response_per_byte_us();
}

}  // namespace

int main() {
  using namespace wlgen;
  bench::print_header("Ablation — one shared workstation vs one workstation per user",
                      "the paper's 1-client testbed vs its distributed-system claim");

  util::TextTable table({"users", "shared client us/B", "client per user us/B", "speedup"});
  for (std::size_t users : {1UL, 2UL, 4UL, 6UL}) {
    const double shared = run_topology(users, 1, 25);
    const double spread = run_topology(users, users, 25);
    table.add_row({std::to_string(users), util::TextTable::num(shared, 2),
                   util::TextTable::num(spread, 2),
                   util::TextTable::num(shared / std::max(spread, 1e-9), 2)});
  }
  std::cout << table.render();
  std::cout << "\nReading: at one user the topologies coincide (sanity).  As users grow,\n"
               "private workstations remove the client CPU/cache contention, but the\n"
               "shared server disk and Ethernet keep response growing — buying every\n"
               "user a workstation does not buy back Figure 5.6's slope, it only\n"
               "shrinks its intercept.  That residual growth is the server-bound\n"
               "regime NFS deployments of the era actually hit.\n";
  return 0;
}
