// Figure 5.9 — average response time per byte, 50% heavy / 50% light I/O
// users.

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  bench::run_response_figure("Figure 5.9",
                             "response time per byte, 50% heavy / 50% light I/O users",
                             core::mixed_population(0.5),
                             "level and slope close to Figures 5.7/5.8 (paper 5.2's point)");
  return 0;
}
