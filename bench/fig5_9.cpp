// Figure 5.9 — average response time per byte, 50% heavy / 50% light I/O
// users.  Paper section 5.2's point: the mixed curves barely separate.

#include "core/presets.h"
#include "experiments.h"
#include "common/response.h"

namespace wlgen::bench {

exp::Experiment make_fig5_9() {
  using exp::Verdict;
  return response_experiment(
      "fig5_9", "Figure 5.9", "response time per byte, 50% heavy / 50% light I/O users",
      core::mixed_population(0.5), "level and slope close to Figures 5.7/5.8",
      {
          exp::expect_monotonic_up("response", 0.25, Verdict::fail,
                                   "response per byte still grows with users"),
          exp::expect_final_in_range("response", 1.0, 3.5, Verdict::warn,
                                     "paper level: close to Figures 5.7/5.8"),
          exp::expect_final_in_range("response", 0.5, 8.0, Verdict::fail,
                                     "sanity band for the think-time-paced regime"),
          exp::expect_scalar_in_range("growth_ratio", 1.0, 4.0, Verdict::fail,
                                      "slope stays far below Figure 5.6"),
      });
}

}  // namespace wlgen::bench
