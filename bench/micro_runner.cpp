// Microbenchmark (google-benchmark): scaling of the two parallel runners.
//
// BM_ShardedRunner — wall-clock throughput of the same fixed workload
// (users x sessions against the NFS model, log collection off) as the
// worker-thread count grows.  BM_ContendedRunner — the same question for
// the contended path: a fixed (load points x replications) grid of
// shared-machine simulations drained by a growing pool.  Both are
// scoreboard entries behind the DESIGN.md scaling tables: on an M-core
// machine the /T rate should approach T-fold the /1 rate until T exceeds M
// (on a single-core CI container the curves are flat).

#include <benchmark/benchmark.h>

#include "bench_main.h"
#include "runner/contended_runner.h"
#include "runner/sharded_runner.h"
#include "scenario/run.h"
#include "scenario/spec.h"

namespace {

using namespace wlgen;

constexpr std::size_t kUsers = 24;
constexpr std::size_t kSessions = 4;

// Pool utilization as a percentage: busy / (busy + idle) across all workers.
// Two steady_clock reads per job (obs.pool), invisible at shard granularity.
double busy_pct(std::uint64_t busy_ns, std::uint64_t idle_ns) {
  const double total = static_cast<double>(busy_ns + idle_ns);
  return total > 0.0 ? 100.0 * static_cast<double>(busy_ns) / total : 0.0;
}

void BM_ShardedRunner(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  for (auto _ : state) {
    runner::RunnerConfig config;
    config.num_users = kUsers;
    config.shards = 4 * threads;  // a few shards per worker
    config.threads = threads;
    config.usim.sessions_per_user = kSessions;
    config.collect_log = false;  // measure the engine, not log retention
    config.obs.pool = true;      // busy/idle split for the utilization column
    runner::ShardedRunner run(std::move(config));
    const auto result = run.run();
    ops += result.total_ops;
    sessions += result.sessions_completed;
    busy_ns += result.pool.busy_ns();
    idle_ns += result.pool.idle_ns();
    benchmark::DoNotOptimize(result.stats.response_us().mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kUsers));
  state.counters["syscalls/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["sessions/s"] =
      benchmark::Counter(static_cast<double>(sessions), benchmark::Counter::kIsRate);
  // Self-diagnosis for flat scaling curves: saturated workers show ~100,
  // a starved pool (more workers than cores, or skewed shards) shows less.
  state.counters["pool_busy_pct"] = benchmark::Counter(busy_pct(busy_ns, idle_ns));
}
BENCHMARK(BM_ShardedRunner)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Contended-replication scaling: Figures 5.6-5.11's job shape in miniature
// (a users sweep, R replications per point, every job one shared-machine
// Simulation).  Items = replications completed.
void BM_ContendedRunner(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kReplications = 4;
  std::uint64_t ops = 0;
  std::size_t replications = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  for (auto _ : state) {
    runner::ContendedConfig config;
    config.user_points = {1, 2, 4};
    config.replications = kReplications;
    config.threads = threads;
    config.usim.sessions_per_user = kSessions;
    config.obs.pool = true;
    runner::ContendedRunner run(std::move(config));
    const auto result = run.run();
    ops += result.total_ops;
    replications += result.replications.size();
    busy_ns += result.pool.busy_ns();
    idle_ns += result.pool.idle_ns();
    benchmark::DoNotOptimize(result.points.back().response_per_byte.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replications));
  state.counters["syscalls/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["pool_busy_pct"] = benchmark::Counter(busy_pct(busy_ns, idle_ns));
}
BENCHMARK(BM_ContendedRunner)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Merge overhead in isolation: the (time, user) stable-sort fold over
// per-user logs, at a size big enough to expose the O(M log M) term.
void BM_MergeUserLogs(benchmark::State& state) {
  const std::size_t users = 64;
  const std::size_t ops_per_user = static_cast<std::size_t>(state.range(0));
  std::vector<core::UsageLog> prototype(users);
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t i = 0; i < ops_per_user; ++i) {
      core::OpRecord r;
      r.issue_time_us = static_cast<double>(i * 37 % 1000);
      r.user = static_cast<std::uint32_t>(u);
      prototype[u].append(r);
    }
  }
  for (auto _ : state) {
    std::vector<core::UsageLog> logs = prototype;
    benchmark::DoNotOptimize(runner::merge_user_logs(std::move(logs)).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users * ops_per_user));
}
BENCHMARK(BM_MergeUserLogs)->Arg(1000);

// Scenario-level parallelism: one three-backend sharded scenario, run with a
// growing --threads budget.  run_scenario fans the independent backends over
// the worker pool (scenario/run.cpp), so on an M-core machine the /T time
// should shrink toward 1/min(T, 3, M) of /1 — flat on a single-core
// container (num_cpus in this file's recorded context says which).  The
// stats digest is bit-identical at every thread count; the benchmark only
// measures wall clock.
void BM_ScenarioMultiBackend(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_text(R"(
[scenario]
name = bench-multi-backend
mode = sharded

[workload]
users = 12
sessions = 3

[sharded]
shards = 4
collect_log = false

[model]
names = nfs, local, wholefile
)");
  for (auto _ : state) {
    scenario::RunOptions options;
    options.threads = threads;
    const scenario::ScenarioOutcome outcome = scenario::run_scenario(spec, options);
    benchmark::DoNotOptimize(outcome.stats_digest.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_ScenarioMultiBackend)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

WLGEN_BENCHMARK_MAIN();
