// Figure 5.10 — average response time per byte, 20% heavy / 80% light I/O
// users.

#include "common/response_figure.h"
#include "core/presets.h"

int main() {
  using namespace wlgen;
  bench::run_response_figure("Figure 5.10",
                             "response time per byte, 20% heavy / 80% light I/O users",
                             core::mixed_population(0.2),
                             "still close to Figures 5.7-5.9; light users barely move it");
  return 0;
}
