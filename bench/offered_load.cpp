// Offered-load curve — open-system response vs session arrival rate.
//
// The closed-loop sweeps (Figures 5.6-5.11) grow load by adding users; the
// open-system traffic engine (src/traffic/) instead fixes the population at
// four workstations and sweeps the *offered* Poisson session arrival rate.
// Queueing behaviour says the response level is flat while offered load sits
// far below service capacity and turns up at a knee near saturation, then
// levels off at the fully-contended four-user plateau (per-user session
// queues absorb the overload, so per-op response saturates rather than
// diverging — the backlog shows up as makespan stretch instead).

#include <cmath>

#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

namespace {

struct LoadPoint {
  double response_per_byte_us = 0.0;
  double makespan_us = 0.0;
};

LoadPoint load_point(double rate_per_sec, std::size_t arrivals, std::uint64_t seed) {
  exp::WorkloadConfig config;
  config.num_users = 4;
  config.seed = seed;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  config.population = std::move(population);

  traffic::ArrivalConfig arrival_config;
  arrival_config.kind = traffic::ArrivalKind::poisson;
  arrival_config.rate_per_sec = rate_per_sec;
  arrival_config.sessions = arrivals;
  config.traffic.arrivals = arrival_config;

  const exp::WorkloadOutput out = exp::run_workload(config);
  return {out.response_per_byte_us, out.simulated_us};
}

}  // namespace

exp::Experiment make_offered_load() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "offered_load";
  experiment.title = "open-system response vs offered session arrival rate";
  experiment.paper_claim =
      "open-loop counterpart of Figures 5.6-5.11: flat at low offered load, a "
      "knee near service capacity, a contended plateau past it";
  experiment.expectations = {
      exp::expect_monotonic_up("response", 0.10, Verdict::fail,
                               "raising the offered rate can only increase session overlap, "
                               "so the contended level must not drop"),
      exp::expect_scalar_in_range("saturation_ratio", 1.5, 20.0, Verdict::fail,
                                  "the plateau must sit clearly above the idle-system level "
                                  "(otherwise the sweep never crossed the knee)"),
      exp::expect_scalar_in_range("knee_rate_per_sec", 0.1, 1.2, Verdict::warn,
                                  "knee located where arrivals start overlapping the ~1.2s mean "
                                  "session holding time — the calibrated engine puts it in this "
                                  "band"),
      exp::expect_scalar_in_range("knee_rate_per_sec", 0.05, 3.2, Verdict::fail,
                                  "sanity band: the knee must fall inside the swept range"),
      exp::expect_scalar_in_range("backlog_stretch", 1.02, 1000.0, Verdict::fail,
                                  "past saturation the per-user session queues back up, so the "
                                  "makespan must stretch beyond the arrival horizon"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<double> rates = {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
    const std::size_t arrivals = ctx.sessions(96);

    std::vector<double> xs, response;
    double top_makespan_us = 0.0;
    for (const double rate : rates) {
      const LoadPoint point = load_point(rate, arrivals, ctx.seed + 47);
      xs.push_back(rate);
      response.push_back(point.response_per_byte_us);
      top_makespan_us = point.makespan_us;
    }

    // Knee: first swept rate whose level exceeds the idle-system base by
    // 25%, linearly interpolated against the previous point.
    const double base = response.front();
    double knee = rates.back();
    for (std::size_t i = 1; i < response.size(); ++i) {
      const double threshold = base * 1.25;
      if (response[i] >= threshold) {
        const double lo = response[i - 1];
        const double frac = response[i] > lo ? (threshold - lo) / (response[i] - lo) : 1.0;
        knee = rates[i - 1] + frac * (rates[i] - rates[i - 1]);
        break;
      }
    }

    exp::ExperimentResult result;
    result.x_label = "offered session arrival rate (sessions/s)";
    result.y_label = "response time per byte (us)";
    result.add_series("response", xs, response);
    result.set_scalar("knee_rate_per_sec", knee);
    result.set_scalar("saturation_ratio", base > 0.0 ? response.back() / base : 0.0);
    // Arrival horizon of the top rate vs the time the run actually needed:
    // > 1 means sessions were still draining after the last arrival.
    const double horizon_us = static_cast<double>(arrivals) / rates.back() * 1e6;
    result.set_scalar("backlog_stretch", horizon_us > 0.0 ? top_makespan_us / horizon_us : 0.0);
    result.notes.push_back(
        "Open-loop Poisson arrivals over four workstations sharing one NFS "
        "server.  Per-op response saturates at the four-user contended "
        "plateau because each workstation serialises its own session queue; "
        "the unbounded overload shows up as makespan stretch, not response "
        "divergence.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
