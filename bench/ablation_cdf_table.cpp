// Ablation — CDF-table resolution (DESIGN.md "two-level sampling").
//
// The paper's generator samples through CDF tables emitted by the GDS.  How
// many table points are needed before table sampling is statistically
// indistinguishable (Kolmogorov-Smirnov) from sampling the distribution
// directly?  Sweeps resolution for the three GDS families.

#include <iostream>

#include "common/experiment.h"
#include "dist/basic.h"
#include "dist/cdf_table.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "stats/tests.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Ablation — CDF-table resolution vs sampling fidelity",
                      "the GDS->USIM CDF-table mechanism of paper Figure 4.1");

  const std::vector<std::pair<std::string, dist::DistributionPtr>> families = [] {
    std::vector<std::pair<std::string, dist::DistributionPtr>> out;
    out.emplace_back("exp(1024)", std::make_unique<dist::ExponentialDistribution>(1024.0));
    out.emplace_back("phase_exp (Fig 5.1c)",
                     std::make_unique<dist::PhaseTypeExponential>(
                         dist::PhaseTypeExponential::paper_example_c()));
    out.emplace_back("multi_gamma (Fig 5.2c)", std::make_unique<dist::MultiStageGamma>(
                                                   dist::MultiStageGamma::paper_example_c()));
    return out;
  }();

  const std::vector<std::size_t> resolutions = {8, 16, 32, 64, 128, 256, 1024};
  const std::size_t samples = 20000;

  for (const auto& [name, d] : families) {
    std::cout << "--- " << name << " ---\n";
    util::TextTable table({"table points", "KS statistic vs exact", "KS p-value",
                           "mean error %"});
    for (std::size_t n : resolutions) {
      const dist::CdfTable tab = dist::build_cdf_table(*d, n);
      util::RngStream rng(99, name + std::to_string(n));
      std::vector<double> draws;
      draws.reserve(samples);
      double sum = 0.0;
      for (std::size_t i = 0; i < samples; ++i) {
        const double v = tab.sample(rng);
        draws.push_back(v);
        sum += v;
      }
      const auto ks = stats::ks_test(draws, *d);
      const double mean_err =
          100.0 * std::fabs(sum / static_cast<double>(samples) - d->mean()) / d->mean();
      table.add_row({std::to_string(n), util::TextTable::num(ks.statistic, 4),
                     util::TextTable::num(ks.p_value, 3), util::TextTable::num(mean_err, 2)});
    }
    std::cout << table.render() << "\n";
  }
  std::cout << "Reading: the KS statistic decays with resolution; once the p-value stops\n"
               "rejecting (>> 0.01) the table is statistically transparent.  The default\n"
               "of 256 points used by the library sits past that knee for all three\n"
               "families, which justifies the paper's table-driven sampling design.\n";
  return 0;
}
