// Ablation — CDF-table resolution (DESIGN.md "two-level sampling").
//
// The paper's generator samples through CDF tables emitted by the GDS.  How
// many table points are needed before table sampling is statistically
// indistinguishable (Kolmogorov-Smirnov) from sampling the distribution
// directly?  Sweeps resolution for the three GDS families.

#include "dist/basic.h"
#include "dist/cdf_table.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "experiments.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace wlgen::bench {

exp::Experiment make_ablation_cdf_table() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "ablation_cdf_table";
  experiment.title = "CDF-table resolution vs sampling fidelity";
  experiment.paper_claim = "the GDS->USIM CDF-table mechanism of paper Figure 4.1";
  for (const char* family : {"exp", "phase_exp", "multi_gamma"}) {
    experiment.expectations.push_back(exp::expect_monotonic_down(
        std::string("KS ") + family, 0.25, Verdict::fail,
        "the KS statistic decays as table resolution grows"));
    experiment.expectations.push_back(exp::expect_scalar_in_range(
        std::string("mean_err_pct_256_") + family, 0.0, 2.0, Verdict::fail,
        "the library default of 256 points sits past the fidelity knee"));
    experiment.expectations.push_back(exp::expect_scalar_in_range(
        std::string("ks_p_value_256_") + family, 0.05, 1.0, Verdict::warn,
        "at 256 points the KS test stops rejecting table sampling"));
  }

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<std::pair<std::string, dist::DistributionPtr>> families = [] {
      std::vector<std::pair<std::string, dist::DistributionPtr>> out;
      out.emplace_back("exp", std::make_unique<dist::ExponentialDistribution>(1024.0));
      out.emplace_back("phase_exp", std::make_unique<dist::PhaseTypeExponential>(
                                        dist::PhaseTypeExponential::paper_example_c()));
      out.emplace_back("multi_gamma", std::make_unique<dist::MultiStageGamma>(
                                          dist::MultiStageGamma::paper_example_c()));
      return out;
    }();

    const std::vector<std::size_t> resolutions = {8, 16, 32, 64, 128, 256, 1024};
    const std::size_t samples = 20000;

    exp::ExperimentResult result;
    result.x_label = "CDF table points";
    result.y_label = "KS statistic vs exact sampling";
    for (const auto& [name, d] : families) {
      std::vector<double> xs, ks_stats;
      for (const std::size_t n : resolutions) {
        const dist::CdfTable tab = dist::build_cdf_table(*d, n);
        util::RngStream rng(ctx.seed + 99, name + std::to_string(n));
        std::vector<double> draws;
        draws.reserve(samples);
        double sum = 0.0;
        for (std::size_t i = 0; i < samples; ++i) {
          const double v = tab.sample(rng);
          draws.push_back(v);
          sum += v;
        }
        const auto ks = stats::ks_test(draws, *d);
        xs.push_back(static_cast<double>(n));
        ks_stats.push_back(ks.statistic);
        if (n == 256) {
          result.set_scalar(
              "mean_err_pct_256_" + name,
              100.0 * std::fabs(sum / static_cast<double>(samples) - d->mean()) / d->mean());
          result.set_scalar("ks_p_value_256_" + name, ks.p_value);
        }
      }
      result.add_series("KS " + name, std::move(xs), std::move(ks_stats));
    }
    result.notes.push_back(
        "Once the KS p-value stops rejecting (>> 0.01) the table is "
        "statistically transparent; the library default of 256 points sits "
        "past that knee for all three families, justifying the paper's "
        "table-driven sampling design.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
