// Slowdown-recovery — fault injection on the DES timeline: a mid-run server
// slowdown window under constant open-loop arrival pressure.
//
// While the window is active every model stage runs `factor` times slower,
// so the bucketed response level jumps; arrivals keep coming at the same
// rate, so a backlog builds.  When the window lifts, service speed snaps
// back but the level recovers only gradually as the queued sessions drain —
// the hysteresis this experiment bands.  All times are fractions of the
// expected arrival horizon so the shape survives `--scale`.

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/presets.h"
#include "core/usage_log.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

namespace {

/// Pooled response per byte over the records issued in [begin_us, end_us).
double pooled_level(const std::vector<core::OpRecord>& records, double begin_us,
                    double end_us) {
  double response = 0.0, bytes = 0.0;
  for (const auto& record : records) {
    if (record.issue_time_us < begin_us || record.issue_time_us >= end_us) continue;
    response += record.response_us;
    bytes += static_cast<double>(record.actual_bytes);
  }
  return bytes > 0.0 ? response / bytes : 0.0;
}

}  // namespace

exp::Experiment make_slowdown_recovery() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "slowdown_recovery";
  experiment.title = "response degradation and recovery around a server slowdown window";
  experiment.paper_claim =
      "fault-injection check: response degrades while the server runs slow, "
      "then drains back to baseline with a bounded recovery lag";
  experiment.expectations = {
      exp::expect_scalar_in_range("degradation_ratio", 2.0, 40.0, Verdict::fail,
                                  "a 6x service slowdown must push the in-window level well "
                                  "above baseline"),
      exp::expect_scalar_in_range("recovery_ratio", 0.5, 1.6, Verdict::fail,
                                  "the final quarter of the run must sit back at the "
                                  "pre-fault baseline — the fault may not leave a permanent "
                                  "level shift"),
      exp::expect_scalar_in_range("recovery_frac", 0.0, 0.45, Verdict::fail,
                                  "hysteresis band: the backlog takes time to drain but must "
                                  "clear well before the run ends"),
      exp::expect_scalar_in_range("hysteresis_ratio", 1.0, 40.0, Verdict::warn,
                                  "right after the window lifts the drain keeps the level at "
                                  "or above baseline — recovery is not instantaneous"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const double rate_per_sec = 0.8;  // just below the offered_load knee
    const std::size_t arrivals = ctx.sessions(96);
    const double horizon_us = static_cast<double>(arrivals) / rate_per_sec * 1e6;

    exp::WorkloadConfig config;
    config.num_users = 4;
    config.seed = ctx.seed + 53;
    core::Population population;
    population.groups.push_back({core::extremely_heavy_user(), 1.0});
    population.validate_and_normalize();
    config.population = std::move(population);

    traffic::ArrivalConfig arrival_config;
    arrival_config.kind = traffic::ArrivalKind::poisson;
    arrival_config.rate_per_sec = rate_per_sec;
    arrival_config.sessions = arrivals;
    config.traffic.arrivals = arrival_config;

    const double window_begin_us = 0.35 * horizon_us;
    const double window_end_us = 0.55 * horizon_us;
    config.traffic.faults.slowdowns.push_back({window_begin_us, window_end_us, 6.0});

    const exp::WorkloadOutput out = exp::run_workload(config);
    const auto& records = out.log.records();

    // Baseline skips the first 10% (cold caches) and stops at the window.
    const double baseline = pooled_level(records, 0.10 * horizon_us, window_begin_us);
    const double during = pooled_level(records, window_begin_us, window_end_us);

    // Recovery: walk post-window buckets until the level is back within
    // 1.25x baseline; report the lag as a fraction of the horizon so the
    // scalar is comparable across --scale profiles.
    const double end_us = std::max(out.simulated_us, horizon_us);
    const double bucket_us = horizon_us / 24.0;
    double recovered_at_us = end_us;
    for (double t = window_end_us; t < end_us; t += bucket_us) {
      const double level = pooled_level(records, t, t + bucket_us);
      if (level > 0.0 && level <= baseline * 1.25) {
        recovered_at_us = t;
        break;
      }
    }
    const double recovery_frac =
        horizon_us > 0.0 ? (recovered_at_us - window_end_us) / horizon_us : 0.0;
    const double after = pooled_level(records, window_end_us, window_end_us + 2.0 * bucket_us);
    const double tail = pooled_level(records, 0.75 * end_us, end_us + 1.0);

    exp::ExperimentResult result;
    result.x_label = "time (fraction of arrival horizon)";
    result.y_label = "response time per byte (us)";
    std::vector<double> xs, ys;
    for (double t = 0.0; t < end_us; t += bucket_us) {
      xs.push_back((t + 0.5 * bucket_us) / horizon_us);
      ys.push_back(pooled_level(records, t, t + bucket_us));
    }
    result.add_series("response_over_time", xs, ys);
    result.set_scalar("degradation_ratio", baseline > 0.0 ? during / baseline : 0.0);
    result.set_scalar("recovery_ratio", baseline > 0.0 ? tail / baseline : 0.0);
    result.set_scalar("recovery_frac", recovery_frac);
    result.set_scalar("hysteresis_ratio", baseline > 0.0 ? after / baseline : 0.0);
    result.notes.push_back(
        "A 6x slowdown window over [0.35, 0.55] of the arrival horizon under "
        "constant Poisson arrival pressure.  The in-window level multiplies, "
        "and the post-window drain decays back to baseline: degradation is "
        "sharp, recovery is gradual (hysteresis).");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
