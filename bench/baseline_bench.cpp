// Related-work baselines (paper sections 2.1 and 5.3): the Andrew-style
// script benchmark and the Buchholz synthetic file-update job, run against
// the same three file-system models as the user-oriented generator.
//
// This is the paper's "benchmarks are too artificial" argument made
// concrete: a script produces one fixed op sequence, so it cannot answer
// "what happens when the number of users changes?" — the question the
// user-oriented generator exists for.

#include <memory>

#include "core/baseline.h"
#include "exp/workload.h"
#include "experiments.h"
#include "fs/filesystem.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "sim/simulation.h"

namespace wlgen::bench {

namespace {

struct BaselinePoint {
  double andrew_total_ms = 0.0;
  double buchholz_ms = 0.0;
};

BaselinePoint baseline_point(exp::ModelKind kind) {
  const auto make = [&](sim::Simulation& simulation) -> std::unique_ptr<fsmodel::FileSystemModel> {
    switch (kind) {
      case exp::ModelKind::nfs: return std::make_unique<fsmodel::NfsModel>(simulation);
      case exp::ModelKind::local: return std::make_unique<fsmodel::LocalDiskModel>(simulation);
      case exp::ModelKind::wholefile:
        return std::make_unique<fsmodel::WholeFileCacheModel>(simulation);
    }
    throw std::logic_error("baseline_point: bad kind");
  };

  BaselinePoint point;
  {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    auto model = make(simulation);
    core::ScriptRunner runner(simulation, fsys, *model);
    const core::ScriptResult result =
        runner.run(core::make_andrew_script(core::AndrewConfig{}), core::andrew_phase_names());
    point.andrew_total_ms = result.total_us / 1000.0;
  }
  {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    auto model = make(simulation);
    core::ScriptRunner runner(simulation, fsys, *model);
    core::BuchholzConfig config;
    const core::ScriptResult result =
        runner.run(core::make_buchholz_script(config), core::buchholz_phase_names(config));
    point.buchholz_ms = result.phase_us.back() / 1000.0;
  }
  return point;
}

}  // namespace

exp::Experiment make_baseline_bench() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "baseline_bench";
  experiment.artifact = "Sections 2.1, 5.3";
  experiment.title = "Andrew-style script and Buchholz synthetic job baselines";
  experiment.paper_claim = "related work the paper positions against: one number per system";
  experiment.expectations = {
      exp::expect_scalar_in_range("andrew_nfs_ms", 1000.0, 100000.0, Verdict::fail,
                                  "the scripted job takes simulated seconds, not noise"),
      exp::expect_scalar_in_range("andrew_nfs_over_wholefile", 1.05, 10.0, Verdict::fail,
                                  "whole-file caching keeps the script's data ops local"),
      exp::expect_scalar_in_range("buchholz_nfs_over_wholefile", 1.05, 10.0, Verdict::fail,
                                  "the update job also favours local data ops"),
  };

  experiment.run = [](const exp::RunContext&) {
    const std::vector<std::pair<std::string, exp::ModelKind>> candidates = {
        {"nfs", exp::ModelKind::nfs},
        {"local", exp::ModelKind::local},
        {"wholefile", exp::ModelKind::wholefile},
    };
    exp::ExperimentResult result;
    result.x_label = "file-system model (0 = nfs, 1 = local, 2 = wholefile)";
    result.y_label = "elapsed (ms)";
    std::vector<double> index, andrew, buchholz;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const BaselinePoint point = baseline_point(candidates[i].second);
      index.push_back(static_cast<double>(i));
      andrew.push_back(point.andrew_total_ms);
      buchholz.push_back(point.buchholz_ms);
      result.set_scalar("andrew_" + candidates[i].first + "_ms", point.andrew_total_ms);
      result.set_scalar("buchholz_" + candidates[i].first + "_ms", point.buchholz_ms);
    }
    result.add_series("andrew total", index, andrew);
    result.add_series("buchholz update pass", index, buchholz);
    result.set_scalar("andrew_nfs_over_wholefile",
                      andrew[2] > 0.0 ? andrew[0] / andrew[2] : 0.0);
    result.set_scalar("buchholz_nfs_over_wholefile",
                      buchholz[2] > 0.0 ? buchholz[0] / buchholz[2] : 0.0);
    result.notes.push_back(
        "Contrast with table5_3: the script benchmarks produce one number per "
        "system, while the user-oriented generator sweeps populations and load "
        "levels from the same measured characterisation.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
