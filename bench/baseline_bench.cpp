// Related-work baselines (paper sections 2.1 and 5.3): the Andrew-style
// script benchmark and the Buchholz synthetic file-update job, run against
// the same three file-system models as the user-oriented generator.
//
// This is the paper's "benchmarks are too artificial" argument made
// concrete: a script produces one fixed op sequence, so it cannot answer
// "what happens when the number of users changes?" — the question the
// user-oriented generator exists for.

#include <iostream>

#include "common/experiment.h"
#include "core/baseline.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "util/table.h"

namespace {

using namespace wlgen;

void run_candidate(const std::string& name, bench::ModelKind kind) {
  std::cout << "--- " << name << " ---\n";

  // Andrew-style script.
  {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    std::unique_ptr<fsmodel::FileSystemModel> model;
    switch (kind) {
      case bench::ModelKind::nfs: model = std::make_unique<fsmodel::NfsModel>(simulation); break;
      case bench::ModelKind::local:
        model = std::make_unique<fsmodel::LocalDiskModel>(simulation);
        break;
      case bench::ModelKind::wholefile:
        model = std::make_unique<fsmodel::WholeFileCacheModel>(simulation);
        break;
    }
    core::ScriptRunner runner(simulation, fsys, *model);
    const core::ScriptResult result =
        runner.run(core::make_andrew_script(core::AndrewConfig{}), core::andrew_phase_names());
    util::TextTable table({"Andrew phase", "elapsed (ms)"});
    for (std::size_t i = 0; i < result.phase_us.size(); ++i) {
      table.add_row({result.phase_names[i], util::TextTable::num(result.phase_us[i] / 1000.0, 1)});
    }
    table.add_row({"total", util::TextTable::num(result.total_us / 1000.0, 1)});
    std::cout << table.render();
  }

  // Buchholz synthetic update job.
  {
    sim::Simulation simulation;
    fs::SimulatedFileSystem fsys;
    std::unique_ptr<fsmodel::FileSystemModel> model;
    switch (kind) {
      case bench::ModelKind::nfs: model = std::make_unique<fsmodel::NfsModel>(simulation); break;
      case bench::ModelKind::local:
        model = std::make_unique<fsmodel::LocalDiskModel>(simulation);
        break;
      case bench::ModelKind::wholefile:
        model = std::make_unique<fsmodel::WholeFileCacheModel>(simulation);
        break;
    }
    core::ScriptRunner runner(simulation, fsys, *model);
    core::BuchholzConfig config;
    const core::ScriptResult result =
        runner.run(core::make_buchholz_script(config), core::buchholz_phase_names(config));
    std::cout << "  Buchholz update pass: "
              << util::TextTable::num(result.phase_us.back() / 1000.0, 1) << " ms for "
              << config.detail_records << " detail-driven master updates\n\n";
  }
}

}  // namespace

int main() {
  using namespace wlgen;
  bench::print_header("Baselines — Andrew-style script and Buchholz synthetic job",
                      "related work the paper positions against (sections 2.1, 5.3)");
  run_candidate("SUN NFS model", bench::ModelKind::nfs);
  run_candidate("local disk model", bench::ModelKind::local);
  run_candidate("whole-file caching model", bench::ModelKind::wholefile);
  std::cout << "Contrast with bench/table5_3: the script benchmarks produce one number\n"
               "per system, while the user-oriented generator sweeps populations and\n"
               "load levels from the same measured characterisation.\n";
  return 0;
}
