// Microbenchmarks (google-benchmark): throughput of the hot paths every
// experiment leans on — distribution sampling, CDF-table lookup, the DES
// event loop, resource queueing, the simulated file system, and the LRU
// caches.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_main.h"
#include "dist/basic.h"
#include "dist/cdf_table.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "fs/filesystem.h"
#include "fsmodel/lru_cache.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stages.h"
#include "util/rng.h"

namespace {

using namespace wlgen;

// Batched uniform path: RngStream::uniform01 serves from a 128-draw block
// filled in one tight mt19937_64 loop (see DESIGN.md "Batched RNG").
void BM_RngUniform01(benchmark::State& state) {
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform01);

// Reference path: one std::uniform_real_distribution dispatch per draw on
// the same engine — what uniform01 cost before batching; kept on the
// scoreboard to document the amortisation.
void BM_RngUniform01Unbatched(benchmark::State& state) {
  util::RngStream rng(1, "bm");
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(dist(rng.engine()));
}
BENCHMARK(BM_RngUniform01Unbatched);

void BM_SampleExponential(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SampleExponential);

void BM_SamplePhaseTypeExponential(benchmark::State& state) {
  const auto d = dist::PhaseTypeExponential::paper_example_c();
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SamplePhaseTypeExponential);

void BM_SampleMultiStageGamma(benchmark::State& state) {
  const auto d = dist::MultiStageGamma::paper_example_c();
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SampleMultiStageGamma);

// Batched counterparts of the scalar sampling benches above: one sample_n
// call per kSampleBatch draws (the per-characteristic refill size the USIM's
// draw buffers use).  Items = draws, so items/s compares directly against
// the scalar entries.  The batch kernels consume the stream in the same
// order as the scalar path (pinned by dist_test SampleNMatchesScalar*).
constexpr std::size_t kSampleBatch = 256;

void BM_SamplePhaseTypeExponentialBatch(benchmark::State& state) {
  const auto d = dist::PhaseTypeExponential::paper_example_c();
  util::RngStream rng(1, "bm");
  std::vector<double> out(kSampleBatch);
  for (auto _ : state) {
    d.sample_n(rng, out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSampleBatch));
}
BENCHMARK(BM_SamplePhaseTypeExponentialBatch);

void BM_SampleMultiStageGammaBatch(benchmark::State& state) {
  const auto d = dist::MultiStageGamma::paper_example_c();
  util::RngStream rng(1, "bm");
  std::vector<double> out(kSampleBatch);
  for (auto _ : state) {
    d.sample_n(rng, out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSampleBatch));
}
BENCHMARK(BM_SampleMultiStageGammaBatch);

void BM_CdfTableSample(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  const dist::CdfTable table = dist::build_cdf_table(d, static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_CdfTableSample)->Arg(16)->Arg(256)->Arg(4096);

// Reference path: O(log n) binary search over the F column.  Kept on the
// scoreboard to document the alias method's flat profile against it.
void BM_CdfTableSampleBinarySearch(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  const dist::CdfTable table = dist::build_cdf_table(d, static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(table.sample_binary(rng));
}
BENCHMARK(BM_CdfTableSampleBinarySearch)->Arg(16)->Arg(256)->Arg(4096);

// Batched alias path: one fill_uniform01 per kSampleBatch draws plus a
// branch-free resolve loop (no data-dependent accept/alias branch).  Items =
// draws; compare items/s against BM_CdfTableSample at the same table size.
void BM_CdfTableSampleBatch(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  const dist::CdfTable table = dist::build_cdf_table(d, static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  std::vector<double> out(kSampleBatch);
  for (auto _ : state) {
    table.sample_n(rng, out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSampleBatch));
}
BENCHMARK(BM_CdfTableSampleBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_SimulationEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) sim.schedule(static_cast<double>(i), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationEventLoop)->Arg(1000)->Arg(10000);

// Steady-state event churn: a fixed-size pending set where every dispatched
// event reschedules a successor at a random future time — the USIM's actual
// heap access pattern (BM_SimulationEventLoop above is the fill-then-drain
// shape).  Items = events dispatched.
struct ChurnState {
  sim::Simulation sim;
  util::RngStream rng{1, "bm"};
  std::uint64_t remaining = 0;
};

void churn_hop(ChurnState* cs) {
  if (cs->remaining == 0) return;
  --cs->remaining;
  cs->sim.schedule(cs->rng.uniform01() * 100.0, [cs] { churn_hop(cs); });
}

void BM_SimulationEventChurn(benchmark::State& state) {
  const std::size_t pending = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kHops = 32;
  for (auto _ : state) {
    ChurnState cs;
    cs.remaining = kHops * pending;
    for (std::size_t i = 0; i < pending; ++i) {
      cs.sim.schedule(cs.rng.uniform01() * 100.0, [p = &cs] { churn_hop(p); });
    }
    cs.sim.run();
    benchmark::DoNotOptimize(cs.sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>((kHops + 1) * pending));
}
BENCHMARK(BM_SimulationEventChurn)->Arg(1024)->Arg(65536);

// --- AoS vs SoA heap layout, isolated ----------------------------------
// Two minimal 4-ary min-heaps with the Simulation's exact sift logic: the
// former 24-byte {when, seq, slot} AoS entry versus the current split into
// a 16-byte key array plus a parallel 4-byte slot array (DESIGN.md "SoA
// event heap").  Same keys, same comparisons — only the bytes moved per
// sift level differ, so the pair isolates the pure layout effect.  The AoS
// variant is the reference path kept on the scoreboard.
struct HeapAos {
  struct Entry {
    double when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  std::vector<Entry> entries;

  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void push(double when, std::uint64_t seq, std::uint32_t slot) {
    entries.push_back({when, seq, slot});
    std::size_t i = entries.size() - 1;
    const Entry e = entries[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, entries[parent])) break;
      entries[i] = entries[parent];
      i = parent;
    }
    entries[i] = e;
  }
  std::uint32_t pop() {
    const std::uint32_t top = entries.front().slot;
    entries.front() = entries.back();
    entries.pop_back();
    const std::size_t n = entries.size();
    if (n == 0) return top;
    std::size_t i = 0;
    const Entry e = entries[0];
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(entries[c], entries[best])) best = c;
      }
      if (!before(entries[best], e)) break;
      entries[i] = entries[best];
      i = best;
    }
    entries[i] = e;
    return top;
  }
  bool empty() const { return entries.empty(); }
};

struct HeapSoa {
  struct Key {
    double when;
    std::uint64_t seq;
  };
  std::vector<Key> keys;
  std::vector<std::uint32_t> slots;

  static bool before(const Key& a, const Key& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void push(double when, std::uint64_t seq, std::uint32_t slot) {
    keys.push_back({when, seq});
    slots.push_back(slot);
    std::size_t i = keys.size() - 1;
    const Key key = keys[i];
    const std::uint32_t s = slots[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(key, keys[parent])) break;
      keys[i] = keys[parent];
      slots[i] = slots[parent];
      i = parent;
    }
    keys[i] = key;
    slots[i] = s;
  }
  std::uint32_t pop() {
    const std::uint32_t top = slots.front();
    keys.front() = keys.back();
    slots.front() = slots.back();
    keys.pop_back();
    slots.pop_back();
    const std::size_t n = keys.size();
    if (n == 0) return top;
    std::size_t i = 0;
    const Key key = keys[0];
    const std::uint32_t s = slots[0];
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(keys[c], keys[best])) best = c;
      }
      if (!before(keys[best], key)) break;
      keys[i] = keys[best];
      slots[i] = slots[best];
      i = best;
    }
    keys[i] = key;
    slots[i] = s;
    return top;
  }
  bool empty() const { return keys.empty(); }
};

template <typename Heap>
void heap_fill_drain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::RngStream rng(1, "bm");
  std::vector<double> whens(n);
  for (auto& w : whens) w = rng.uniform01() * 1e6;
  Heap heap;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      heap.push(whens[i], i, static_cast<std::uint32_t>(i));
    }
    std::uint64_t sum = 0;
    while (!heap.empty()) sum += heap.pop();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_EventHeapAos(benchmark::State& state) { heap_fill_drain<HeapAos>(state); }
BENCHMARK(BM_EventHeapAos)->Arg(100000);

void BM_EventHeapSoa(benchmark::State& state) { heap_fill_drain<HeapSoa>(state); }
BENCHMARK(BM_EventHeapSoa)->Arg(100000);

void BM_ResourceQueueing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource disk(sim, "disk", 1);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) disk.use(1.0, [] {});
    sim.run();
    benchmark::DoNotOptimize(disk.completed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceQueueing)->Arg(1000);

void BM_StageChainExecution(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource disk(sim, "disk", 1);
    for (int i = 0; i < 500; ++i) {
      sim::execute_chain(sim,
                         {sim::Stage::make_delay(1.0), sim::Stage::make_use(disk, 2.0),
                          sim::Stage::make_delay(1.0)},
                         [](double) {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_StageChainExecution);

void BM_FsCreateWriteUnlink(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/f" + std::to_string(i++ % 1000);
    const auto fd = fsys.creat(path);
    fsys.write(fd.value(), 4096);
    fsys.close(fd.value());
    fsys.unlink(path);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_FsCreateWriteUnlink);

void BM_FsSequentialRead(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/big");
  fsys.write(fd.value(), 1 << 20);
  fsys.close(fd.value());
  const auto rd = fsys.open("/big", fs::kRead);
  for (auto _ : state) {
    if (fsys.read(rd.value(), 1024).value() == 0) fsys.lseek(rd.value(), 0, fs::Seek::set);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FsSequentialRead);

void BM_FsPathResolutionDeep(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  std::string path;
  for (int d = 0; d < 8; ++d) {
    path += "/d" + std::to_string(d);
    fsys.mkdir(path);
  }
  const std::string file = path + "/leaf";
  fsys.close(fsys.creat(file).value());
  for (auto _ : state) benchmark::DoNotOptimize(fsys.stat(file));
}
BENCHMARK(BM_FsPathResolutionDeep);

void BM_LruCacheAccess(benchmark::State& state) {
  fsmodel::LruCache cache(static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (std::int64_t i = 0; i < state.range(0); ++i) cache.insert(static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 2 * state.range(0)));
    if (!cache.access(key)) cache.insert(key);
  }
}
BENCHMARK(BM_LruCacheAccess)->Arg(384)->Arg(4096);

}  // namespace

WLGEN_BENCHMARK_MAIN();
