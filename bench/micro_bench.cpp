// Microbenchmarks (google-benchmark): throughput of the hot paths every
// experiment leans on — distribution sampling, CDF-table lookup, the DES
// event loop, resource queueing, the simulated file system, and the LRU
// caches.

#include <benchmark/benchmark.h>

#include "dist/basic.h"
#include "dist/cdf_table.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "fs/filesystem.h"
#include "fsmodel/lru_cache.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stages.h"
#include "util/rng.h"

namespace {

using namespace wlgen;

// Batched uniform path: RngStream::uniform01 serves from a 128-draw block
// filled in one tight mt19937_64 loop (see DESIGN.md "Batched RNG").
void BM_RngUniform01(benchmark::State& state) {
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform01);

// Reference path: one std::uniform_real_distribution dispatch per draw on
// the same engine — what uniform01 cost before batching; kept on the
// scoreboard to document the amortisation.
void BM_RngUniform01Unbatched(benchmark::State& state) {
  util::RngStream rng(1, "bm");
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(dist(rng.engine()));
}
BENCHMARK(BM_RngUniform01Unbatched);

void BM_SampleExponential(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SampleExponential);

void BM_SamplePhaseTypeExponential(benchmark::State& state) {
  const auto d = dist::PhaseTypeExponential::paper_example_c();
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SamplePhaseTypeExponential);

void BM_SampleMultiStageGamma(benchmark::State& state) {
  const auto d = dist::MultiStageGamma::paper_example_c();
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_SampleMultiStageGamma);

void BM_CdfTableSample(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  const dist::CdfTable table = dist::build_cdf_table(d, static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_CdfTableSample)->Arg(16)->Arg(256)->Arg(4096);

// Reference path: O(log n) binary search over the F column.  Kept on the
// scoreboard to document the alias method's flat profile against it.
void BM_CdfTableSampleBinarySearch(benchmark::State& state) {
  dist::ExponentialDistribution d(1024.0);
  const dist::CdfTable table = dist::build_cdf_table(d, static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (auto _ : state) benchmark::DoNotOptimize(table.sample_binary(rng));
}
BENCHMARK(BM_CdfTableSampleBinarySearch)->Arg(16)->Arg(256)->Arg(4096);

void BM_SimulationEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) sim.schedule(static_cast<double>(i), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationEventLoop)->Arg(1000)->Arg(10000);

void BM_ResourceQueueing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource disk(sim, "disk", 1);
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) disk.use(1.0, [] {});
    sim.run();
    benchmark::DoNotOptimize(disk.completed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceQueueing)->Arg(1000);

void BM_StageChainExecution(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Resource disk(sim, "disk", 1);
    for (int i = 0; i < 500; ++i) {
      sim::execute_chain(sim,
                         {sim::Stage::make_delay(1.0), sim::Stage::make_use(disk, 2.0),
                          sim::Stage::make_delay(1.0)},
                         [](double) {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_StageChainExecution);

void BM_FsCreateWriteUnlink(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/f" + std::to_string(i++ % 1000);
    const auto fd = fsys.creat(path);
    fsys.write(fd.value(), 4096);
    fsys.close(fd.value());
    fsys.unlink(path);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_FsCreateWriteUnlink);

void BM_FsSequentialRead(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  const auto fd = fsys.creat("/big");
  fsys.write(fd.value(), 1 << 20);
  fsys.close(fd.value());
  const auto rd = fsys.open("/big", fs::kRead);
  for (auto _ : state) {
    if (fsys.read(rd.value(), 1024).value() == 0) fsys.lseek(rd.value(), 0, fs::Seek::set);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FsSequentialRead);

void BM_FsPathResolutionDeep(benchmark::State& state) {
  fs::SimulatedFileSystem fsys;
  std::string path;
  for (int d = 0; d < 8; ++d) {
    path += "/d" + std::to_string(d);
    fsys.mkdir(path);
  }
  const std::string file = path + "/leaf";
  fsys.close(fsys.creat(file).value());
  for (auto _ : state) benchmark::DoNotOptimize(fsys.stat(file));
}
BENCHMARK(BM_FsPathResolutionDeep);

void BM_LruCacheAccess(benchmark::State& state) {
  fsmodel::LruCache cache(static_cast<std::size_t>(state.range(0)));
  util::RngStream rng(1, "bm");
  for (std::int64_t i = 0; i < state.range(0); ++i) cache.insert(static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 2 * state.range(0)));
    if (!cache.access(key)) cache.insert(key);
  }
}
BENCHMARK(BM_LruCacheAccess)->Arg(384)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
