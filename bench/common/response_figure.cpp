#include "common/response_figure.h"

#include <iostream>

#include "util/ascii_plot.h"
#include "util/svg.h"
#include "util/table.h"

namespace wlgen::bench {

void run_response_figure(const std::string& figure_id, const std::string& title,
                         const core::Population& population, const std::string& paper_note,
                         std::size_t sessions) {
  print_header(figure_id + " — " + title, paper_note);

  const std::vector<double> series = response_per_byte_sweep(population, 6, sessions);

  util::TextTable table({"users", "response time per byte (us)"});
  std::vector<double> xs;
  for (std::size_t users = 1; users <= series.size(); ++users) {
    xs.push_back(static_cast<double>(users));
    table.add_row({std::to_string(users), util::TextTable::num(series[users - 1], 3)});
  }
  std::cout << table.render() << "\n";

  util::PlotOptions options;
  options.title = title;
  options.x_label = "number of users using the computer simultaneously";
  options.y_label = "response time per byte (us)";
  options.height = 12;
  std::cout << util::ascii_curve(xs, series, options) << "\n";

  util::SvgSeries svg_series;
  svg_series.xs = xs;
  svg_series.ys = series;
  svg_series.label = figure_id;
  util::SvgOptions svg_options;
  svg_options.title = figure_id + ": " + title;
  svg_options.x_label = "users";
  svg_options.y_label = "us per byte";
  const std::string path =
      write_artifact(figure_id + ".svg", util::svg_plot({svg_series}, svg_options));
  if (!path.empty()) std::cout << "SVG written to " << path << "\n";

  // Shape diagnostics: slope between successive points and linearity.
  const double rise = series.back() - series.front();
  std::cout << "\nShape: 1-user " << series.front() << " us/B -> 6-user " << series.back()
            << " us/B (growth " << (series.front() > 0 ? series.back() / series.front() : 0)
            << "x).\n";
  if (rise > 0) {
    double max_dev = 0.0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double linear =
          series.front() + rise * static_cast<double>(i) / static_cast<double>(series.size() - 1);
      max_dev = std::max(max_dev, std::fabs(series[i] - linear));
    }
    std::cout << "Max deviation from the straight line through the endpoints: "
              << util::TextTable::num(100.0 * max_dev / series.back(), 1) << "% of the 6-user value.\n";
  }
}

}  // namespace wlgen::bench
