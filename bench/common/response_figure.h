#pragma once

#include <string>

#include "common/experiment.h"

namespace wlgen::bench {

/// Runs and prints one of the paper's Figures 5.6–5.11: average response
/// time per byte for 1..6 simultaneous users of the given population, as a
/// table, a terminal curve, and an SVG artefact.  `paper_note` describes the
/// published curve's shape for eyeball comparison.
void run_response_figure(const std::string& figure_id, const std::string& title,
                         const core::Population& population, const std::string& paper_note,
                         std::size_t sessions = 50);

}  // namespace wlgen::bench
