#pragma once

#include <string>
#include <vector>

#include "common/experiment.h"
#include "stats/histogram.h"
#include "stats/smoothing.h"

namespace wlgen::bench {

/// Runs the paper's 600-login-session characterisation workload (section
/// 5.1) once; Figures 5.3–5.5 are different projections of this run.
ExperimentOutput characterisation_run(std::size_t sessions = 600);

/// Prints a Figure 5.3/5.4/5.5-style panel: the histogram before smoothing,
/// then after moving-average smoothing, as terminal bar charts; also writes
/// an SVG artefact when possible.
void print_session_figure(const std::string& figure_id, const std::string& title,
                          const stats::Histogram& histogram, const std::string& x_label);

}  // namespace wlgen::bench
