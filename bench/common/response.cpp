#include "common/response.h"

#include <utility>

#include "exp/workload.h"

namespace wlgen::bench {

exp::Experiment response_experiment(std::string id, std::string artifact, std::string title,
                                    core::Population population, std::string paper_claim,
                                    std::vector<exp::Expectation> expectations) {
  exp::Experiment experiment;
  experiment.id = std::move(id);
  experiment.artifact = std::move(artifact);
  experiment.title = std::move(title);
  experiment.paper_claim = std::move(paper_claim);
  experiment.expectations = std::move(expectations);
  experiment.run = [population = std::move(population)](const exp::RunContext& ctx) {
    const std::vector<double> levels =
        exp::response_per_byte_sweep(population, 6, ctx.sessions(50), ctx.seed);
    std::vector<double> users;
    for (std::size_t u = 1; u <= levels.size(); ++u) users.push_back(static_cast<double>(u));

    exp::ExperimentResult result;
    result.x_label = "number of users using the computer simultaneously";
    result.y_label = "response time per byte (us)";
    result.add_series("response", users, levels);
    result.set_scalar("first_user_us_per_byte", levels.front());
    result.set_scalar("final_us_per_byte", levels.back());
    result.set_scalar("growth_ratio",
                      levels.front() > 0.0 ? levels.back() / levels.front() : 0.0);
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
