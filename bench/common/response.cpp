#include "common/response.h"

#include <utility>

#include "exp/workload.h"

namespace wlgen::bench {

exp::Experiment response_experiment(std::string id, std::string artifact, std::string title,
                                    core::Population population, std::string paper_claim,
                                    std::vector<exp::Expectation> expectations) {
  exp::Experiment experiment;
  experiment.id = std::move(id);
  experiment.artifact = std::move(artifact);
  experiment.title = std::move(title);
  experiment.paper_claim = std::move(paper_claim);
  experiment.expectations = std::move(expectations);
  experiment.run = [population = std::move(population)](const exp::RunContext& ctx) {
    exp::ContendedSweepConfig sweep;
    sweep.max_users = 6;
    sweep.sessions_per_user = ctx.sessions(50);
    sweep.replications = ctx.replications;
    sweep.threads = ctx.contended_threads;
    sweep.seed = ctx.seed;
    sweep.population = population;
    const std::vector<exp::ContendedSweepPoint> points = exp::contended_response_sweep(sweep);

    std::vector<double> users, levels, ci_lo, ci_hi;
    for (const auto& point : points) {
      users.push_back(static_cast<double>(point.users));
      levels.push_back(point.response_per_byte_us);
      ci_lo.push_back(point.ci.lo());
      ci_hi.push_back(point.ci.hi());
    }

    exp::ExperimentResult result;
    result.x_label = "number of users using the computer simultaneously";
    result.y_label = "response time per byte (us)";
    result.add_series("response", users, levels);
    if (ctx.replications > 1) {
      // Cross-replication 95% band around the per-replication mean level.
      result.add_series("ci_lo", users, ci_lo).color = "#c0c0c0";
      result.add_series("ci_hi", users, ci_hi).color = "#c0c0c0";
    }
    result.set_scalar("first_user_us_per_byte", levels.front());
    result.set_scalar("final_us_per_byte", levels.back());
    result.set_scalar("growth_ratio",
                      levels.front() > 0.0 ? levels.back() / levels.front() : 0.0);
    result.set_scalar("final_ci_half_width", points.back().ci.half_width);
    result.set_scalar("replications", static_cast<double>(ctx.replications));
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
