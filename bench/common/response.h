#pragma once

#include <string>
#include <vector>

#include "core/workload.h"
#include "exp/expectation.h"
#include "exp/registry.h"

namespace wlgen::bench {

/// Builds one of the paper's Figures 5.6–5.11 experiments: average response
/// time per byte for 1..6 simultaneous users of the given population, run on
/// the contended runner (exp::contended_response_sweep) with
/// ctx.replications independent replications per load point.  The result
/// carries a "response" series (pooled us/byte vs users) plus ci_lo/ci_hi
/// band series and the scalars `first_user_us_per_byte`,
/// `final_us_per_byte`, `growth_ratio` (6-user / 1-user level),
/// `final_ci_half_width` and `replications` that the expectations grade.
exp::Experiment response_experiment(std::string id, std::string artifact, std::string title,
                                    core::Population population, std::string paper_claim,
                                    std::vector<exp::Expectation> expectations);

}  // namespace wlgen::bench
