#include "common/figures.h"

#include <iostream>

#include "util/ascii_plot.h"
#include "util/svg.h"

namespace wlgen::bench {

ExperimentOutput characterisation_run(std::size_t sessions) {
  ExperimentConfig config;
  config.num_users = 1;
  config.sessions_per_user = sessions;
  config.seed = 600;
  return run_experiment(config);
}

void print_session_figure(const std::string& figure_id, const std::string& title,
                          const stats::Histogram& histogram, const std::string& x_label) {
  util::PlotOptions options;
  options.width = 48;

  options.title = "(a) before smoothing — " + title;
  std::cout << util::ascii_histogram(histogram.edges(), histogram.counts(), options) << "\n";

  const stats::Histogram smoothed =
      stats::smooth_histogram(histogram, stats::SmoothingKind::moving_average, 3.0);
  options.title = "(b) after smoothing — " + title;
  std::cout << util::ascii_histogram(smoothed.edges(), smoothed.counts(), options) << "\n";

  // SVG artefact: both curves on one chart.
  util::SvgSeries raw, smooth;
  raw.label = "before";
  raw.color = "#9ecae1";
  smooth.label = "after";
  smooth.color = "#d62728";
  const auto centers = histogram.centers();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    raw.xs.push_back(centers[i]);
    raw.ys.push_back(histogram.counts()[i]);
    smooth.xs.push_back(centers[i]);
    smooth.ys.push_back(smoothed.counts()[i]);
  }
  util::SvgOptions svg_options;
  svg_options.title = figure_id + ": " + title;
  svg_options.x_label = x_label;
  svg_options.y_label = "count";
  const std::string path =
      write_artifact(figure_id + ".svg", util::svg_plot({raw, smooth}, svg_options));
  if (!path.empty()) std::cout << "SVG written to " << path << "\n";
}

}  // namespace wlgen::bench
