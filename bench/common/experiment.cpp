#include "common/experiment.h"

#include <cstdlib>
#include <iostream>

#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "util/svg.h"

namespace wlgen::bench {

namespace {

std::unique_ptr<fsmodel::FileSystemModel> make_model(ModelKind kind, sim::Simulation& sim) {
  switch (kind) {
    case ModelKind::nfs: return std::make_unique<fsmodel::NfsModel>(sim);
    case ModelKind::local: return std::make_unique<fsmodel::LocalDiskModel>(sim);
    case ModelKind::wholefile: return std::make_unique<fsmodel::WholeFileCacheModel>(sim);
  }
  throw std::logic_error("make_model: bad kind");
}

}  // namespace

ExperimentOutput run_experiment(const ExperimentConfig& config) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto model = make_model(config.model, simulation);
  if (config.tune_model) config.tune_model(*model);

  core::FscConfig fsc_config;
  fsc_config.num_users = config.num_users;
  fsc_config.seed = config.seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config.usim;
  usim_config.num_users = config.num_users;
  usim_config.sessions_per_user = config.sessions_per_user;
  usim_config.seed = config.seed;

  core::Population population = config.population;
  if (population.groups.empty()) population = core::default_population();

  core::UserSimulator usim(simulation, fsys, *model, manifest, population, usim_config);
  usim.run();

  const core::UsageAnalyzer analyzer(usim.log());
  ExperimentOutput out;
  out.response_per_byte_us = analyzer.response_per_byte_us();
  out.access_size = analyzer.access_size_stats();
  out.response_us = analyzer.response_stats();
  out.sessions = analyzer.sessions();
  out.per_category = analyzer.per_category_usage();
  out.per_op = analyzer.per_op_stats();
  out.total_ops = usim.total_ops();
  out.simulated_us = simulation.now();
  out.model_stats = model->stats_summary();
  out.log = usim.log();
  return out;
}

std::vector<double> response_per_byte_sweep(const core::Population& population,
                                            std::size_t max_users, std::size_t sessions,
                                            std::uint64_t seed, ModelKind model) {
  std::vector<double> out;
  for (std::size_t users = 1; users <= max_users; ++users) {
    ExperimentConfig config;
    config.num_users = users;
    config.sessions_per_user = sessions;
    config.seed = seed + users;
    config.model = model;
    config.population = population;
    config.usim.collect_log = true;
    out.push_back(run_experiment(config).response_per_byte_us);
  }
  return out;
}

std::string write_artifact(const std::string& name, const std::string& content) {
  const char* dir = std::getenv("WLGEN_OUT");
  const std::string base = dir != nullptr ? dir : "artifacts";
  const std::string path = base + "/" + name;
  try {
    util::write_text_file(path, content);
  } catch (const std::exception&) {
    return {};
  }
  return path;
}

void print_header(const std::string& artefact, const std::string& paper_summary) {
  std::cout << "==========================================================================\n";
  std::cout << artefact << "\n";
  std::cout << "Paper reference: " << paper_summary << "\n";
  std::cout << "==========================================================================\n\n";
}

}  // namespace wlgen::bench
