#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fs/filesystem.h"
#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::bench {

/// Which performance model an experiment runs against.
enum class ModelKind { nfs, local, wholefile };

/// One full paper-style experiment: FSC builds the file system, USIM runs the
/// population, the analyzer digests the log.  Every bench binary goes through
/// this harness so experiments stay comparable.
struct ExperimentConfig {
  std::size_t num_users = 1;
  std::size_t sessions_per_user = 50;  ///< paper: "mean value during 50 login sessions"
  std::uint64_t seed = 1991;
  ModelKind model = ModelKind::nfs;
  core::Population population;
  core::UsimConfig usim;  ///< num_users/sessions/seed are overwritten from above
  std::function<void(fsmodel::FileSystemModel&)> tune_model;  ///< optional
};

/// Everything a bench needs to print a paper artefact.
struct ExperimentOutput {
  double response_per_byte_us = 0.0;
  stats::RunningSummary access_size;
  stats::RunningSummary response_us;
  std::vector<core::SessionSummary> sessions;
  std::map<std::string, core::CategoryUsage> per_category;
  std::map<fsmodel::FsOpType, core::OpTypeStats> per_op;
  std::uint64_t total_ops = 0;
  double simulated_us = 0.0;
  std::string model_stats;
  core::UsageLog log;  ///< full log (for figure histograms)
};

/// Runs one experiment to completion.
ExperimentOutput run_experiment(const ExperimentConfig& config);

/// The paper's Figures 5.6–5.11 sweep: response time per byte for 1..max_users
/// simultaneous users of the given population.
std::vector<double> response_per_byte_sweep(const core::Population& population,
                                            std::size_t max_users, std::size_t sessions,
                                            std::uint64_t seed = 1991,
                                            ModelKind model = ModelKind::nfs);

/// Writes an SVG artefact under $WLGEN_OUT (or ./artifacts) and returns the
/// path, or an empty string when writing fails (benches must not die on a
/// read-only filesystem).
std::string write_artifact(const std::string& name, const std::string& content);

/// Prints the standard bench header with the paper reference.
void print_header(const std::string& artefact, const std::string& paper_summary);

}  // namespace wlgen::bench
