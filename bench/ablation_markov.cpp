// Ablation — independence vs Markov operation stream (paper sections 3.1.4
// and 6.2).
//
// The paper assumes each operation is independent of the previous ones and
// flags "our assumption of independence in the file operation stream needs
// to be examined in greater detail" as future work.  This experiment runs
// the same population with increasing order-1 persistence and grades how
// much the measured response metrics move — i.e., how much the independence
// assumption matters for the paper's own evaluation.

#include <cmath>

#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_ablation_markov() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "ablation_markov";
  experiment.title = "independent vs Markov op stream";
  experiment.paper_claim = "paper 3.1.4 assumes independence; 6.2 proposes a Markov model";
  experiment.expectations = {
      exp::expect_scalar_in_range("max_rel_drift", 0.0, 0.1, Verdict::warn,
                                  "drift small vs Figures 5.6-5.11's spread: the "
                                  "independence assumption is benign"),
      exp::expect_scalar_in_range("max_rel_drift", 0.0, 0.3, Verdict::fail,
                                  "persistence must not swing the response metrics wildly"),
      exp::expect_scalar_in_range("zero_persistence_drift", 0.0, 1e-9, Verdict::fail,
                                  "markov p=0 must reproduce the independent stream exactly"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<double> persistences = {-1.0, 0.0, 0.5, 0.8, 0.95};
    std::vector<double> xs, levels;
    for (const double p : persistences) {
      exp::WorkloadConfig config;
      config.num_users = 4;
      config.sessions_per_user = ctx.sessions(40);
      config.seed = ctx.seed + 808;
      config.usim.markov_persistence = p;
      levels.push_back(exp::run_workload(config).response_per_byte_us);
      xs.push_back(std::max(p, 0.0));  // plot the independent baseline at p=0
    }

    exp::ExperimentResult result;
    result.x_label = "order-1 persistence p (first point: independent baseline)";
    result.y_label = "response time per byte (us)";
    result.add_series("response", xs, levels);
    const double baseline = levels.front();
    double max_drift = 0.0;
    for (const double level : levels) {
      if (baseline > 0.0) max_drift = std::max(max_drift, std::fabs(level - baseline) / baseline);
    }
    result.set_scalar("independent_us_per_byte", baseline);
    result.set_scalar("max_rel_drift", max_drift);
    result.set_scalar("zero_persistence_drift",
                      baseline > 0.0 ? std::fabs(levels[1] - baseline) / baseline : 1.0);
    result.notes.push_back(
        "Higher persistence = longer same-file runs = better client cache "
        "locality, so response per byte drifts somewhat.  A drift small "
        "relative to the Figures 5.6-5.11 spread answers section 3.1.4's open "
        "question within the model.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
