// Ablation — independence vs Markov operation stream (paper sections 3.1.4
// and 6.2).
//
// The paper assumes each operation is independent of the previous ones and
// flags "our assumption of independence in the file operation stream needs
// to be examined in greater detail" as future work.  This bench runs the
// same population with increasing order-1 persistence and reports how the
// measured response metrics move — i.e., how much the independence
// assumption matters for the paper's own evaluation.

#include <iostream>

#include "common/experiment.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Ablation — independent vs Markov op stream",
                      "paper 3.1.4 assumes independence; 6.2 proposes a Markov model");

  const std::vector<double> persistences = {-1.0, 0.0, 0.5, 0.8, 0.95};
  util::TextTable table({"op stream", "resp/byte us", "mean resp us", "std resp us",
                         "access size B"});
  for (double p : persistences) {
    bench::ExperimentConfig config;
    config.num_users = 4;
    config.sessions_per_user = 40;
    config.seed = 808;
    config.usim.markov_persistence = p;
    const bench::ExperimentOutput out = bench::run_experiment(config);
    const std::string label = p < 0.0 ? "independent (paper)" : "markov p=" + util::TextTable::num(p, 2);
    table.add_row({label, util::TextTable::num(out.response_per_byte_us, 3),
                   util::TextTable::num(out.response_us.mean(), 0),
                   util::TextTable::num(out.response_us.stddev(), 0),
                   util::TextTable::num(out.access_size.mean(), 0)});
  }
  std::cout << table.render();
  std::cout << "\nReading: higher persistence = longer same-file runs = better client\n"
               "cache locality, so response per byte drifts down somewhat.  If the drift\n"
               "is small relative to Figures 5.6-5.11's spread, the paper's independence\n"
               "assumption is benign for its conclusions; that is the 'open research\n"
               "question' of section 3.1.4 answered within the model.\n";
  return 0;
}
