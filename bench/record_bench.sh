#!/usr/bin/env bash
# Records the micro-benchmark scoreboard to BENCH_micro.json (the repo's
# perf trajectory; see DESIGN.md).  Also runnable via the CMake target:
#
#   cmake --build build -t record_bench
#
# Usage: bench/record_bench.sh [micro_bench] [output.json] [micro_runner] [micro_spill]
#
# When the micro_runner binary exists (third argument, defaulting to the
# sibling of micro_bench), its runner-scaling entries — BM_ShardedRunner
# shard scaling, BM_ContendedRunner contended-replication scaling, the
# BM_MergeUserLogs fold, and BM_ScenarioMultiBackend scenario-parallelism
# scaling — are merged into the same scoreboard file.  The runner entries
# carry a "pool_busy_pct" counter (worker busy / (busy + idle), via
# obs.pool) so a flat curve on the scoreboard is self-diagnosing.
#
# When the micro_spill binary exists (fourth argument, same default rule),
# its population-scaling entries — BM_SpillPopulation wall time and peak-RSS
# counters with the streaming spill path on vs off — are merged too.
#
# Debug-build guard: numbers from an unoptimised binary are meaningless on a
# perf scoreboard, so recording refuses unless each binary's own
# "wlgen_build_type" context entry (bench/bench_main.h, keyed on NDEBUG)
# says "release".  The stock "library_build_type" field is NOT consulted: it
# describes how the distro built the google-benchmark *library*, which can
# read "debug" under a fully optimised wlgen build.
set -euo pipefail

BIN="${1:-build/micro_bench}"
OUT="${2:-BENCH_micro.json}"
RUNNER_BIN="${3:-$(dirname "$BIN")/micro_runner}"
SPILL_BIN="${4:-$(dirname "$BIN")/micro_spill}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build with: cmake --build build -t micro_bench)" >&2
  exit 1
fi

TMP_MAIN="$(mktemp)"
TMP_RUNNER="$(mktemp)"
TMP_SPILL="$(mktemp)"
trap 'rm -f "$TMP_MAIN" "$TMP_RUNNER" "$TMP_SPILL"' EXIT

# Appends the second file's "benchmarks" array onto the first file's.
merge_benchmarks() {
  python3 - "$1" "$2" <<'PY'
import json, sys
main_path, extra_path = sys.argv[1], sys.argv[2]
with open(main_path) as f:
    main = json.load(f)
with open(extra_path) as f:
    extra = json.load(f)
main["benchmarks"].extend(extra.get("benchmarks", []))
with open(main_path, "w") as f:
    json.dump(main, f, indent=2)
    f.write("\n")
PY
}

# Fails (exit 1) when the recorded context is not a release build of wlgen.
require_release() {
  python3 - "$1" "$2" <<'PY'
import json, sys
path, label = sys.argv[1], sys.argv[2]
with open(path) as f:
    context = json.load(f).get("context", {})
build = context.get("wlgen_build_type", "unknown")
if build != "release":
    sys.stderr.write(
        f"error: {label} reports wlgen_build_type={build!r} — refusing to record "
        "a scoreboard from an unoptimised binary.\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo) and re-run.\n")
    sys.exit(1)
PY
}

"$BIN" --benchmark_format=json --benchmark_min_time=0.2 --benchmark_repetitions=1 > "$TMP_MAIN"
require_release "$TMP_MAIN" "$BIN"

if [[ -x "$RUNNER_BIN" ]]; then
  "$RUNNER_BIN" --benchmark_format=json --benchmark_min_time=0.5 --benchmark_repetitions=1 > "$TMP_RUNNER"
  require_release "$TMP_RUNNER" "$RUNNER_BIN"
  merge_benchmarks "$TMP_MAIN" "$TMP_RUNNER"
else
  echo "note: $RUNNER_BIN not found — scoreboard recorded without runner-scaling entries" >&2
fi

if [[ -x "$SPILL_BIN" ]]; then
  "$SPILL_BIN" --benchmark_format=json --benchmark_min_time=0.2 --benchmark_repetitions=1 > "$TMP_SPILL"
  require_release "$TMP_SPILL" "$SPILL_BIN"
  merge_benchmarks "$TMP_MAIN" "$TMP_SPILL"
else
  echo "note: $SPILL_BIN not found — scoreboard recorded without spill population-scaling entries" >&2
fi

# Stamp build provenance into the context so a scoreboard entry can always
# be traced back to the exact tree that produced it.
GIT_SHA="$(git -C "$(dirname "$0")/.." rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=false
if [[ "$GIT_SHA" != unknown ]] && \
   [[ -n "$(git -C "$(dirname "$0")/.." status --porcelain 2>/dev/null)" ]]; then
  GIT_DIRTY=true
fi
python3 - "$TMP_MAIN" "$GIT_SHA" "$GIT_DIRTY" <<'PY'
import json, sys
path, sha, dirty = sys.argv[1], sys.argv[2], sys.argv[3] == "true"
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})["git_sha"] = sha
doc["context"]["git_dirty"] = dirty
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY

mv "$TMP_MAIN" "$OUT"
chmod 644 "$OUT"
echo "wrote $OUT"
