#!/usr/bin/env bash
# Records the micro-benchmark scoreboard to BENCH_micro.json (the repo's
# perf trajectory; see DESIGN.md).  Also runnable via the CMake target:
#
#   cmake --build build -t record_bench
#
# Usage: bench/record_bench.sh [path-to-micro_bench] [output.json]
set -euo pipefail

BIN="${1:-build/micro_bench}"
OUT="${2:-BENCH_micro.json}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build with: cmake --build build -t micro_bench)" >&2
  exit 1
fi

"$BIN" --benchmark_format=json --benchmark_min_time=0.2 --benchmark_repetitions=1 > "$OUT"
echo "wrote $OUT"
