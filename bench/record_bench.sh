#!/usr/bin/env bash
# Records the micro-benchmark scoreboard to BENCH_micro.json (the repo's
# perf trajectory; see DESIGN.md).  Also runnable via the CMake target:
#
#   cmake --build build -t record_bench
#
# Usage: bench/record_bench.sh [path-to-micro_bench] [output.json] [path-to-micro_runner]
#
# When the micro_runner binary exists (third argument, defaulting to the
# sibling of micro_bench), its runner-scaling entries — BM_ShardedRunner
# shard scaling, BM_ContendedRunner contended-replication scaling, and the
# BM_MergeUserLogs fold — are merged into the same scoreboard file.
set -euo pipefail

BIN="${1:-build/micro_bench}"
OUT="${2:-BENCH_micro.json}"
RUNNER_BIN="${3:-$(dirname "$BIN")/micro_runner}"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build with: cmake --build build -t micro_bench)" >&2
  exit 1
fi

"$BIN" --benchmark_format=json --benchmark_min_time=0.2 --benchmark_repetitions=1 > "$OUT"

if [[ -x "$RUNNER_BIN" ]]; then
  RUNNER_OUT="$(mktemp)"
  trap 'rm -f "$RUNNER_OUT"' EXIT
  "$RUNNER_BIN" --benchmark_format=json --benchmark_min_time=0.5 --benchmark_repetitions=1 > "$RUNNER_OUT"
  python3 - "$OUT" "$RUNNER_OUT" <<'PY'
import json, sys
main_path, runner_path = sys.argv[1], sys.argv[2]
with open(main_path) as f:
    main = json.load(f)
with open(runner_path) as f:
    runner = json.load(f)
main["benchmarks"].extend(runner.get("benchmarks", []))
with open(main_path, "w") as f:
    json.dump(main, f, indent=2)
    f.write("\n")
PY
else
  echo "note: $RUNNER_BIN not found — scoreboard recorded without shard-scaling entries" >&2
fi
echo "wrote $OUT"
