// Shared benchmark entry point: BENCHMARK_MAIN() plus a "wlgen_build_type"
// context entry reflecting how *this binary* was compiled (NDEBUG => a
// release/optimised build).  The stock "library_build_type" context field
// describes the google-benchmark library the distro shipped — on systems
// whose libbenchmark package was built Debug it reads "debug" even when the
// wlgen benchmarks themselves are -O2/-O3 — so the recording gate in
// bench/record_bench.sh keys on this field instead.
#pragma once

#include <benchmark/benchmark.h>

namespace wlgen_bench {
#ifdef NDEBUG
inline constexpr const char* kBuildType = "release";
#else
inline constexpr const char* kBuildType = "debug";
#endif
}  // namespace wlgen_bench

#define WLGEN_BENCHMARK_MAIN()                                            \
  int main(int argc, char** argv) {                                       \
    benchmark::AddCustomContext("wlgen_build_type",                       \
                                wlgen_bench::kBuildType);                 \
    benchmark::Initialize(&argc, argv);                                   \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    benchmark::RunSpecifiedBenchmarks();                                  \
    benchmark::Shutdown();                                                \
    return 0;                                                             \
  }                                                                       \
  static_assert(true, "require a trailing semicolon")
