// Figure 5.5 — distribution of the number of files referenced per login
// session, before and after smoothing.
//
// Paper shape: right-skewed over 0..100 files with the bulk below ~40.

#include <iostream>

#include "common/figures.h"

int main() {
  using namespace wlgen;
  bench::print_header("Figure 5.5 — number of files referenced (600 sessions)",
                      "right-skewed over 0..100 files, bulk below ~40");
  const bench::ExperimentOutput out = bench::characterisation_run();
  const core::UsageAnalyzer analyzer(out.log);
  const auto histogram = analyzer.session_files_histogram(24);
  bench::print_session_figure("fig5_5", "files referenced per session", histogram, "files");

  stats::RunningSummary files;
  for (const auto& s : out.sessions) files.add(static_cast<double>(s.files_referenced));
  std::cout << "\nSessions: " << out.sessions.size()
            << "   files referenced mean(std): " << files.mean_std_string(1) << "\n";
  std::cout << "Shape check: the sum over categories of (percent users x mean files) in\n"
               "Table 5.2 puts the expected count near 28; the histogram should centre\n"
               "there and skew right.\n";
  return 0;
}
