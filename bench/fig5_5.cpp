// Figure 5.5 — distribution of the number of files referenced per login
// session, before and after smoothing.
//
// Paper shape: right-skewed over 0..100 files with the bulk below ~40; the
// Table 5.2 categories put the expected per-session count near 28.

#include "core/analysis.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_fig5_5() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "fig5_5";
  experiment.artifact = "Figure 5.5";
  experiment.title = "number of files referenced per login session";
  experiment.paper_claim = "right-skewed over 0..100 files, bulk below ~40, mean near 28";
  experiment.expectations = {
      exp::expect_scalar_in_range("mean_files", 20.0, 36.0, Verdict::warn,
                                  "sum over Table 5.2 categories of %users x files ~= 28"),
      exp::expect_scalar_in_range("mean_files", 5.0, 80.0, Verdict::fail,
                                  "sanity band for the per-session file count"),
      exp::expect_scalar_in_range("fraction_below_40", 0.55, 1.0, Verdict::fail,
                                  "paper: the bulk of the mass lies below ~40 files"),
      exp::expect_scalar_in_range("smoothed_mass_ratio", 0.999, 1.001, Verdict::fail,
                                  "smoothing must preserve total session mass"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const exp::WorkloadOutput& out = exp::characterisation_run(ctx.sessions(600), ctx.seed);
    const core::UsageAnalyzer analyzer(out.log);
    const stats::Histogram histogram = analyzer.session_files_histogram(24);

    exp::ExperimentResult result;
    result.x_label = "files referenced";
    result.y_label = "sessions";
    exp::add_histogram_series(result, histogram);

    stats::RunningSummary files;
    std::size_t below = 0;
    for (const auto& s : out.sessions) {
      files.add(static_cast<double>(s.files_referenced));
      if (s.files_referenced < 40) ++below;
    }
    result.set_scalar("sessions", static_cast<double>(out.sessions.size()));
    result.set_scalar("mean_files", files.mean());
    result.set_scalar("std_files", files.stddev());
    result.set_scalar("fraction_below_40",
                      out.sessions.empty()
                          ? 0.0
                          : static_cast<double>(below) / static_cast<double>(out.sessions.size()));
    result.notes.push_back(
        "The histogram centres near the Table 5.2 expectation (~28 files) and "
        "skews right, as in the paper's measured curve.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
