// Table 5.1 — "File characterization by file category".
//
// The FSC builds the initial file system from the paper's category profile;
// this experiment then re-measures the *built* file system (mean size and
// fraction of files per category) and grades the deviation from the paper's
// targets.

#include <map>

#include "core/fsc.h"
#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"
#include "fs/filesystem.h"
#include "stats/summary.h"

namespace wlgen::bench {

exp::Experiment make_table5_1() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "table5_1";
  experiment.artifact = "Table 5.1";
  experiment.title = "file characterization by file category";
  experiment.paper_claim = "9 categories; mean file size 714..31347 B; fractions 3.2%..38.2%";
  experiment.expectations = {
      exp::expect_scalar_in_range("mean_abs_size_rel_err", 0.0, 0.15, Verdict::warn,
                                  "built category mean sizes track the paper targets"),
      exp::expect_scalar_in_range("mean_abs_size_rel_err", 0.0, 0.4, Verdict::fail,
                                  "the FSC samples sizes from the Table 5.1 distributions"),
      exp::expect_scalar_in_range("mean_abs_fraction_err_pct", 0.0, 2.5, Verdict::warn,
                                  "category fractions converge on the paper's percent column"),
      exp::expect_scalar_in_range("mean_abs_fraction_err_pct", 0.0, 6.0, Verdict::fail,
                                  "category sampling must follow the published fractions"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    fs::SimulatedFileSystem fsys;
    core::FscConfig config;
    config.num_users = 8;
    config.files_per_user = 400;  // large build so fractions converge
    config.seed = ctx.seed;
    // Table 5.1 puts 14.6% of all files in the NOTES+OTHER categories and
    // 74.3% in the USER regular categories; size the system tree to match
    // the regular-file split: 3200 x 14.6/74.3 ~ 628.
    config.system_files = 628;
    core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), config);
    const core::CreatedFileSystem manifest = fsc.create();

    std::map<std::string, stats::RunningSummary> sizes;
    std::size_t regular_total = 0;
    for (const auto& f : manifest.files()) {
      sizes[f.category.label()].add(static_cast<double>(f.size));
      if (f.category.file_type == core::FileType::regular) ++regular_total;
    }

    // The paper's percent column includes the directory categories in its
    // denominator; re-measured fractions are over regular files, so the
    // paper's targets are rescaled by the total regular fraction (88.9%).
    double regular_fraction_total = 0.0;
    for (const auto& profile : core::di86_file_profiles()) {
      if (profile.category.file_type == core::FileType::regular) {
        regular_fraction_total += profile.fraction_of_files;
      }
    }

    exp::ExperimentResult result;
    result.x_label = "file category index (Table 5.1 order, regular categories)";
    result.y_label = "mean file size (B)";
    std::vector<double> index, paper_size, measured_size;
    double size_err = 0.0, frac_err = 0.0;
    std::size_t measured = 0;
    for (const auto& profile : core::di86_file_profiles()) {
      if (profile.category.file_type != core::FileType::regular) continue;
      const auto it = sizes.find(profile.category.label());
      if (it == sizes.end() || it->second.count() == 0) continue;
      index.push_back(static_cast<double>(index.size() + 1));
      paper_size.push_back(profile.size_dist->mean());
      measured_size.push_back(it->second.mean());
      size_err += std::fabs(it->second.mean() - profile.size_dist->mean()) /
                  profile.size_dist->mean();
      const double paper_pct = profile.fraction_of_files / regular_fraction_total * 100.0;
      const double measured_pct =
          100.0 * static_cast<double>(it->second.count()) / static_cast<double>(regular_total);
      frac_err += std::fabs(measured_pct - paper_pct);
      ++measured;
    }
    result.add_series("paper mean size", index, paper_size);
    result.add_series("measured mean size", index, measured_size);
    result.set_scalar("categories_measured", static_cast<double>(measured));
    result.set_scalar("mean_abs_size_rel_err", measured > 0 ? size_err / measured : 1.0);
    result.set_scalar("mean_abs_fraction_err_pct", measured > 0 ? frac_err / measured : 100.0);
    result.set_scalar("files_built", static_cast<double>(manifest.file_count()));
    result.notes.push_back(
        "Regular-file fractions are re-measured from the built file system; "
        "directory sizes emerge from real entry counts rather than sampling.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
