// Table 5.1 — "File characterization by file category".
//
// The FSC builds the initial file system from the paper's category profile;
// this bench then re-measures the *built* file system (mean size and
// fraction of files per category) and prints it beside the paper's targets.

#include <iostream>
#include <map>

#include "common/experiment.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "stats/summary.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Table 5.1 — file characterization by file category",
                      "9 categories; mean file size 714..31347 B; fractions 3.2%..38.2%");

  fs::SimulatedFileSystem fsys;
  core::FscConfig config;
  config.num_users = 8;
  config.files_per_user = 400;  // large build so fractions converge
  // Table 5.1 puts 14.6% of all files in the NOTES+OTHER categories and
  // 74.3% in the USER regular categories; size the system tree to match the
  // regular-file split: 3200 x 14.6/74.3 ~ 628.
  config.system_files = 628;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), config);
  const core::CreatedFileSystem manifest = fsc.create();

  std::map<std::string, stats::RunningSummary> sizes;
  std::size_t regular_total = 0;
  for (const auto& f : manifest.files()) {
    sizes[f.category.label()].add(static_cast<double>(f.size));
    if (f.category.file_type == core::FileType::regular) ++regular_total;
  }

  // The paper's percent column includes the directory categories in its
  // denominator; re-measured fractions below are over regular files, so the
  // paper's targets are rescaled by the total regular fraction (88.9%).
  double regular_fraction_total = 0.0;
  for (const auto& profile : core::di86_file_profiles()) {
    if (profile.category.file_type == core::FileType::regular) {
      regular_fraction_total += profile.fraction_of_files;
    }
  }

  util::TextTable table({"file category", "paper mean size", "measured mean size",
                         "paper % (of regular)", "measured % files"});
  for (const auto& profile : core::di86_file_profiles()) {
    const std::string label = profile.category.label();
    const auto it = sizes.find(label);
    std::string measured_size = "-";
    std::string measured_frac = "-";
    if (it != sizes.end()) {
      measured_size = util::TextTable::num(it->second.mean(), 0);
      if (profile.category.file_type == core::FileType::regular) {
        measured_frac = util::TextTable::num(
            100.0 * static_cast<double>(it->second.count()) /
                static_cast<double>(regular_total),
            1);
      } else {
        // Directory sizes are emergent (entry bytes), not sampled; their
        // fraction is set by the layout (one per user + the system dirs).
        measured_frac = "(layout)";
      }
    }
    const double paper_pct = profile.category.file_type == core::FileType::regular
                                 ? profile.fraction_of_files / regular_fraction_total * 100.0
                                 : profile.fraction_of_files * 100.0;
    table.add_row({label, util::TextTable::num(profile.size_dist->mean(), 0), measured_size,
                   util::TextTable::num(paper_pct, 1), measured_frac});
  }
  std::cout << table.render();
  std::cout << "\nBuilt " << manifest.file_count() << " files, " << fsys.bytes_in_use() / 1024
            << " KiB. Regular-file fractions are re-measured from the built file\n"
               "system; the paper's % column for regular categories is the FSC's target.\n"
               "Directory sizes emerge from real entry counts rather than sampling.\n";
  return 0;
}
