// Table 5.2 — "User characterization by file category".
//
// Runs the paper's 600-login-session characterisation workload (section 5.1)
// and re-derives, per category: accesses-per-byte, files per session and the
// fraction of sessions touching the category, graded against the published
// means.

#include <cmath>

#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_table5_2() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "table5_2";
  experiment.artifact = "Table 5.2";
  experiment.title = "user characterization by file category";
  experiment.paper_claim =
      "600 sessions; per-category accesses/byte, file size, files, % users";
  experiment.expectations = {
      exp::expect_scalar_in_range("mean_abs_files_rel_err", 0.0, 0.35, Verdict::warn,
                                  "files-per-session track the Table 5.2 category means"),
      exp::expect_scalar_in_range("mean_abs_files_rel_err", 0.0, 0.8, Verdict::fail,
                                  "the USIM samples per-category file counts from Table 5.2"),
      exp::expect_scalar_in_range("mean_abs_touch_err_pct", 0.0, 10.0, Verdict::warn,
                                  "fraction of sessions touching each category vs % users"),
      exp::expect_scalar_in_range("mean_abs_touch_err_pct", 0.0, 25.0, Verdict::fail,
                                  "category touch probabilities must follow the table"),
      exp::expect_scalar_in_range("categories_touched", 6.0, 9.0, Verdict::fail,
                                  "a 600-session run must exercise the category space"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    exp::WorkloadConfig config;
    config.num_users = 1;
    config.sessions_per_user = ctx.sessions(600);  // "after simulating 600 login sessions"
    config.seed = ctx.seed;
    const exp::WorkloadOutput out = exp::run_workload(config);

    exp::ExperimentResult result;
    result.x_label = "usage category index (Table 5.2 order)";
    result.y_label = "files per session";
    std::vector<double> index, paper_files, measured_files;
    double files_err = 0.0, touch_err = 0.0;
    std::size_t measured = 0;
    for (const auto& profile : core::di86_usage_profiles()) {
      const auto it = out.per_category.find(profile.category.label());
      if (it == out.per_category.end() || it->second.files_per_session.count() == 0) continue;
      index.push_back(static_cast<double>(index.size() + 1));
      paper_files.push_back(profile.files_per_session->mean());
      measured_files.push_back(it->second.files_per_session.mean());
      files_err += std::fabs(it->second.files_per_session.mean() -
                             profile.files_per_session->mean()) /
                   profile.files_per_session->mean();
      touch_err += std::fabs(100.0 * it->second.fraction_sessions_touching -
                             100.0 * profile.prob_accessing_category);
      ++measured;
    }
    result.add_series("paper files/session", index, paper_files);
    result.add_series("measured files/session", index, measured_files);
    result.set_scalar("categories_touched", static_cast<double>(measured));
    result.set_scalar("mean_abs_files_rel_err", measured > 0 ? files_err / measured : 1.0);
    result.set_scalar("mean_abs_touch_err_pct", measured > 0 ? touch_err / measured : 100.0);
    result.set_scalar("sessions", static_cast<double>(out.sessions.size()));
    result.set_scalar("system_calls", static_cast<double>(out.total_ops));
    result.notes.push_back(
        "Measured accesses-per-byte reflects EOF truncation and per-file wrap "
        "granularity; the RDONLY/RD-WRT size columns re-measure the files the "
        "FSC built from Table 5.1.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
