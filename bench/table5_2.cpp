// Table 5.2 — "User characterization by file category".
//
// Runs the paper's 600-login-session characterisation workload (section 5.1)
// and re-derives, per category: accesses-per-byte, touched file size, files
// per session and the fraction of sessions touching the category.  Printed
// beside the paper's published means.

#include <iostream>

#include "common/experiment.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Table 5.2 — user characterization by file category",
                      "600 sessions; per-category accesses/byte, file size, files, % users");

  bench::ExperimentConfig config;
  config.num_users = 1;
  config.sessions_per_user = 600;  // the paper's "after simulating 600 login sessions"
  const bench::ExperimentOutput out = bench::run_experiment(config);

  util::TextTable table({"file category", "apb paper", "apb meas", "size paper", "size meas",
                         "files paper", "files meas", "%users paper", "%sess meas"});
  for (const auto& profile : core::di86_usage_profiles()) {
    const std::string label = profile.category.label();
    const auto it = out.per_category.find(label);
    const auto cell = [&](auto getter) -> std::string {
      if (it == out.per_category.end()) return "-";
      return getter(it->second);
    };
    table.add_row({
        label,
        util::TextTable::num(profile.accesses_per_byte->mean(), 2),
        cell([](const core::CategoryUsage& u) {
          return u.access_per_byte.count() ? util::TextTable::num(u.access_per_byte.mean(), 2)
                                           : std::string("-");
        }),
        util::TextTable::num(profile.file_size->mean(), 0),
        cell([](const core::CategoryUsage& u) {
          return u.file_size.count() ? util::TextTable::num(u.file_size.mean(), 0)
                                     : std::string("-");
        }),
        util::TextTable::num(profile.files_per_session->mean(), 1),
        cell([](const core::CategoryUsage& u) {
          return u.files_per_session.count()
                     ? util::TextTable::num(u.files_per_session.mean(), 1)
                     : std::string("-");
        }),
        util::TextTable::num(profile.prob_accessing_category * 100.0, 0),
        cell([](const core::CategoryUsage& u) {
          return util::TextTable::num(u.fraction_sessions_touching * 100.0, 0);
        }),
    });
  }
  std::cout << table.render();
  std::cout << "\nNotes: measured accesses-per-byte reflects EOF truncation and per-file\n"
               "wrap granularity; RDONLY/RD-WRT file-size columns re-measure the files the\n"
               "FSC built from Table 5.1 (the Table 5.2 size column describes *touched*\n"
               "files in the original trace, a population the generator approximates).\n"
            << "\nSessions simulated: " << out.sessions.size() << ", system calls: "
            << out.total_ops << "\n";
  return 0;
}
