// Table 5.4 — "Types of users simulated in experiments": think times of the
// three user types, plus each type's *effective* behaviour measured from a
// short run (ops per simulated second) to show what the knob does.

#include "core/presets.h"
#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_table5_4() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "table5_4";
  experiment.artifact = "Table 5.4";
  experiment.title = "types of users simulated in experiments";
  experiment.paper_claim = "extremely heavy I/O: 0 us; heavy: 5000 us; light: 20000 us think time";
  experiment.expectations = {
      exp::expect_monotonic_down("ops per simulated second", 0.0, Verdict::fail,
                                 "longer think time must strictly reduce offered load"),
      exp::expect_scalar_in_range("extremely_heavy_over_heavy", 1.5, 20.0, Verdict::fail,
                                  "zero think time keeps a request permanently outstanding"),
      exp::expect_scalar_in_range("heavy_over_light", 1.5, 20.0, Verdict::fail,
                                  "exp(5000) vs exp(20000) us thinking separates the rates"),
      exp::expect_scalar_in_range("preset_think_heavy_us", 4999.0, 5001.0, Verdict::fail,
                                  "paper: heavy I/O users think exp(5000) us"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    struct Row {
      const char* name;
      core::UserType type;
    };
    const std::vector<Row> rows = {
        {"extremely heavy I/O", core::extremely_heavy_user()},
        {"heavy I/O", core::heavy_user()},
        {"light I/O", core::light_user()},
    };

    exp::ExperimentResult result;
    result.x_label = "user type (0 = extremely heavy, 1 = heavy, 2 = light)";
    result.y_label = "ops per simulated second";
    std::vector<double> index, rates, responses;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      core::Population population;
      population.groups.push_back({rows[i].type, 1.0});
      population.validate_and_normalize();
      exp::WorkloadConfig config;
      config.num_users = 1;
      config.sessions_per_user = ctx.sessions(30);
      config.population = population;
      config.seed = ctx.seed;
      const exp::WorkloadOutput out = exp::run_workload(config);
      const double ops_per_s =
          out.simulated_us > 0.0
              ? static_cast<double>(out.total_ops) / (out.simulated_us / 1e6)
              : 0.0;
      index.push_back(static_cast<double>(i));
      rates.push_back(ops_per_s);
      responses.push_back(out.response_us.mean());
    }
    result.add_series("ops per simulated second", index, rates);
    result.add_series("mean response us", index, responses);
    result.set_scalar("extremely_heavy_over_heavy", rates[1] > 0.0 ? rates[0] / rates[1] : 0.0);
    result.set_scalar("heavy_over_light", rates[2] > 0.0 ? rates[1] / rates[2] : 0.0);
    result.set_scalar("preset_think_heavy_us", core::heavy_user().think_time_us->mean());
    result.set_scalar("preset_think_light_us", core::light_user().think_time_us->mean());
    result.notes.push_back(
        "The zero-think-time user keeps a request permanently outstanding (the "
        "Figure 5.6 load); heavy and light users pace themselves with exp(5000) "
        "and exp(20000) us thinking (Figures 5.7-5.11).");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
