// Table 5.4 — "Types of users simulated in experiments": think times of the
// three user types, plus each type's *effective* behaviour measured from a
// short run (ops per simulated second and response) to show what the knob
// does.

#include <iostream>

#include "common/experiment.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Table 5.4 — types of users simulated in experiments",
                      "extremely heavy I/O: 0 us; heavy: 5000 us; light: 20000 us");

  struct Row {
    const char* name;
    double paper_think;
    core::UserType type;
  };
  const std::vector<Row> rows = {
      {"extremely heavy I/O", 0.0, core::extremely_heavy_user()},
      {"heavy I/O", 5000.0, core::heavy_user()},
      {"light I/O", 20000.0, core::light_user()},
  };

  util::TextTable table({"user type", "paper think time us", "preset mean us",
                         "measured ops/sim-s", "measured mean response us"});
  for (const auto& row : rows) {
    core::Population population;
    population.groups.push_back({row.type, 1.0});
    population.validate_and_normalize();
    bench::ExperimentConfig config;
    config.num_users = 1;
    config.sessions_per_user = 30;
    config.population = population;
    const bench::ExperimentOutput out = bench::run_experiment(config);
    const double ops_per_s = out.simulated_us > 0.0
                                 ? static_cast<double>(out.total_ops) / (out.simulated_us / 1e6)
                                 : 0.0;
    table.add_row({row.name, util::TextTable::num(row.paper_think, 0),
                   util::TextTable::num(row.type.think_time_us->mean(), 0),
                   util::TextTable::num(ops_per_s, 0),
                   util::TextTable::num(out.response_us.mean(), 0)});
  }
  std::cout << table.render();
  std::cout << "\nThe zero-think-time user keeps a request permanently outstanding (the\n"
               "Figure 5.6 load); heavy and light users pace themselves with exp(5000)\n"
               "and exp(20000) us thinking (Figures 5.7-5.11).\n";
  return 0;
}
