// Table 5.3 — mean and standard deviation of access size (bytes) and
// response time (microseconds) of file access system calls, for 1..6
// simultaneous users.
//
// Paper values (SUN 3/50 client, SUN 4/490 server, NFS): access size flat
// near 947(950) B; response mean growing 1285 -> 3494 us with std several
// times the mean at every load point.

#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_table5_3() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "table5_3";
  experiment.artifact = "Table 5.3";
  experiment.title = "access size and response time vs number of users";
  experiment.paper_claim =
      "access ~947(950) B flat; response 1285(4202) -> 3494(30059) us, std >> mean";
  experiment.expectations = {
      exp::expect_monotonic_up("response mean", 0.05, Verdict::fail,
                               "the response mean must grow with simultaneous users"),
      exp::expect_scalar_in_range("access_size_spread_ratio", 0.9, 1.15, Verdict::fail,
                                  "access size is an input: flat across load points"),
      exp::expect_scalar_in_range("access_size_overall", 850.0, 1050.0, Verdict::warn,
                                  "paper: ~947 B measured mean access size"),
      exp::expect_scalar_in_range("access_size_overall", 600.0, 1300.0, Verdict::fail,
                                  "exponential(1024) + EOF truncation sanity band"),
      exp::expect_scalar_in_range("response_std_over_mean_6u", 2.0, 20.0, Verdict::warn,
                                  "paper: response std stays several times the mean"),
      exp::expect_scalar_in_range("response_std_over_mean_6u", 1.0, 50.0, Verdict::fail,
                                  "cache hit/miss bimodality + queueing regime"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    std::vector<double> users, access_mean, access_std, response_mean, response_std;
    for (std::size_t u = 1; u <= 6; ++u) {
      exp::WorkloadConfig config;
      config.num_users = u;
      config.sessions_per_user = ctx.sessions(50);  // paper: mean over 50 login sessions
      config.seed = ctx.seed + u;
      const exp::WorkloadOutput out = exp::run_workload(config);
      users.push_back(static_cast<double>(u));
      access_mean.push_back(out.access_size.mean());
      access_std.push_back(out.access_size.stddev());
      response_mean.push_back(out.response_us.mean());
      response_std.push_back(out.response_us.stddev());
    }

    exp::ExperimentResult result;
    result.x_label = "number of users";
    result.y_label = "microseconds / bytes";
    result.add_series("access size mean", users, access_mean);
    result.add_series("response mean", users, response_mean);
    result.add_series("response std", users, response_std);

    double access_lo = access_mean.front(), access_hi = access_mean.front(), access_sum = 0.0;
    for (const double a : access_mean) {
      access_lo = std::min(access_lo, a);
      access_hi = std::max(access_hi, a);
      access_sum += a;
    }
    result.set_scalar("access_size_overall", access_sum / static_cast<double>(access_mean.size()));
    result.set_scalar("access_size_spread_ratio", access_lo > 0.0 ? access_hi / access_lo : 0.0);
    result.set_scalar("response_mean_1u", response_mean.front());
    result.set_scalar("response_mean_6u", response_mean.back());
    result.set_scalar("response_std_over_mean_6u",
                      response_mean.back() > 0.0 ? response_std.back() / response_mean.back()
                                                 : 0.0);
    result.notes.push_back(
        "Access size is flat near (and below) the 1024 B input mean with std ~ "
        "mean; the response mean grows with users while its std stays several "
        "times the mean — the Table 5.3 regime.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
