// Table 5.3 — mean and standard deviation of access size (bytes) and
// response time (microseconds) of file access system calls, for 1..6
// simultaneous users.
//
// Paper values (SUN 3/50 client, SUN 4/490 server, NFS):
//   users  access size      response time
//     1    946.71(956.76)   1284.83(4201.52)
//     2    936.06(945.16)   1716.26(7026.62)
//     3    932.80(946.87)   2120.99(13308.12)
//     4    956.12(965.49)   2447.55(16834.38)
//     5    947.98(948.53)   2960.32(16197.86)
//     6    928.66(935.09)   3494.30(30059.28)

#include <iostream>

#include "common/experiment.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header(
      "Table 5.3 — access size and response time vs number of users",
      "access ~947(950) B flat; response 1285(4202) -> 3494(30059) us, std >> mean");

  const double paper_access[6][2] = {{946.71, 956.76}, {936.06, 945.16}, {932.80, 946.87},
                                     {956.12, 965.49}, {947.98, 948.53}, {928.66, 935.09}};
  const double paper_response[6][2] = {{1284.83, 4201.52},  {1716.26, 7026.62},
                                       {2120.99, 13308.12}, {2447.55, 16834.38},
                                       {2960.32, 16197.86}, {3494.30, 30059.28}};

  util::TextTable table({"users", "access size paper", "access size measured",
                         "response paper", "response measured"});
  for (std::size_t users = 1; users <= 6; ++users) {
    bench::ExperimentConfig config;
    config.num_users = users;
    config.sessions_per_user = 50;  // paper: mean over 50 login sessions
    config.seed = 1991 + users;
    const bench::ExperimentOutput out = bench::run_experiment(config);
    table.add_row({std::to_string(users),
                   util::TextTable::mean_std(paper_access[users - 1][0],
                                             paper_access[users - 1][1]),
                   out.access_size.mean_std_string(),
                   util::TextTable::mean_std(paper_response[users - 1][0],
                                             paper_response[users - 1][1]),
                   out.response_us.mean_std_string()});
  }
  std::cout << table.render();
  std::cout << "\nShape checks: measured access size is flat near (and below) the 1024 B\n"
               "input mean with std ~ mean (exponential + EOF truncation); response mean\n"
               "grows with users while its std stays several times the mean (cache hit/\n"
               "miss bimodality + queueing) — the Table 5.3 regime.\n";
  return 0;
}
