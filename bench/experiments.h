#pragma once

#include "exp/registry.h"

namespace wlgen::bench {

// The 25 registered experiments: the 23 paper experiments (one maker per
// former standalone bench binary) plus the two open-system traffic checks
// (offered_load, slowdown_recovery).  Each returns a thin exp::Experiment
// registration: identity, the paper's described curve shape as declarative
// expectations, and a run function built on the exp::workload engine.

exp::Experiment make_fig5_1();
exp::Experiment make_fig5_2();
exp::Experiment make_fig5_3();
exp::Experiment make_fig5_4();
exp::Experiment make_fig5_5();
exp::Experiment make_fig5_6();
exp::Experiment make_fig5_7();
exp::Experiment make_fig5_8();
exp::Experiment make_fig5_9();
exp::Experiment make_fig5_10();
exp::Experiment make_fig5_11();
exp::Experiment make_fig5_12();
exp::Experiment make_table5_1();
exp::Experiment make_table5_2();
exp::Experiment make_table5_3();
exp::Experiment make_table5_4();
exp::Experiment make_ablation_cache();
exp::Experiment make_ablation_cdf_table();
exp::Experiment make_ablation_markov();
exp::Experiment make_ablation_smoothing();
exp::Experiment make_ablation_topology();
exp::Experiment make_baseline_bench();
exp::Experiment make_compare_fs();
exp::Experiment make_offered_load();
exp::Experiment make_slowdown_recovery();

/// Registers all 25 experiments, in paper order (traffic checks last).
/// Safe to call once per registry; a second call on the same registry
/// throws (duplicate ids).
void register_all_experiments(exp::Registry& registry);

}  // namespace wlgen::bench
