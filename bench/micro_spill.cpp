// Microbenchmark (google-benchmark): population scaling of the streaming
// log pipeline.
//
// BM_SpillPopulation runs the same per-user workload at growing population
// sizes with the log path either held in memory (spill=0, the pre-streaming
// behaviour) or spilled to sorted on-disk runs (spill=1).  Two counters per
// entry:
//
//   * syscalls/s    — wall-clock throughput, showing what the spill path
//                     costs (encode + write + k-way merge bookkeeping);
//   * peak_rss_mb   — the process peak resident set over the entry, showing
//                     what it buys (flat memory as users grow, versus the
//                     in-memory log's linear climb).
//
// Peak RSS comes from /proc/self/status VmHWM.  The high-water mark is
// process-wide, so each entry resets it first via /proc/self/clear_refs
// ("5"); on kernels where the reset is unsupported the mark only ever
// rises, which is why the entries are registered spill-on before spill-off
// at each population and populations ascending — the first entry to reach
// a new high is then still the one that caused it.  Off Linux the counter
// reads 0.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_main.h"
#include "runner/sharded_runner.h"

namespace {

using namespace wlgen;

constexpr const char* kSpoolDir = ".wlgen-spool/bench-micro-spill";

// Resets the kernel's peak-RSS high-water mark for this process (Linux;
// best-effort — see the header comment for the registration-order fallback).
void reset_peak_rss() {
#ifdef __linux__
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

// Peak resident set in MiB (VmHWM), 0 when unavailable.
double peak_rss_mb() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
#else
  return 0.0;
#endif
}

void BM_SpillPopulation(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  const bool spill = state.range(1) != 0;
  std::uint64_t ops = 0;
  reset_peak_rss();
  for (auto _ : state) {
    runner::RunnerConfig config;
    config.num_users = users;
    config.shards = 8;
    config.threads = 2;
    config.usim.sessions_per_user = 1;
    config.collect_log = true;  // the log IS the product being scaled
    if (spill) {
      config.spill.enabled = true;
      config.spill.spool_dir = kSpoolDir;
      config.spill.buffer_records = 8192;  // small buffer: several runs per shard
      config.spill.config_tag = "bench micro_spill";
    }
    runner::ShardedRunner run(std::move(config));
    const auto result = run.run();
    ops += result.total_ops;
    benchmark::DoNotOptimize(result.stats.response_us().mean());
    // Both paths end with a merged, ordered log available; the spill path's
    // merge cost is paid by the reader, so charge it here too.
    if (spill) {
      auto reader = result.open_log_reader();
      core::OpRecord record;
      std::uint64_t merged = 0;
      while (reader->next(record)) ++merged;
      benchmark::DoNotOptimize(merged);
    } else {
      benchmark::DoNotOptimize(result.log.size());
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(kSpoolDir, ec);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users));
  state.counters["syscalls/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["peak_rss_mb"] = benchmark::Counter(peak_rss_mb());
}
// Spill-on before spill-off at each population, populations ascending — the
// fallback attribution order when the VmHWM reset is unsupported.
BENCHMARK(BM_SpillPopulation)
    ->ArgNames({"users", "spill"})
    ->Args({500, 1})
    ->Args({500, 0})
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({8000, 1})
    ->Args({8000, 0})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

WLGEN_BENCHMARK_MAIN();
