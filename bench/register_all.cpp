// Explicit registration of every paper experiment — no static-initialiser
// self-registration, so the linker can never silently drop an experiment and
// the registry order is the paper's artefact order.

#include "experiments.h"

namespace wlgen::bench {

void register_all_experiments(exp::Registry& registry) {
  registry.add(make_fig5_1());
  registry.add(make_fig5_2());
  registry.add(make_fig5_3());
  registry.add(make_fig5_4());
  registry.add(make_fig5_5());
  registry.add(make_fig5_6());
  registry.add(make_fig5_7());
  registry.add(make_fig5_8());
  registry.add(make_fig5_9());
  registry.add(make_fig5_10());
  registry.add(make_fig5_11());
  registry.add(make_fig5_12());
  registry.add(make_table5_1());
  registry.add(make_table5_2());
  registry.add(make_table5_3());
  registry.add(make_table5_4());
  registry.add(make_compare_fs());
  registry.add(make_baseline_bench());
  registry.add(make_ablation_cache());
  registry.add(make_ablation_cdf_table());
  registry.add(make_ablation_markov());
  registry.add(make_ablation_smoothing());
  registry.add(make_ablation_topology());
  registry.add(make_offered_load());
  registry.add(make_slowdown_recovery());
}

}  // namespace wlgen::bench
