// Section 5.3 — "Comparing Different File Systems".
//
// Runs the paper's comparison procedure: the identical user population and
// initial file system against each candidate file-system model (SUN-NFS,
// local disk, Andrew-style whole-file caching), at two load points, and
// grades the decision table the paper says a laboratory should build before
// choosing a file system.

#include "exp/workload.h"
#include "experiments.h"

namespace wlgen::bench {

exp::Experiment make_compare_fs() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "compare_fs";
  experiment.artifact = "Section 5.3";
  experiment.title = "file system comparison procedure";
  experiment.paper_claim =
      "same workload, candidate file systems; the ranking flips with load";
  experiment.expectations = {
      exp::expect_scalar_in_range("nfs_over_local_1u", 1.05, 10.0, Verdict::fail,
                                  "at one user the local disk wins (no network on the path)"),
      exp::expect_scalar_in_range("local_over_nfs_4u", 1.05, 10.0, Verdict::fail,
                                  "at four users the ranking flips: the server's big cache "
                                  "absorbs the misses thrashing the 4 MB local cache"),
      exp::expect_scalar_in_range("wholefile_degradation", 0.5, 1.5, Verdict::fail,
                                  "whole-file caching pays at open/close and degrades most "
                                  "gently between the load points"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<std::pair<std::string, exp::ModelKind>> candidates = {
        {"nfs", exp::ModelKind::nfs},
        {"local", exp::ModelKind::local},
        {"wholefile", exp::ModelKind::wholefile},
    };
    exp::ExperimentResult result;
    result.x_label = "number of simultaneous users";
    result.y_label = "response time per byte (us)";
    std::map<std::string, std::map<std::size_t, double>> levels;
    for (const std::size_t users : {1UL, 4UL}) {
      for (const auto& [name, kind] : candidates) {
        exp::WorkloadConfig config;
        config.num_users = users;
        config.sessions_per_user = ctx.sessions(40);
        config.model = kind;
        config.seed = ctx.seed + 53;
        levels[name][users] = exp::run_workload(config).response_per_byte_us;
      }
    }
    for (const auto& [name, kind] : candidates) {
      result.add_series(name, {1.0, 4.0}, {levels[name][1], levels[name][4]});
      result.set_scalar(name + "_us_per_byte_1u", levels[name][1]);
      result.set_scalar(name + "_us_per_byte_4u", levels[name][4]);
    }
    result.set_scalar("nfs_over_local_1u",
                      levels["local"][1] > 0.0 ? levels["nfs"][1] / levels["local"][1] : 0.0);
    result.set_scalar("local_over_nfs_4u",
                      levels["nfs"][4] > 0.0 ? levels["local"][4] / levels["nfs"][4] : 0.0);
    result.set_scalar("wholefile_degradation",
                      levels["wholefile"][1] > 0.0
                          ? levels["wholefile"][4] / levels["wholefile"][1]
                          : 0.0);
    result.notes.push_back(
        "\"One file system may be better under some particular environment, "
        "and others may be superior under different environments\": the "
        "procedure exposes the crossover instead of averaging it away.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
