// Section 5.3 — "Comparing Different File Systems".
//
// Runs the paper's comparison procedure: the identical user population and
// initial file system against each candidate file-system model (SUN-NFS,
// local disk, Andrew-style whole-file caching), at two load points, and
// reports per-candidate response statistics — the decision table the paper
// says a laboratory should build before choosing a file system.

#include <iostream>

#include "common/experiment.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Section 5.3 — file system comparison procedure",
                      "same workload, candidate file systems, compare response per byte");

  const std::vector<std::pair<std::string, bench::ModelKind>> candidates = {
      {"SUN NFS (remote server)", bench::ModelKind::nfs},
      {"local disk (UFS-style)", bench::ModelKind::local},
      {"whole-file caching (Andrew-style)", bench::ModelKind::wholefile},
  };

  for (const std::size_t users : {1UL, 4UL}) {
    std::cout << "--- " << users << " simultaneous user(s), heavy I/O population ---\n";
    util::TextTable table({"file system", "resp/byte us", "mean resp us", "std resp us",
                           "access size B", "sim time s"});
    for (const auto& [name, kind] : candidates) {
      bench::ExperimentConfig config;
      config.num_users = users;
      config.sessions_per_user = 40;
      config.model = kind;
      config.seed = 53;
      const bench::ExperimentOutput out = bench::run_experiment(config);
      table.add_row({name, util::TextTable::num(out.response_per_byte_us, 3),
                     util::TextTable::num(out.response_us.mean(), 0),
                     util::TextTable::num(out.response_us.stddev(), 0),
                     util::TextTable::num(out.access_size.mean(), 0),
                     util::TextTable::num(out.simulated_us / 1e6, 1)});
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "Reading: at one user the local disk wins (no network on the path).  At\n"
               "four users the ranking flips — the local machine has only its own 4 MB\n"
               "buffer cache and one spindle, while the NFS server contributes a much\n"
               "larger cache that absorbs the misses now thrashing the local cache.\n"
               "The whole-file model pays its cost at open/close and keeps data ops\n"
               "local, so it degrades most gently.  This is precisely the paper's point\n"
               "(\"one file system may be better under some particular environment, and\n"
               "others may be superior under different environments\"): the procedure\n"
               "exposes the crossover instead of averaging it away.\n";
  return 0;
}
