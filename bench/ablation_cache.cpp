// Ablation — NFS client cache size vs the Figure 5.6 contention curve.
//
// Figure 5.6's linear response growth assumes the server is the bottleneck.
// This bench sweeps the client block-cache size: a tiny cache pushes every
// access to the server (steeper, still linear); a huge cache absorbs almost
// everything (flatter).  It isolates the mechanism DESIGN.md credits for the
// figure's shape.

#include <iostream>

#include "common/experiment.h"
#include "fsmodel/nfs_model.h"
#include "util/table.h"

int main() {
  using namespace wlgen;
  bench::print_header("Ablation — NFS client cache size vs contention curve",
                      "mechanism check for Figure 5.6's linearity");

  const std::vector<std::size_t> cache_blocks = {8, 64, 384, 4096};
  util::TextTable table({"client cache (8 KiB blocks)", "1 user us/B", "3 users us/B",
                         "6 users us/B", "6u/1u ratio"});

  for (std::size_t blocks : cache_blocks) {
    std::vector<double> points;
    for (std::size_t users : {1UL, 3UL, 6UL}) {
      sim::Simulation simulation;
      fs::SimulatedFileSystem fsys;
      fsys.set_clock([&simulation] { return simulation.now(); });
      fsmodel::NfsParams params;
      params.client_cache_blocks = blocks;
      fsmodel::NfsModel nfs(simulation, params);
      core::FscConfig fsc_config;
      fsc_config.num_users = users;
      fsc_config.seed = 31 + users;
      core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
      const core::CreatedFileSystem manifest = fsc.create();
      core::UsimConfig usim_config;
      usim_config.num_users = users;
      usim_config.sessions_per_user = 30;
      usim_config.seed = 31 + users;
      core::Population population;
      population.groups.push_back({core::extremely_heavy_user(), 1.0});
      population.validate_and_normalize();
      core::UserSimulator usim(simulation, fsys, nfs, manifest, population, usim_config);
      usim.run();
      points.push_back(core::UsageAnalyzer(usim.log()).response_per_byte_us());
    }
    table.add_row({std::to_string(blocks), util::TextTable::num(points[0], 2),
                   util::TextTable::num(points[1], 2), util::TextTable::num(points[2], 2),
                   util::TextTable::num(points[2] / std::max(points[0], 1e-9), 2)});
  }
  std::cout << table.render();
  std::cout << "\nReading: a starved client cache raises the whole curve (every access\n"
               "crosses the network and queues at the server); a huge cache lowers the\n"
               "level but contention growth remains, because cold misses and write\n"
               "flushes still serialise at the shared server disk.\n";
  return 0;
}
