// Ablation — NFS client cache size vs the Figure 5.6 contention curve.
//
// Figure 5.6's linear response growth assumes the server is the bottleneck.
// This experiment sweeps the client block-cache size: a tiny cache pushes
// every access to the server (steeper, still growing); a huge cache absorbs
// almost everything (flatter).  It isolates the mechanism DESIGN.md credits
// for the figure's shape.

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "exp/workload.h"
#include "experiments.h"
#include "fs/filesystem.h"
#include "fsmodel/nfs_model.h"
#include "sim/simulation.h"

namespace wlgen::bench {

namespace {

double cache_point(std::size_t blocks, std::size_t users, std::size_t sessions,
                   std::uint64_t seed) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  fsmodel::NfsParams params;
  params.client_cache_blocks = blocks;
  fsmodel::NfsModel nfs(simulation, params);
  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed + users;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();
  core::UsimConfig usim_config;
  usim_config.num_users = users;
  usim_config.sessions_per_user = sessions;
  usim_config.seed = seed + users;
  core::Population population;
  population.groups.push_back({core::extremely_heavy_user(), 1.0});
  population.validate_and_normalize();
  core::UserSimulator usim(simulation, fsys, nfs, manifest, population, usim_config);
  usim.run();
  return core::UsageAnalyzer(usim.log()).response_per_byte_us();
}

}  // namespace

exp::Experiment make_ablation_cache() {
  using exp::Verdict;
  exp::Experiment experiment;
  experiment.id = "ablation_cache";
  experiment.title = "NFS client cache size vs the Figure 5.6 contention curve";
  experiment.paper_claim = "mechanism check for Figure 5.6's shape: server-bound contention";
  experiment.expectations = {
      exp::expect_monotonic_down("6 users", 0.05, Verdict::fail,
                                 "a larger client cache must lower the contended level"),
      exp::expect_monotonic_down("1 user", 0.05, Verdict::fail,
                                 "a larger client cache must lower the uncontended level"),
      exp::expect_scalar_in_range("growth_with_starved_cache", 1.5, 20.0, Verdict::fail,
                                  "with a starved cache every access queues at the server"),
      exp::expect_scalar_in_range("growth_with_big_cache", 1.2, 10.0, Verdict::fail,
                                  "cold misses and write flushes still serialise at the disk"),
      exp::expect_scalar_in_range("starved_over_big_at_6u", 1.5, 20.0, Verdict::fail,
                                  "cache starvation must raise the whole curve"),
  };

  experiment.run = [](const exp::RunContext& ctx) {
    const std::vector<std::size_t> cache_blocks = {8, 64, 384, 4096};
    const std::size_t sessions = ctx.sessions(30);
    std::vector<double> xs, one_user, six_users;
    for (const std::size_t blocks : cache_blocks) {
      xs.push_back(static_cast<double>(blocks));
      one_user.push_back(cache_point(blocks, 1, sessions, ctx.seed + 31));
      six_users.push_back(cache_point(blocks, 6, sessions, ctx.seed + 31));
    }

    exp::ExperimentResult result;
    result.x_label = "client cache size (8 KiB blocks)";
    result.y_label = "response time per byte (us)";
    result.add_series("1 user", xs, one_user);
    result.add_series("6 users", xs, six_users);
    result.set_scalar("growth_with_starved_cache",
                      one_user.front() > 0.0 ? six_users.front() / one_user.front() : 0.0);
    result.set_scalar("growth_with_big_cache",
                      one_user.back() > 0.0 ? six_users.back() / one_user.back() : 0.0);
    result.set_scalar("starved_over_big_at_6u",
                      six_users.back() > 0.0 ? six_users.front() / six_users.back() : 0.0);
    result.notes.push_back(
        "A starved client cache raises the whole curve (every access crosses "
        "the network and queues at the server); a huge cache lowers the level "
        "but contention growth remains — cold misses and write flushes still "
        "serialise at the shared server disk.");
    return result;
  };
  return experiment;
}

}  // namespace wlgen::bench
