#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fsc.h"
#include "core/log_sink.h"
#include "core/usim.h"
#include "core/workload.h"
#include "fsmodel/model.h"
#include "obs/obs.h"
#include "runner/merge.h"
#include "runner/model_factory.h"
#include "runner/partition.h"
#include "runner/stats.h"
#include "sim/simulation.h"
#include "stats/sketch.h"
#include "traffic/traffic.h"

namespace wlgen::runner {

/// Streaming-log spill configuration (DESIGN.md "Streaming log pipeline").
/// Off by default: the run materializes the merged log in RAM exactly as
/// before.  With `enabled`, every shard streams its records through a
/// core::SpillSink into sorted on-disk runs under `spool_dir`, and the
/// merged (issue_time, user) view is exposed through the k-way merge
/// reader (RunnerResult::open_log_reader) — same bytes, bounded RSS.
struct SpillConfig {
  bool enabled = false;

  /// Run/checkpoint directory (required when enabled; created if missing).
  std::string spool_dir;

  /// Per-shard records buffered before a run is cut.  Runs only split at
  /// user boundaries, so a single user may exceed this; purely a memory/
  /// fan-in trade-off — never affects the merged stream.
  std::size_t buffer_records = 65536;

  /// Persist a per-shard checkpoint (spool_dir/shardNNNNNN.ckpt) when the
  /// shard completes, so an interrupted run can resume (requires enabled).
  bool checkpoint = false;

  /// Skip shards that left a valid checkpoint: their sorted runs are
  /// re-read to reconstruct the per-user statistics in the exact original
  /// fold order, so a resumed run's digest is bit-identical to an
  /// uninterrupted one (requires checkpoint).
  bool resume = false;

  /// Caller-level identity folded into the checkpoint fingerprint (the
  /// scenario/CLI description of everything the runner config cannot see —
  /// model, overrides, workload knobs).  Resume refuses a mismatch.
  std::string config_tag;
};

/// Configuration of a sharded run.
struct RunnerConfig {
  /// Total simulated users (the global index space [0, num_users)).
  std::size_t num_users = 1;

  /// K: number of independent Simulation shards the user space is cut into
  /// by partition_users().  Results are bit-identical for every K >= 1.
  std::size_t shards = 1;

  /// Worker threads executing the shards (0 = min(shards, hardware
  /// concurrency)).  Purely an execution knob; never affects results.
  std::size_t threads = 0;

  /// Root seed for both the FSC layout and the user behaviour streams.
  std::uint64_t seed = 1991;

  /// Per-user behaviour (sessions_per_user, think/markov/pattern switches).
  /// num_users, first_user, population_users, seed and the record hook are
  /// overwritten per user range.
  core::UsimConfig usim;

  /// Per-universe file-system layout; num_users/first_user/seed overwritten.
  core::FscConfig fsc;

  /// Initial-file-system category profiles (empty = core::di86_file_profiles()).
  std::vector<core::FileCategoryProfile> profiles;

  /// User-type mixture (empty groups = core::default_population()).
  core::Population population;

  /// Geometry of the merged response-time histogram.  Every user holds one
  /// private histogram during the run (the per-user slots are what make the
  /// merge fold K-invariant), so the transient footprint is ~8 bytes x bins
  /// per user — shrink bins for multi-million-user sweeps.
  HistogramSpec histogram;

  /// Retain and merge the per-op usage log.  With `spill.enabled` the log
  /// streams to disk instead of RAM, so even million-user runs can keep
  /// this on; collect_log = false remains the "aggregates only, no log at
  /// all" mode and conflicts with spilling.
  bool collect_log = true;

  /// Disk-spill / checkpoint-resume switches (off = historical behaviour).
  SpillConfig spill;

  /// Model per user (null = nfs_model_factory()).
  ModelFactory model_factory;

  /// Open-system traffic: optional open-loop arrivals plus a fault plan
  /// (src/traffic/).  The arrival timeline is generated once per run from
  /// `seed` and dealt to users by global index, and faults are installed
  /// identically in every user universe — both pure functions of the
  /// config, so the shard/thread invariance contract is unchanged.  A
  /// default (inert) TrafficConfig leaves every code path byte-identical.
  traffic::TrafficConfig traffic;

  /// Observability switches (all off by default — the default run takes
  /// exactly the uninstrumented hot path).
  obs::ObsConfig obs;
};

/// Per-shard execution accounting (reporting only — results never depend
/// on it).
struct ShardReport {
  std::size_t shard = 0;
  UserRange range;
  double wall_ms = 0.0;        ///< wall-clock time this shard's users took
  std::uint64_t events = 0;    ///< DES events dispatched across its users
  std::uint64_t ops = 0;       ///< system calls issued across its users
};

/// Merged outcome of a sharded run.
struct RunnerResult {
  /// Usage log merged by (issue time, user index) — empty when collect_log
  /// is off OR the run spilled (use open_log_reader() for the uniform
  /// view).  Bit-identical for every (shards, threads) choice.
  core::UsageLog log;

  /// Sorted on-disk runs in shard order (empty unless spill was on).  The
  /// k-way merge over them yields the exact `log` stream.
  std::vector<core::SpillRun> spilled_runs;

  /// The merged (issue_time, user) record stream, wherever it lives: a
  /// loser-tree merge over `spilled_runs` when the run spilled, else a
  /// cursor over `log`.  Each call opens a fresh cursor.
  std::unique_ptr<core::LogReader> open_log_reader() const;

  /// Bounded-memory response-time quantile sketch (always on): one sketch
  /// per shard during the run, folded exactly — integer bucket counts make
  /// the merge order-invariant, so it is bit-identical for every
  /// (shards, threads) choice without per-user slots.
  stats::QuantileSketch response_sketch;

  std::size_t shards_resumed = 0;       ///< shards restored from checkpoints
  std::size_t checkpoints_written = 0;  ///< checkpoints persisted this run

  /// Mergeable aggregates, folded in ascending global-user order.
  RunnerStats stats;

  std::uint64_t total_ops = 0;
  std::uint64_t sessions_completed = 0;

  /// Longest single-user simulated timeline, microseconds.
  double max_simulated_us = 0.0;

  std::vector<ShardReport> shards;
  double wall_ms = 0.0;  ///< whole run, including partitioning and merging

  /// Merged observability outputs (empty/zero-capacity when obs is off).
  /// The stable metrics fold per-user in ascending user order, so they are
  /// bit-identical for every (shards, threads) choice — same contract as
  /// `stats`.
  obs::Registry registry;
  obs::RunTrace trace;
  PoolObs pool;
};

/// Shard-parallel simulation runner — the scale-out path to the ROADMAP's
/// "millions of simulated users" (architecture in DESIGN.md, "Sharded
/// runner").
///
/// Semantics: every user is an *independent universe* — a private
/// SimulatedFileSystem built by the FSC range path for exactly that user, a
/// private FileSystemModel, and a timeline starting at simulated time 0.
/// This is the regime the per-user RNG streams already guarantee for user
/// behaviour; the runner extends it to the whole environment, which is what
/// makes the merged result a pure per-user function: independent of shard
/// count, thread count, and scheduling.  Shared-machine contention studies
/// (the Figures 5.6–5.11 response-vs-users curves) deliberately stay on the
/// single-Simulation core::UserSimulator path.
///
/// Execution: partition_users() cuts [0, num_users) into K contiguous
/// ranges; a pool of worker threads drains the shards, each worker reusing
/// one warm Simulation (clock/arena reset per user).  Merging follows the
/// merge_user_logs() / RunnerStats contract: fixed ascending-user fold, so
/// every aggregate — including floating-point reductions — is bit-identical
/// regardless of K.
class ShardedRunner {
 public:
  explicit ShardedRunner(RunnerConfig config);

  /// Executes the run.  May be called once.
  RunnerResult run();

  const RunnerConfig& config() const { return config_; }

 private:
  struct UserOutcome;

  /// Simulates one user's universe on the worker's Simulation.  `sample`
  /// (when collecting metrics) and `op_ring` (when tracing) are per-user /
  /// per-shard obs sinks; null means the uninstrumented record hook.
  /// `sink` (when spilling) replaces the in-memory per-user log; `sketch`
  /// is the owning shard's quantile sketch (always set on sharded runs).
  void run_user(sim::Simulation& sim, std::size_t user, UserOutcome& out,
                obs::SimSample* sample, obs::TraceRing* op_ring, core::LogSink* sink,
                stats::QuantileSketch* sketch) const;

  /// Configuration identity folded into checkpoint fingerprints: the runner
  /// knobs that determine every user's record stream, plus the caller's
  /// spill.config_tag for everything above this layer.
  std::string fingerprint() const;

  RunnerConfig config_;

  /// Per-global-user session arrival lists (set once in run() before the
  /// worker pool starts; workers only read it).  Null in closed-loop runs.
  std::shared_ptr<const std::vector<std::vector<double>>> arrivals_;

  bool ran_ = false;
};

}  // namespace wlgen::runner
