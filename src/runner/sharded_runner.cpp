#include "runner/sharded_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/presets.h"
#include "fs/filesystem.h"
#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"

namespace wlgen::runner {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ModelFactory nfs_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::NfsModel>(sim); };
}

ModelFactory local_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::LocalDiskModel>(sim); };
}

ModelFactory wholefile_model_factory() {
  return
      [](sim::Simulation& sim) { return std::make_unique<fsmodel::WholeFileCacheModel>(sim); };
}

ModelFactory model_factory_by_name(const std::string& name) {
  if (name == "nfs") return nfs_model_factory();
  if (name == "local") return local_model_factory();
  if (name == "wholefile") return wholefile_model_factory();
  throw std::invalid_argument("model_factory_by_name: unknown model '" + name +
                              "' (nfs|local|wholefile)");
}

/// Everything one user's universe produces; slots are per-user, so workers
/// never write to shared state.
struct ShardedRunner::UserOutcome {
  explicit UserOutcome(HistogramSpec spec) : stats(spec) {}

  core::UsageLog log;
  RunnerStats stats;
  double simulated_us = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
};

ShardedRunner::ShardedRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.num_users == 0) throw std::invalid_argument("ShardedRunner: need >= 1 user");
  if (config_.shards == 0) throw std::invalid_argument("ShardedRunner: need >= 1 shard");
  if (config_.profiles.empty()) config_.profiles = core::di86_file_profiles();
  if (config_.population.groups.empty()) config_.population = core::default_population();
  if (!config_.model_factory) config_.model_factory = nfs_model_factory();
}

void ShardedRunner::run_user(sim::Simulation& sim, std::size_t user, UserOutcome& out) const {
  sim.reset();

  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&sim] { return sim.now(); });
  auto model = config_.model_factory(sim);

  core::FscConfig fsc_config = config_.fsc;
  fsc_config.num_users = 1;
  fsc_config.first_user = user;
  fsc_config.seed = config_.seed;
  core::FileSystemCreator fsc(fsys, config_.profiles, fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config_.usim;
  usim_config.num_users = 1;
  usim_config.first_user = user;
  usim_config.population_users = config_.num_users;
  usim_config.seed = config_.seed;
  usim_config.collect_log = config_.collect_log;
  usim_config.on_record = [&out](const core::OpRecord& r) { out.stats.add(r); };

  core::UserSimulator usim(sim, fsys, *model, manifest, config_.population, usim_config);
  usim.run();

  out.log = usim.take_log();
  out.simulated_us = sim.now();
  out.ops = usim.total_ops();
  out.sessions = usim.sessions_completed();
  out.events = sim.events_processed();
}

RunnerResult ShardedRunner::run() {
  if (ran_) throw std::logic_error("ShardedRunner::run: may only run once");
  ran_ = true;
  const auto run_start = std::chrono::steady_clock::now();

  const std::size_t num_users = config_.num_users;
  const std::vector<UserRange> ranges = partition_users(num_users, config_.shards);

  std::vector<UserOutcome> outcomes(num_users, UserOutcome(config_.histogram));
  std::vector<ShardReport> reports(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    reports[s].shard = s;
    reports[s].range = ranges[s];
  }

  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  threads = std::min(threads, ranges.size());
  if (threads == 0) threads = 1;

  // Workers drain the shard queue; each owns one Simulation whose clock and
  // event arena are reset between users, so the arena's allocation ramp-up
  // is paid once per worker, not once per user.
  std::atomic<std::size_t> next_shard{0};
  std::atomic<bool> aborted{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    sim::Simulation sim;
    while (true) {
      // A failure in any worker cancels the remaining shards — a 1M-user
      // run must not keep simulating for minutes after the error is known.
      if (aborted.load(std::memory_order_relaxed)) return;
      const std::size_t s = next_shard.fetch_add(1);
      if (s >= ranges.size()) return;
      const auto shard_start = std::chrono::steady_clock::now();
      std::uint64_t events = 0;
      std::uint64_t ops = 0;
      try {
        for (std::size_t u = ranges[s].begin; u < ranges[s].end; ++u) {
          if (aborted.load(std::memory_order_relaxed)) return;
          run_user(sim, u, outcomes[u]);
          events += outcomes[u].events;
          ops += outcomes[u].ops;
        }
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
      reports[s].wall_ms = elapsed_ms(shard_start);
      reports[s].events = events;
      reports[s].ops = ops;
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic fold: ascending global user order, independent of which
  // shard or thread produced each slot.
  RunnerResult result;
  result.stats = RunnerStats(config_.histogram);
  std::vector<core::UsageLog> user_logs;
  user_logs.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    UserOutcome& out = outcomes[u];
    result.stats.merge(out.stats);
    result.total_ops += out.ops;
    result.sessions_completed += out.sessions;
    if (out.simulated_us > result.max_simulated_us) result.max_simulated_us = out.simulated_us;
    user_logs.push_back(std::move(out.log));
  }
  if (config_.collect_log) result.log = merge_user_logs(std::move(user_logs));
  result.shards = std::move(reports);
  result.wall_ms = elapsed_ms(run_start);
  return result;
}

}  // namespace wlgen::runner
