#include "runner/sharded_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/presets.h"
#include "fs/filesystem.h"
#include "obs/progress.h"
#include "runner/pool.h"

namespace wlgen::runner {

/// Everything one user's universe produces; slots are per-user, so workers
/// never write to shared state.
struct ShardedRunner::UserOutcome {
  explicit UserOutcome(HistogramSpec spec) : stats(spec) {}

  core::UsageLog log;
  RunnerStats stats;
  double simulated_us = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
};

ShardedRunner::ShardedRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.num_users == 0) throw std::invalid_argument("ShardedRunner: need >= 1 user");
  if (config_.shards == 0) throw std::invalid_argument("ShardedRunner: need >= 1 shard");
  if (config_.profiles.empty()) config_.profiles = core::di86_file_profiles();
  if (config_.population.groups.empty()) config_.population = core::default_population();
  if (!config_.model_factory) config_.model_factory = nfs_model_factory();
}

void ShardedRunner::run_user(sim::Simulation& sim, std::size_t user, UserOutcome& out,
                             obs::SimSample* sample, obs::TraceRing* op_ring) const {
  sim.reset();

  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&sim] { return sim.now(); });
  auto model = config_.model_factory(sim);

  core::FscConfig fsc_config = config_.fsc;
  fsc_config.num_users = 1;
  fsc_config.first_user = user;
  fsc_config.seed = config_.seed;
  core::FileSystemCreator fsc(fsys, config_.profiles, fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config_.usim;
  usim_config.num_users = 1;
  usim_config.first_user = user;
  usim_config.population_users = config_.num_users;
  usim_config.seed = config_.seed;
  usim_config.collect_log = config_.collect_log;
  // The record hook is the single observation point: when obs is off the
  // lambda is exactly the historical one, so the hot path is unchanged.
  if (sample == nullptr) {
    usim_config.on_record = [&out](const core::OpRecord& r) { out.stats.add(r); };
  } else if (op_ring == nullptr) {
    usim_config.on_record = [&out, sample](const core::OpRecord& r) {
      out.stats.add(r);
      sample->ops.add(r);
    };
  } else {
    usim_config.on_record = [&out, sample, op_ring](const core::OpRecord& r) {
      out.stats.add(r);
      sample->ops.add(r);
      obs::record_op(*op_ring, r);
    };
  }

  core::UserSimulator usim(sim, fsys, *model, manifest, config_.population, usim_config);
  usim.run();

  out.log = usim.take_log();
  out.simulated_us = sim.now();
  out.ops = usim.total_ops();
  out.sessions = usim.sessions_completed();
  out.events = sim.events_processed();
  if (sample != nullptr) {
    sample->sim_events = out.events;
    sample->heap_high_water = sim.arena_high_water();
    sample->rng_draws = usim.rng_draws();
    sample->sessions = out.sessions;
  }
}

RunnerResult ShardedRunner::run() {
  if (ran_) throw std::logic_error("ShardedRunner::run: may only run once");
  ran_ = true;
  const auto run_start = std::chrono::steady_clock::now();

  const std::size_t num_users = config_.num_users;
  const std::vector<UserRange> ranges = partition_users(num_users, config_.shards);

  std::vector<UserOutcome> outcomes(num_users, UserOutcome(config_.histogram));
  std::vector<ShardReport> reports(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    reports[s].shard = s;
    reports[s].range = ranges[s];
  }

  // Observability sinks: per-user samples (merge in user order, like stats)
  // and per-shard trace rings (each touched by one worker, appended in
  // shard order).  All empty when obs is off.
  const bool collect = config_.obs.collect();
  const bool trace_on = config_.obs.trace();
  std::vector<obs::SimSample> samples(collect ? num_users : 0);
  std::vector<obs::TraceRing> op_rings;
  std::vector<obs::TraceRing> stage_rings;
  if (trace_on) {
    const std::size_t share = obs::ring_share(config_.obs.trace_events / 2, ranges.size());
    op_rings.assign(ranges.size(), obs::TraceRing(share));
    stage_rings.assign(ranges.size(), obs::TraceRing(share));
  }
  std::optional<obs::ProgressReporter> progress;
  if (config_.obs.progress) {
    obs::ProgressReporter::Options options;
    options.label = config_.obs.label.empty() ? "sharded run" : config_.obs.label;
    options.unit = "users";
    options.total_units = num_users;
    options.interval_ms = config_.obs.progress_interval_ms;
    progress.emplace(std::move(options));
  }
  PoolObs pool_obs;
  pool_obs.record_spans = trace_on;
  PoolObs* const pool_ptr = config_.obs.any() ? &pool_obs : nullptr;

  // Workers drain the shard queue (runner::drain_pool); each owns one
  // Simulation whose clock and event arena are reset between users, so the
  // arena's allocation ramp-up is paid once per worker, not once per user.
  // A failure in any worker cancels the remaining shards — a 1M-user run
  // must not keep simulating for minutes after the error is known — and the
  // cancellation flag is also polled between users inside a shard.
  drain_pool(ranges.size(), config_.threads, [&]() -> PoolJob {
    auto sim = std::make_shared<sim::Simulation>();
    return [&, sim](std::size_t s, const std::atomic<bool>& cancelled) {
      const auto shard_start = std::chrono::steady_clock::now();
      // Installs this shard's stage ring (or null) for the worker while it
      // runs this shard; save/restore keeps nested pools correct.
      obs::ScopedStageTrace stage_trace(trace_on ? &stage_rings[s] : nullptr);
      std::uint64_t events = 0;
      std::uint64_t ops = 0;
      for (std::size_t u = ranges[s].begin; u < ranges[s].end; ++u) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        run_user(*sim, u, outcomes[u], collect ? &samples[u] : nullptr,
                 trace_on ? &op_rings[s] : nullptr);
        events += outcomes[u].events;
        ops += outcomes[u].ops;
        if (progress) progress->advance(1, outcomes[u].events, outcomes[u].simulated_us);
      }
      reports[s].wall_ms = elapsed_ms(shard_start);
      reports[s].events = events;
      reports[s].ops = ops;
    };
  }, pool_ptr);

  // Deterministic fold: ascending global user order, independent of which
  // shard or thread produced each slot.
  RunnerResult result;
  result.stats = RunnerStats(config_.histogram);
  std::vector<core::UsageLog> user_logs;
  user_logs.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    UserOutcome& out = outcomes[u];
    result.stats.merge(out.stats);
    result.total_ops += out.ops;
    result.sessions_completed += out.sessions;
    if (out.simulated_us > result.max_simulated_us) result.max_simulated_us = out.simulated_us;
    user_logs.push_back(std::move(out.log));
  }
  if (config_.collect_log) result.log = merge_user_logs(std::move(user_logs));
  result.shards = std::move(reports);

  if (progress) progress->stop();
  if (collect) {
    obs::SimSample merged;
    for (std::size_t u = 0; u < num_users; ++u) merged.merge(samples[u]);
    merged.export_into(result.registry);
  }
  if (pool_ptr != nullptr && collect) obs::export_pool(pool_obs, result.registry);
  if (trace_on) {
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      result.trace.ops.append(op_rings[s]);
      result.trace.stages.append(stage_rings[s]);
    }
    result.trace.pool = obs::TraceRing(pool_obs.spans.size());
    obs::pool_spans_into(pool_obs, result.trace.pool);
  }
  result.pool = std::move(pool_obs);

  result.wall_ms = elapsed_ms(run_start);
  return result;
}

}  // namespace wlgen::runner
