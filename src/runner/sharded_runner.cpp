#include "runner/sharded_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/presets.h"
#include "fs/filesystem.h"
#include "obs/progress.h"
#include "runner/checkpoint.h"
#include "runner/pool.h"

namespace wlgen::runner {

namespace {

std::string shard_stem(std::size_t shard) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "shard%06zu", shard);
  return buffer;
}

}  // namespace

/// Everything one user's universe produces; slots are per-user, so workers
/// never write to shared state.
struct ShardedRunner::UserOutcome {
  explicit UserOutcome(HistogramSpec spec) : stats(spec) {}

  core::UsageLog log;
  RunnerStats stats;
  double simulated_us = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
  std::uint64_t rng_draws = 0;        ///< always set (checkpoints need it)
  std::uint64_t heap_high_water = 0;  ///< always set (checkpoints need it)
};

ShardedRunner::ShardedRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.num_users == 0) throw std::invalid_argument("ShardedRunner: need >= 1 user");
  if (config_.shards == 0) throw std::invalid_argument("ShardedRunner: need >= 1 shard");
  if (config_.spill.enabled) {
    if (config_.spill.spool_dir.empty()) {
      throw std::invalid_argument("ShardedRunner: spill requires a spool directory");
    }
    if (!config_.collect_log) {
      throw std::invalid_argument(
          "ShardedRunner: spill streams the log to disk, which conflicts with "
          "collect_log = false (aggregates-only mode); enable the log or disable spill");
    }
    if (config_.spill.buffer_records == 0) {
      throw std::invalid_argument("ShardedRunner: spill.buffer_records must be >= 1");
    }
  }
  if (config_.spill.checkpoint && !config_.spill.enabled) {
    throw std::invalid_argument(
        "ShardedRunner: checkpointing persists spilled runs; it requires spill");
  }
  if (config_.spill.resume && !config_.spill.checkpoint) {
    throw std::invalid_argument("ShardedRunner: resume requires checkpointing");
  }
  if (config_.profiles.empty()) config_.profiles = core::di86_file_profiles();
  if (config_.population.groups.empty()) config_.population = core::default_population();
  if (!config_.model_factory) config_.model_factory = nfs_model_factory();
  config_.traffic.validate();
  if (config_.traffic.arrivals && config_.usim.windows_per_user != 1) {
    throw std::invalid_argument(
        "ShardedRunner: open-loop arrivals require windows_per_user == 1");
  }
}

std::string ShardedRunner::fingerprint() const {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "v1 seed=%llu users=%zu shards=%zu sessions=%zu draw_batch=%zu windows=%zu",
                static_cast<unsigned long long>(config_.seed), config_.num_users,
                config_.shards, config_.usim.sessions_per_user, config_.usim.draw_batch,
                config_.usim.windows_per_user);
  std::string fp = buffer;
  fp += " tag=";
  fp += config_.spill.config_tag;
  // Traffic identity: any arrival/fault change must invalidate checkpoints.
  // Appended only when configured so pre-traffic checkpoints stay valid.
  if (config_.traffic.any()) {
    fp += " traffic=";
    fp += config_.traffic.tag();
  }
  return fp;
}

void ShardedRunner::run_user(sim::Simulation& sim, std::size_t user, UserOutcome& out,
                             obs::SimSample* sample, obs::TraceRing* op_ring,
                             core::LogSink* sink, stats::QuantileSketch* sketch) const {
  sim.reset();

  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&sim] { return sim.now(); });
  auto model = config_.model_factory(sim);
  // Every user universe gets the same fault timeline — slowdown windows and
  // cache flushes are server-side events that exist in each universe's copy
  // of the environment, keeping the per-user purity the merge relies on.
  if (config_.traffic.faults.any()) {
    traffic::install_faults(sim, *model, config_.traffic.faults);
  }

  core::FscConfig fsc_config = config_.fsc;
  fsc_config.num_users = 1;
  fsc_config.first_user = user;
  fsc_config.seed = config_.seed;
  core::FileSystemCreator fsc(fsys, config_.profiles, fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config_.usim;
  usim_config.num_users = 1;
  usim_config.first_user = user;
  usim_config.population_users = config_.num_users;
  usim_config.seed = config_.seed;
  usim_config.collect_log = config_.collect_log;
  usim_config.sink = sink;  // non-null => records stream to the shard's runs
  usim_config.arrival_times_us = arrivals_;
  usim_config.churn = config_.traffic.faults.churns;
  // The record hook is the single observation point: when obs is off the
  // lambda is the minimal stats+sketch one, so the hot path stays lean.
  if (sample == nullptr) {
    usim_config.on_record = [&out, sketch](const core::OpRecord& r) {
      out.stats.add(r);
      sketch->add(r.response_us);
    };
  } else if (op_ring == nullptr) {
    usim_config.on_record = [&out, sketch, sample](const core::OpRecord& r) {
      out.stats.add(r);
      sketch->add(r.response_us);
      sample->ops.add(r);
    };
  } else {
    usim_config.on_record = [&out, sketch, sample, op_ring](const core::OpRecord& r) {
      out.stats.add(r);
      sketch->add(r.response_us);
      sample->ops.add(r);
      obs::record_op(*op_ring, r);
    };
  }

  core::UserSimulator usim(sim, fsys, *model, manifest, config_.population, usim_config);
  usim.run();

  out.log = usim.take_log();
  out.simulated_us = sim.now();
  out.ops = usim.total_ops();
  out.sessions = usim.sessions_completed();
  out.events = sim.events_processed();
  out.rng_draws = usim.rng_draws();
  out.heap_high_water = sim.arena_high_water();
  if (sample != nullptr) {
    sample->sim_events = out.events;
    sample->heap_high_water = out.heap_high_water;
    sample->rng_draws = out.rng_draws;
    sample->sessions = out.sessions;
  }
}

RunnerResult ShardedRunner::run() {
  if (ran_) throw std::logic_error("ShardedRunner::run: may only run once");
  ran_ = true;
  const auto run_start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim

  const std::size_t num_users = config_.num_users;
  const std::vector<UserRange> ranges = partition_users(num_users, config_.shards);
  const bool spill = config_.spill.enabled;

  // Open-loop arrivals: one global timeline from the root seed, dealt to
  // users before the pool starts — a pure function of the config, never of
  // the shard cut or scheduling.
  if (config_.traffic.arrivals) {
    arrivals_ = std::make_shared<const std::vector<std::vector<double>>>(
        traffic::assign_arrivals(*config_.traffic.arrivals, num_users, config_.seed));
  }

  std::vector<UserOutcome> outcomes(num_users, UserOutcome(config_.histogram));
  std::vector<ShardReport> reports(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    reports[s].shard = s;
    reports[s].range = ranges[s];
  }

  // Spill state: one lazily-created sink per shard (each slot touched only
  // by the worker that owns the shard), one quantile sketch per shard
  // (integer merge => any shard grouping yields the same merged sketch),
  // and — under resume — the shards whose checkpoints were accepted.
  const std::string fp = fingerprint();
  std::vector<std::unique_ptr<core::SpillSink>> sinks(ranges.size());
  std::vector<stats::QuantileSketch> sketches(ranges.size());
  std::vector<std::optional<ShardCheckpoint>> resumed(ranges.size());
  std::vector<char> wrote_ckpt(ranges.size(), 0);
  if (spill) {
    std::filesystem::create_directories(config_.spill.spool_dir);
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      const std::string ckpt_path = checkpoint_path(config_.spill.spool_dir, s);
      if (config_.spill.resume) {
        resumed[s] = load_checkpoint(ckpt_path, fp, ranges[s].begin, ranges[s].end);
      }
      if (config_.spill.checkpoint && !resumed[s].has_value()) {
        // Drop any stale/rejected checkpoint so an interruption during this
        // run can never leave a file that lies about the new run files.
        std::error_code ec;
        std::filesystem::remove(ckpt_path, ec);
      }
    }
  }

  // Observability sinks: per-user samples (merge in user order, like stats)
  // and per-shard trace rings (each touched by one worker, appended in
  // shard order).  All empty when obs is off.
  const bool collect = config_.obs.collect();
  const bool trace_on = config_.obs.trace();
  std::vector<obs::SimSample> samples(collect ? num_users : 0);
  std::vector<obs::TraceRing> op_rings;
  std::vector<obs::TraceRing> stage_rings;
  if (trace_on) {
    const std::size_t share = obs::ring_share(config_.obs.trace_events / 2, ranges.size());
    op_rings.assign(ranges.size(), obs::TraceRing(share));
    stage_rings.assign(ranges.size(), obs::TraceRing(share));
  }
  std::optional<obs::ProgressReporter> progress;
  if (config_.obs.progress) {
    obs::ProgressReporter::Options options;
    options.label = config_.obs.label.empty() ? "sharded run" : config_.obs.label;
    options.unit = "users";
    options.total_units = num_users;
    options.interval_ms = config_.obs.progress_interval_ms;
    progress.emplace(std::move(options));
  }
  PoolObs pool_obs;
  pool_obs.record_spans = trace_on;
  PoolObs* const pool_ptr = config_.obs.any() ? &pool_obs : nullptr;

  // Workers drain the shard queue (runner::drain_pool); each owns one
  // Simulation whose clock and event arena are reset between users, so the
  // arena's allocation ramp-up is paid once per worker, not once per user.
  // A failure in any worker cancels the remaining shards — a 1M-user run
  // must not keep simulating for minutes after the error is known — and the
  // cancellation flag is also polled between users inside a shard.
  drain_pool(ranges.size(), config_.threads, [&]() -> PoolJob {
    auto sim = std::make_shared<sim::Simulation>();
    return [&, sim](std::size_t s, const std::atomic<bool>& cancelled) {
      const auto shard_start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
      // Installs this shard's stage ring (or null) for the worker while it
      // runs this shard; save/restore keeps nested pools correct.
      obs::ScopedStageTrace stage_trace(trace_on ? &stage_rings[s] : nullptr);

      if (resumed[s].has_value()) {
        // Checkpointed shard: skip the simulation and rebuild the per-user
        // accumulators by re-reading its sorted runs.  The stable per-run
        // sort preserved each user's original append order, so every
        // per-user slot sees the exact same sequence of add() calls as a
        // live run — which is what keeps the floating-point folds (and
        // therefore the digest) bit-identical.  Shard totals that records
        // cannot reproduce (events, RNG draws, ...) come from the
        // checkpoint's grouping-invariant integer scalars instead.
        const ShardCheckpoint& ckpt = *resumed[s];
        auto reader = core::open_spilled_log(ckpt.runs);
        core::OpRecord r;
        while (reader->next(r)) {
          if (cancelled.load(std::memory_order_relaxed)) return;
          outcomes[r.user].stats.add(r);
          sketches[s].add(r.response_us);
          if (collect) samples[r.user].ops.add(r);
        }
        reports[s].wall_ms = elapsed_ms(shard_start);
        reports[s].events = ckpt.events;
        reports[s].ops = ckpt.ops;
        if (progress) {
          progress->advance(ranges[s].size(), ckpt.events, ckpt.max_simulated_us);
        }
        return;
      }

      core::LogSink* sink = nullptr;
      if (spill) {
        sinks[s] = std::make_unique<core::SpillSink>(
            config_.spill.spool_dir, shard_stem(s), config_.spill.buffer_records);
        sink = sinks[s].get();
      }
      std::uint64_t events = 0;
      std::uint64_t ops = 0;
      for (std::size_t u = ranges[s].begin; u < ranges[s].end; ++u) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        run_user(*sim, u, outcomes[u], collect ? &samples[u] : nullptr,
                 trace_on ? &op_rings[s] : nullptr, sink, &sketches[s]);
        events += outcomes[u].events;
        ops += outcomes[u].ops;
        if (progress) progress->advance(1, outcomes[u].events, outcomes[u].simulated_us);
      }
      if (sink != nullptr) sinks[s]->close();
      if (config_.spill.checkpoint) {
        // Reached only when every user in the shard completed (cancellation
        // returns early above), so the checkpoint always describes a whole
        // shard.  Written atomically; a crash between shards leaves the
        // finished ones resumable and the in-flight one absent.
        ShardCheckpoint ckpt;
        ckpt.shard = s;
        ckpt.begin = ranges[s].begin;
        ckpt.end = ranges[s].end;
        ckpt.events = events;
        ckpt.ops = ops;
        for (std::size_t u = ranges[s].begin; u < ranges[s].end; ++u) {
          ckpt.sessions += outcomes[u].sessions;
          ckpt.rng_draws += outcomes[u].rng_draws;
          ckpt.heap_high_water = std::max(ckpt.heap_high_water, outcomes[u].heap_high_water);
          ckpt.max_simulated_us = std::max(ckpt.max_simulated_us, outcomes[u].simulated_us);
        }
        ckpt.runs = sinks[s]->runs();
        write_checkpoint(checkpoint_path(config_.spill.spool_dir, s), ckpt, fp);
        wrote_ckpt[s] = 1;
      }
      reports[s].wall_ms = elapsed_ms(shard_start);
      reports[s].events = events;
      reports[s].ops = ops;
    };
  }, pool_ptr);

  // Deterministic fold: ascending global user order, independent of which
  // shard or thread produced each slot.  Resumed shards contributed their
  // per-user statistics through the reconstruction above; their integer
  // shard totals fold afterwards (sums/maxima — grouping-invariant).
  RunnerResult result;
  result.stats = RunnerStats(config_.histogram);
  const bool merge_in_memory = config_.collect_log && !spill;
  std::vector<core::UsageLog> user_logs;
  if (merge_in_memory) user_logs.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    UserOutcome& out = outcomes[u];
    result.stats.merge(out.stats);
    result.total_ops += out.ops;
    result.sessions_completed += out.sessions;
    if (out.simulated_us > result.max_simulated_us) result.max_simulated_us = out.simulated_us;
    if (merge_in_memory) user_logs.push_back(std::move(out.log));
  }
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    if (!resumed[s].has_value()) continue;
    const ShardCheckpoint& ckpt = *resumed[s];
    result.total_ops += ckpt.ops;
    result.sessions_completed += ckpt.sessions;
    if (ckpt.max_simulated_us > result.max_simulated_us) {
      result.max_simulated_us = ckpt.max_simulated_us;
    }
    result.shards_resumed += 1;
  }
  if (merge_in_memory) result.log = merge_user_logs(std::move(user_logs));
  if (spill) {
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      const auto& shard_runs = resumed[s].has_value() ? resumed[s]->runs : sinks[s]->runs();
      result.spilled_runs.insert(result.spilled_runs.end(), shard_runs.begin(),
                                 shard_runs.end());
    }
  }
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    result.response_sketch.merge(sketches[s]);
    result.checkpoints_written += wrote_ckpt[s];
  }
  result.shards = std::move(reports);

  if (progress) progress->stop();
  if (collect) {
    obs::SimSample merged;
    for (std::size_t u = 0; u < num_users; ++u) merged.merge(samples[u]);
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      if (!resumed[s].has_value()) continue;
      const ShardCheckpoint& ckpt = *resumed[s];
      merged.sim_events += ckpt.events;
      merged.rng_draws += ckpt.rng_draws;
      merged.sessions += ckpt.sessions;
      merged.heap_high_water = std::max(merged.heap_high_water, ckpt.heap_high_water);
    }
    merged.export_into(result.registry);
    if (spill) {
      std::uint64_t records = 0;
      std::uint64_t bytes = 0;
      for (const auto& run : result.spilled_runs) {
        records += run.records;
        bytes += run.bytes;
      }
      // Record count equals the merged log length — shard/thread invariant.
      // Run/byte/fan-in shapes depend on the shard cut, so they live with
      // the unstable (timing-ish) metrics.
      result.registry.add_counter("spill.records", records);
      result.registry.add_counter("spill.runs_written", result.spilled_runs.size(),
                                  /*stable=*/false);
      result.registry.add_counter("spill.bytes", bytes, /*stable=*/false);
      result.registry.add_gauge_max("spill.merge_fan_in", result.spilled_runs.size(),
                                    /*stable=*/false);
    }
    if (config_.spill.checkpoint) {
      result.registry.add_counter("checkpoint.written", result.checkpoints_written,
                                  /*stable=*/false);
      result.registry.add_counter("checkpoint.resumed", result.shards_resumed,
                                  /*stable=*/false);
    }
    if (config_.traffic.any()) {
      // Pure functions of the config — shard/thread invariant, so stable.
      std::uint64_t total_arrivals = 0;
      if (arrivals_) {
        for (const auto& user_arrivals : *arrivals_) total_arrivals += user_arrivals.size();
      }
      result.registry.add_counter("traffic.arrivals", total_arrivals);
      result.registry.add_counter("traffic.slowdown_windows",
                                  config_.traffic.faults.slowdowns.size());
      result.registry.add_counter("traffic.flush_events",
                                  config_.traffic.faults.flush_times_us.size());
      result.registry.add_counter("traffic.churn_windows",
                                  config_.traffic.faults.churns.size());
    }
  }
  if (pool_ptr != nullptr && collect) obs::export_pool(pool_obs, result.registry);
  if (trace_on) {
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      result.trace.ops.append(op_rings[s]);
      result.trace.stages.append(stage_rings[s]);
    }
    result.trace.pool = obs::TraceRing(pool_obs.spans.size());
    obs::pool_spans_into(pool_obs, result.trace.pool);
  }
  result.pool = std::move(pool_obs);

  result.wall_ms = elapsed_ms(run_start);
  return result;
}

std::unique_ptr<core::LogReader> RunnerResult::open_log_reader() const {
  if (!spilled_runs.empty()) return core::open_spilled_log(spilled_runs);
  return std::make_unique<core::MemoryLogReader>(log);
}

}  // namespace wlgen::runner
