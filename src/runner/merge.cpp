#include "runner/merge.h"

#include <algorithm>

namespace wlgen::runner {

core::UsageLog merge_user_logs(std::vector<core::UsageLog> per_user) {
  std::size_t total = 0;
  for (const auto& log : per_user) total += log.size();

  core::UsageLog merged;
  auto& records = merged.records_mutable();
  records.reserve(total);
  // Concatenate in ascending user order, then stable-sort on the
  // (time, user) key: stability preserves each user's issue order for
  // records with equal keys, which is exactly the merge contract.
  for (auto& log : per_user) {
    for (auto& r : log.records_mutable()) records.push_back(r);
    log.clear();
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const core::OpRecord& a, const core::OpRecord& b) {
                     if (a.issue_time_us != b.issue_time_us) {
                       return a.issue_time_us < b.issue_time_us;
                     }
                     return a.user < b.user;
                   });
  return merged;
}

bool is_merge_ordered(const core::UsageLog& log) {
  const auto& records = log.records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    const auto& prev = records[i - 1];
    const auto& cur = records[i];
    if (prev.issue_time_us > cur.issue_time_us) return false;
    if (prev.issue_time_us == cur.issue_time_us && prev.user > cur.user) return false;
  }
  return true;
}

bool is_merge_ordered(core::LogReader& reader) {
  core::OpRecord prev;
  if (!reader.next(prev)) return true;
  core::OpRecord cur;
  while (reader.next(cur)) {
    if (prev.issue_time_us > cur.issue_time_us) return false;
    if (prev.issue_time_us == cur.issue_time_us && prev.user > cur.user) return false;
    prev = cur;
  }
  return true;
}

}  // namespace wlgen::runner
