#pragma once

#include <cstdint>

#include "core/usage_log.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace wlgen::runner {

/// Geometry of the runner's response-time histogram.  Fixed up front (not
/// derived from the data) so per-shard histograms share bins and merge
/// exactly.
struct HistogramSpec {
  double lo_us = 0.0;
  double hi_us = 2.0e5;  ///< clamp tail into the top bin (Histogram semantics)
  std::size_t bins = 100;
};

/// Mergeable per-run aggregates — the statistics a sharded run can report
/// without retaining any usage log.  Each shard accumulates one RunnerStats
/// per user (via UsimConfig::on_record); the runner then folds them in
/// ascending global-user order, so the merged result is a fixed
/// floating-point reduction sequence: bit-identical regardless of how many
/// shards or threads executed the run (the merge-ordering contract, see
/// DESIGN.md "Sharded runner").
class RunnerStats {
 public:
  explicit RunnerStats(HistogramSpec spec = {});

  /// Accumulates one completed system call.
  void add(const core::OpRecord& record);

  /// Folds `other` into this (histogram geometries must match).
  void merge(const RunnerStats& other);

  /// Response time over every logged call (UsageAnalyzer::response_stats).
  const stats::RunningSummary& response_us() const { return response_us_; }

  /// Actual bytes per read/write call (UsageAnalyzer::access_size_stats).
  const stats::RunningSummary& access_size() const { return access_size_; }

  /// Response-time distribution over all calls, fixed spec bins.
  const stats::Histogram& response_histogram() const { return response_hist_; }

  std::uint64_t ops() const { return ops_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

  /// Total response over all calls / bytes moved by data calls — the
  /// Figures 5.6–5.12 y-axis (UsageAnalyzer::response_per_byte_us).
  double response_per_byte_us() const;

 private:
  stats::RunningSummary response_us_;
  stats::RunningSummary access_size_;
  stats::Histogram response_hist_;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_moved_ = 0;
  double total_response_us_ = 0.0;
};

}  // namespace wlgen::runner
