#include "runner/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"
#include "util/svg.h"

namespace wlgen::runner {

namespace {

constexpr const char* kSchema = "wlgen-checkpoint-v1";

std::string exact(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

std::string checkpoint_path(const std::string& spool_dir, std::size_t shard) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%06zu", shard);
  return (std::filesystem::path(spool_dir) / ("shard" + std::string(buffer) + ".ckpt"))
      .string();
}

void write_checkpoint(const std::string& path, const ShardCheckpoint& c,
                      const std::string& fingerprint) {
  std::ostringstream out;
  out << kSchema << "\n";
  out << "fingerprint " << fingerprint << "\n";
  out << "shard " << c.shard << "\n";
  out << "range " << c.begin << " " << c.end << "\n";
  out << "ops " << c.ops << "\n";
  out << "sessions " << c.sessions << "\n";
  out << "events " << c.events << "\n";
  out << "rng_draws " << c.rng_draws << "\n";
  out << "heap_high_water " << c.heap_high_water << "\n";
  out << "max_sim_us " << exact(c.max_simulated_us) << "\n";
  out << "runs " << c.runs.size() << "\n";
  for (const auto& run : c.runs) {
    out << "run " << run.records << " " << run.bytes << " " << run.path << "\n";
  }
  out << "end\n";

  const std::string tmp = path + ".tmp";
  util::write_text_file(tmp, out.str());
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("write_checkpoint: cannot rename '" + tmp + "' to '" + path +
                             "': " + ec.message());
  }
}

std::optional<ShardCheckpoint> load_checkpoint(const std::string& path,
                                               const std::string& fingerprint,
                                               std::size_t expect_begin,
                                               std::size_t expect_end) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line) || line != kSchema) return std::nullopt;
  if (!std::getline(in, line) || line.rfind("fingerprint ", 0) != 0) return std::nullopt;
  const std::string stored = line.substr(std::string("fingerprint ").size());
  if (stored != fingerprint) {
    throw std::runtime_error("checkpoint '" + path +
                             "' was written under a different configuration\n  stored:  " +
                             stored + "\n  current: " + fingerprint +
                             "\nresuming would merge incompatible results; delete the spool "
                             "directory (or fix the scenario) to proceed");
  }

  ShardCheckpoint c;
  std::size_t declared_runs = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "shard") {
      fields >> c.shard;
    } else if (key == "range") {
      fields >> c.begin >> c.end;
    } else if (key == "ops") {
      fields >> c.ops;
    } else if (key == "sessions") {
      fields >> c.sessions;
    } else if (key == "events") {
      fields >> c.events;
    } else if (key == "rng_draws") {
      fields >> c.rng_draws;
    } else if (key == "heap_high_water") {
      fields >> c.heap_high_water;
    } else if (key == "max_sim_us") {
      fields >> c.max_simulated_us;
    } else if (key == "runs") {
      fields >> declared_runs;
    } else if (key == "run") {
      core::SpillRun run;
      fields >> run.records >> run.bytes;
      std::getline(fields, run.path);
      run.path = util::trim(run.path);
      c.runs.push_back(std::move(run));
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;  // unknown line: treat as corrupt, re-run the shard
    }
    if (fields.fail()) return std::nullopt;
  }
  if (!saw_end || c.runs.size() != declared_runs || c.end < c.begin) return std::nullopt;
  if (c.begin != expect_begin || c.end != expect_end) return std::nullopt;

  // Run files must still exist with exactly the recorded size — a cheap
  // integrity check that catches truncation from the interruption itself.
  for (const auto& run : c.runs) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(run.path, ec);
    if (ec || size != run.bytes) return std::nullopt;
  }
  return c;
}

}  // namespace wlgen::runner
