#pragma once

#include <vector>

#include "core/log_sink.h"
#include "core/usage_log.h"

namespace wlgen::runner {

/// Merges per-user usage logs (indexed by global user, each in issue-time
/// order) into one log ordered by the runner's merge contract:
///
///   (issue_time_us ascending, user index ascending, per-user issue order)
///
/// Timestamp ties across users break by user index — the deterministic
/// analogue of the event core's FIFO tie-break — and ties within a user keep
/// the user's own issue order.  The result is a pure function of the
/// per-user inputs, so it is bit-identical however those inputs were
/// produced (1 shard or N, 1 thread or T).
core::UsageLog merge_user_logs(std::vector<core::UsageLog> per_user);

/// True when `log` is non-descending on the (issue_time_us, user) key —
/// the observable half of the merge contract; exposed for tests and the
/// CLI's --verify-merge mode.  Per-user sub-order on full ties is NOT
/// checkable from a log alone (records carry no per-user issue ordinal);
/// the runner tests pin it by comparing whole logs across shard counts.
bool is_merge_ordered(const core::UsageLog& log);

/// Streaming variant over a LogReader cursor — same check in O(1) memory,
/// so --verify-merge works on spilled runs that never fit in RAM.
bool is_merge_ordered(core::LogReader& reader);

}  // namespace wlgen::runner
