#include "runner/model_factory.h"

#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>

#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"
#include "util/strings.h"

namespace wlgen::runner {

namespace {

/// How one override value is written into a params struct.  Each setter
/// validates the domain it needs (integral, boolean) before narrowing.
template <typename Params>
using Setter = std::function<void(Params&, double)>;

[[noreturn]] void value_fail(const std::string& key, double value, const char* expected) {
  throw std::invalid_argument("model parameter '" + key + "' expects " + expected + ", got " +
                              std::to_string(value));
}

double require_integral(const std::string& key, double value) {
  if (value < 0.0 || std::floor(value) != value) {
    value_fail(key, value, "a non-negative integer");
  }
  return value;
}

template <typename Params, typename Field>
Setter<Params> int_field(Field Params::* field) {
  return [field](Params& params, double value) {
    params.*field = static_cast<Field>(value);
  };
}

template <typename Params>
Setter<Params> double_field(double Params::* field) {
  return [field](Params& params, double value) { params.*field = value; };
}

template <typename Params>
Setter<Params> bool_field(bool Params::* field) {
  return [field](Params& params, double value) { params.*field = value != 0.0; };
}

/// Key → (setter, needs-integral, is-boolean) table for one params struct.
template <typename Params>
struct ParamTable {
  struct Row {
    Setter<Params> set;
    bool integral = false;
    bool boolean = false;
  };
  std::map<std::string, Row> rows;

  void apply(Params& params, const std::string& model, const ModelParamOverride& o) const {
    const auto it = rows.find(o.key);
    if (it == rows.end()) {
      std::vector<std::string> keys;
      for (const auto& [key, row] : rows) keys.push_back(key);
      throw std::invalid_argument("unknown parameter '" + o.key + "' for model '" + model +
                                  "' (valid: " + util::join(keys, ", ") + ")");
    }
    if (it->second.boolean && o.value != 0.0 && o.value != 1.0) {
      value_fail(o.key, o.value, "a boolean (0 or 1)");
    }
    if (it->second.integral) require_integral(o.key, o.value);
    it->second.set(params, o.value);
  }

  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    for (const auto& [key, row] : rows) out.push_back(key);
    return out;
  }
};

const ParamTable<fsmodel::NfsParams>& nfs_params_table() {
  using P = fsmodel::NfsParams;
  static const ParamTable<P> table{{
      {"block_size", {int_field<P>(&P::block_size), true, false}},
      {"client_cache_blocks", {int_field<P>(&P::client_cache_blocks), true, false}},
      {"client_attr_entries", {int_field<P>(&P::client_attr_entries), true, false}},
      {"server_cache_blocks", {int_field<P>(&P::server_cache_blocks), true, false}},
      {"server_attr_entries", {int_field<P>(&P::server_attr_entries), true, false}},
      {"client_overhead_us", {double_field<P>(&P::client_overhead_us), false, false}},
      {"client_hit_us", {double_field<P>(&P::client_hit_us), false, false}},
      {"client_byte_copy_us_per_kb",
       {double_field<P>(&P::client_byte_copy_us_per_kb), false, false}},
      {"server_cpu_us", {double_field<P>(&P::server_cpu_us), false, false}},
      {"server_cache_hit_us", {double_field<P>(&P::server_cache_hit_us), false, false}},
      {"rpc_request_bytes", {int_field<P>(&P::rpc_request_bytes), true, false}},
      {"rpc_reply_meta_bytes", {int_field<P>(&P::rpc_reply_meta_bytes), true, false}},
      {"async_writes", {bool_field<P>(&P::async_writes), false, true}},
      {"readahead_blocks", {int_field<P>(&P::readahead_blocks), true, false}},
      {"num_clients", {int_field<P>(&P::num_clients), true, false}},
  }};
  return table;
}

const ParamTable<fsmodel::LocalParams>& local_params_table() {
  using P = fsmodel::LocalParams;
  static const ParamTable<P> table{{
      {"block_size", {int_field<P>(&P::block_size), true, false}},
      {"buffer_cache_blocks", {int_field<P>(&P::buffer_cache_blocks), true, false}},
      {"inode_cache_entries", {int_field<P>(&P::inode_cache_entries), true, false}},
      {"syscall_overhead_us", {double_field<P>(&P::syscall_overhead_us), false, false}},
      {"cache_hit_us", {double_field<P>(&P::cache_hit_us), false, false}},
      {"byte_copy_us_per_kb", {double_field<P>(&P::byte_copy_us_per_kb), false, false}},
      {"async_writes", {bool_field<P>(&P::async_writes), false, true}},
  }};
  return table;
}

const ParamTable<fsmodel::WholeFileParams>& wholefile_params_table() {
  using P = fsmodel::WholeFileParams;
  static const ParamTable<P> table{{
      {"cache_files", {int_field<P>(&P::cache_files), true, false}},
      {"open_check_us", {double_field<P>(&P::open_check_us), false, false}},
      {"local_io_us", {double_field<P>(&P::local_io_us), false, false}},
      {"byte_copy_us_per_kb", {double_field<P>(&P::byte_copy_us_per_kb), false, false}},
      {"server_cpu_us", {double_field<P>(&P::server_cpu_us), false, false}},
      {"rpc_request_bytes", {int_field<P>(&P::rpc_request_bytes), true, false}},
      {"max_transfer_bytes", {int_field<P>(&P::max_transfer_bytes), true, false}},
  }};
  return table;
}

[[noreturn]] void unknown_model(const std::string& name) {
  throw std::invalid_argument("unknown model '" + name + "' (nfs|local|wholefile)");
}

}  // namespace

ModelFactory nfs_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::NfsModel>(sim); };
}

ModelFactory local_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::LocalDiskModel>(sim); };
}

ModelFactory wholefile_model_factory() {
  return
      [](sim::Simulation& sim) { return std::make_unique<fsmodel::WholeFileCacheModel>(sim); };
}

ModelFactory model_factory_by_name(const std::string& name) {
  return model_factory_by_name(name, {});
}

ModelFactory model_factory_by_name(const std::string& name,
                                   const std::vector<ModelParamOverride>& overrides) {
  if (name == "nfs") {
    fsmodel::NfsParams params;
    for (const auto& o : overrides) nfs_params_table().apply(params, name, o);
    return [params](sim::Simulation& sim) {
      return std::make_unique<fsmodel::NfsModel>(sim, params);
    };
  }
  if (name == "local") {
    fsmodel::LocalParams params;
    for (const auto& o : overrides) local_params_table().apply(params, name, o);
    return [params](sim::Simulation& sim) {
      return std::make_unique<fsmodel::LocalDiskModel>(sim, params);
    };
  }
  if (name == "wholefile") {
    fsmodel::WholeFileParams params;
    for (const auto& o : overrides) wholefile_params_table().apply(params, name, o);
    return [params](sim::Simulation& sim) {
      return std::make_unique<fsmodel::WholeFileCacheModel>(sim, params);
    };
  }
  unknown_model(name);
}

std::vector<std::string> model_param_keys(const std::string& name) {
  if (name == "nfs") return nfs_params_table().keys();
  if (name == "local") return local_params_table().keys();
  if (name == "wholefile") return wholefile_params_table().keys();
  unknown_model(name);
}

}  // namespace wlgen::runner
