#include "runner/model_factory.h"

#include <stdexcept>

#include "fsmodel/local_model.h"
#include "fsmodel/nfs_model.h"
#include "fsmodel/wholefile_model.h"

namespace wlgen::runner {

ModelFactory nfs_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::NfsModel>(sim); };
}

ModelFactory local_model_factory() {
  return [](sim::Simulation& sim) { return std::make_unique<fsmodel::LocalDiskModel>(sim); };
}

ModelFactory wholefile_model_factory() {
  return
      [](sim::Simulation& sim) { return std::make_unique<fsmodel::WholeFileCacheModel>(sim); };
}

ModelFactory model_factory_by_name(const std::string& name) {
  if (name == "nfs") return nfs_model_factory();
  if (name == "local") return local_model_factory();
  if (name == "wholefile") return wholefile_model_factory();
  throw std::invalid_argument("model_factory_by_name: unknown model '" + name +
                              "' (nfs|local|wholefile)");
}

}  // namespace wlgen::runner
