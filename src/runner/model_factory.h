#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::runner {

/// Builds a fresh performance-model instance bound to a Simulation.  The
/// sharded runner invokes the factory once per user (every user owns a
/// private workstation/server universe); the contended runner invokes it
/// once per replication (all of a sweep point's users share the instance).
using ModelFactory =
    std::function<std::unique_ptr<fsmodel::FileSystemModel>(sim::Simulation&)>;

/// Factories for the three paper models with default parameters.
ModelFactory nfs_model_factory();
ModelFactory local_model_factory();
ModelFactory wholefile_model_factory();

/// "nfs" | "local" | "wholefile"; throws std::invalid_argument otherwise.
ModelFactory model_factory_by_name(const std::string& name);

/// One named parameter override on a model's params struct (e.g.
/// {"readahead_blocks", 2} on "nfs").  Values are carried as doubles;
/// integral parameters reject fractional values and boolean parameters
/// accept only 0 or 1, so a typo fails loudly instead of truncating.
struct ModelParamOverride {
  std::string key;
  double value = 0.0;
};

/// Like model_factory_by_name, with `overrides` applied to the model's
/// default parameters before construction — the scenario subsystem's
/// `<model>.<param> = value` plumbing.  Throws std::invalid_argument on an
/// unknown model, an unknown parameter key (the message lists the valid
/// keys), or an out-of-domain value.
ModelFactory model_factory_by_name(const std::string& name,
                                   const std::vector<ModelParamOverride>& overrides);

/// The parameter keys overridable for `name`, sorted — reference for error
/// messages, docs and tests.  Throws std::invalid_argument on an unknown
/// model name.
std::vector<std::string> model_param_keys(const std::string& name);

}  // namespace wlgen::runner
