#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::runner {

/// Builds a fresh performance-model instance bound to a Simulation.  The
/// sharded runner invokes the factory once per user (every user owns a
/// private workstation/server universe); the contended runner invokes it
/// once per replication (all of a sweep point's users share the instance).
using ModelFactory =
    std::function<std::unique_ptr<fsmodel::FileSystemModel>(sim::Simulation&)>;

/// Factories for the three paper models with default parameters.
ModelFactory nfs_model_factory();
ModelFactory local_model_factory();
ModelFactory wholefile_model_factory();

/// "nfs" | "local" | "wholefile"; throws std::invalid_argument otherwise.
ModelFactory model_factory_by_name(const std::string& name);

}  // namespace wlgen::runner
