#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/log_sink.h"

namespace wlgen::runner {

/// Everything a completed shard persists so a later run can skip
/// re-simulating it: its run files plus the scalar aggregates that cannot
/// be reconstructed from records alone.
///
/// The per-user floating-point statistics are deliberately NOT stored:
/// pre-folded shard stats would change the global per-user reduction order
/// (FP addition is not associative) and break the bit-identical digest
/// contract.  Resume instead re-reads the shard's sorted runs — the stable
/// per-run sort preserves each user's original append order, so re-adding
/// records per user reproduces the exact same fold sequence as a live run.
/// Scalars below are integer sums / maxima, which ARE grouping-invariant.
///
/// No RNG engine state is needed at a shard boundary: every user stream is
/// derived from (seed, global user index) alone, so the fingerprint's seed
/// plus the shard's user range fully determine the remaining streams.
struct ShardCheckpoint {
  std::size_t shard = 0;
  std::size_t begin = 0;  ///< user range [begin, end)
  std::size_t end = 0;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
  std::uint64_t rng_draws = 0;
  std::uint64_t heap_high_water = 0;
  double max_simulated_us = 0.0;
  std::vector<core::SpillRun> runs;
};

/// `<spool_dir>/shard<NNNNNN>.ckpt`.
std::string checkpoint_path(const std::string& spool_dir, std::size_t shard);

/// Writes atomically (tmp + rename) so an interrupted run never leaves a
/// half-written checkpoint.  Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path, const ShardCheckpoint& checkpoint,
                      const std::string& fingerprint);

/// Loads and validates one shard checkpoint.
///
/// * missing / unparseable file, a run file that is absent or has the
///   wrong size, or a stored user range different from
///   [expect_begin, expect_end) → nullopt (the shard simply re-runs; the
///   fingerprint pins users+shards, so a range mismatch can only mean the
///   file predates this scheme);
/// * fingerprint mismatch → std::runtime_error (resuming under a different
///   configuration would silently merge incompatible results — fail loud).
std::optional<ShardCheckpoint> load_checkpoint(const std::string& path,
                                               const std::string& fingerprint,
                                               std::size_t expect_begin,
                                               std::size_t expect_end);

}  // namespace wlgen::runner
