#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/fsc.h"
#include "core/usim.h"
#include "core/workload.h"
#include "fsmodel/model.h"
#include "obs/obs.h"
#include "runner/model_factory.h"
#include "runner/stats.h"
#include "sim/simulation.h"
#include "stats/summary.h"
#include "traffic/traffic.h"

namespace wlgen::runner {

/// Deterministic seed of one contended replication: a splitmix64-style mix
/// of the root seed and the replication index.  It depends on nothing else —
/// not the total replication count, the set of sweep points, or scheduling —
/// so replication r reproduces exactly whether it runs alone or as part of a
/// larger sweep.  Deliberately *shared by every sweep point* of a
/// replication: per-user RNG streams are keyed by global user index, so the
/// N-user and (N+1)-user points of one replication draw from identical
/// streams for their first N users — common random numbers, the paper's
/// physical setup (the same terminals, one more switched on), which keeps
/// the response-vs-users differences low-variance.  Caveat: user-*type*
/// assignment apportions the population mix over each point's own user
/// count (an "N users of mix X" point means exactly that, so this is the
/// experiment's semantics, not an accident); single-type populations
/// (Figures 5.6, 5.7, 5.11) therefore get exact behavioural CRN, while
/// mixed ones get it per-stream but may flip a user's type between
/// adjacent points (see DESIGN.md "Contended runner").
std::uint64_t replication_seed(std::uint64_t root_seed, std::size_t replication);

/// Configuration of a contended run: a sweep over simultaneous-user counts
/// (the x-axis of Figures 5.6–5.11), each point replicated R times with
/// independent seeds.
struct ContendedConfig {
  /// Simultaneous-user counts to sweep, in output order (e.g. {1,...,6}).
  std::vector<std::size_t> user_points;

  /// Independent replications per sweep point (>= 1).  Each replication is a
  /// complete universe: its own FSC layout and user streams under its own
  /// replication_seed().
  std::size_t replications = 1;

  /// Worker threads executing (point x replication) jobs (0 = min(jobs,
  /// hardware concurrency)).  Purely an execution knob; never affects
  /// results.
  std::size_t threads = 0;

  /// Root seed; see replication_seed().
  std::uint64_t seed = 1991;

  /// Confidence level of the cross-replication interval (0.90|0.95|0.99).
  double confidence = 0.95;

  /// Per-user behaviour.  num_users, first_user, population_users, seed,
  /// collect_log and the record hook are overwritten per replication.
  core::UsimConfig usim;

  /// File-system layout; num_users/first_user/seed overwritten.
  core::FscConfig fsc;

  /// Initial-file-system category profiles (empty = core::di86_file_profiles()).
  std::vector<core::FileCategoryProfile> profiles;

  /// User-type mixture (empty groups = core::default_population()).
  core::Population population;

  /// Geometry of the per-point response-time histograms.
  HistogramSpec histogram;

  /// Model per replication — shared by all of that replication's users
  /// (null = nfs_model_factory()).
  ModelFactory model_factory;

  /// Optional tuning applied to every freshly built model (parameter
  /// ablations), invoked before any op is planned.
  std::function<void(fsmodel::FileSystemModel&)> tune_model;

  /// Observability switches (all off by default — the default run takes
  /// exactly the uninstrumented hot path).
  obs::ObsConfig obs;

  /// Open-system traffic (src/traffic/): optional open-loop arrivals plus a
  /// fault plan.  Each replication generates its own arrival timeline from
  /// its replication_seed() (independent replications stay independent) and
  /// installs the fault events on its shared model — pure functions of
  /// (config, point, replication), so thread invariance is unchanged.
  traffic::TrafficConfig traffic;
};

/// Per-replication execution accounting (reporting only — results never
/// depend on it).
struct ReplicationReport {
  std::size_t point = 0;        ///< index into ContendedConfig::user_points
  std::size_t replication = 0;  ///< replication index within the point
  std::uint64_t seed = 0;       ///< the derived replication_seed()
  std::uint64_t ops = 0;        ///< system calls issued
  std::uint64_t events = 0;     ///< DES events dispatched
  double simulated_us = 0.0;    ///< replication's simulated timeline
  double wall_ms = 0.0;
};

/// Merged outcome of one sweep point.
struct ContendedPoint {
  std::size_t users = 0;

  /// Aggregates pooled over the point's replications, folded in ascending
  /// replication order — a fixed floating-point reduction sequence, so the
  /// pooled result is bit-identical for every thread count.
  RunnerStats stats;

  /// Per-replication response-per-byte levels, in replication order.
  std::vector<double> replication_levels;

  /// Cross-replication mean of replication_levels with a Student-t
  /// confidence half-width (half_width 0 when replications == 1).
  stats::MeanCi response_per_byte;

  std::uint64_t total_ops = 0;
  std::uint64_t sessions_completed = 0;
};

/// Merged outcome of a contended run.
struct ContendedResult {
  std::vector<ContendedPoint> points;  ///< user_points order
  std::vector<ReplicationReport> replications;  ///< (point, replication) order
  std::uint64_t total_ops = 0;
  double wall_ms = 0.0;  ///< whole run, including merging

  /// Merged observability outputs (empty/zero-capacity when obs is off).
  /// Stable metrics fold per (point, replication) job in fixed job order,
  /// so they are bit-identical for every thread count.
  obs::Registry registry;
  obs::RunTrace trace;
  runner::PoolObs pool;
};

/// Replication-parallel contended simulation runner — the scale-out path for
/// the paper's shared-machine response curves (Figures 5.6–5.11), where
/// ShardedRunner's independent-universe model deliberately does not apply
/// (architecture in DESIGN.md, "Contended runner").
///
/// Semantics: the unit of parallelism is a *replication* — one
/// sim::Simulation hosting all N users of a sweep point against one shared
/// fsmodel::FileSystemModel (the paper's shared workstation / NFS server),
/// exactly what core::UserSimulator with UsimConfig::num_users == N already
/// computes on the serial path.  Users inside a replication queue against
/// each other (that contention IS the experiment); replications and sweep
/// points share nothing, so the (point x replication) job grid is
/// embarrassingly parallel.
///
/// Execution: a pool of worker threads drains the job grid, each worker
/// reusing one warm Simulation (clock/arena reset per job).  Results land in
/// per-job slots and fold in fixed (point, replication) order, mirroring the
/// ShardedRunner merge contract: every output — pooled RunnerStats,
/// per-replication levels, mean/CI — is bit-identical for any thread count
/// and for any larger run containing the same (seed, users, replication)
/// triples.
class ContendedRunner {
 public:
  explicit ContendedRunner(ContendedConfig config);

  /// Executes the run.  May be called once.
  ContendedResult run();

  const ContendedConfig& config() const { return config_; }

 private:
  struct JobOutcome;

  /// Simulates one replication (all users of one sweep point) on the
  /// worker's Simulation.  `sample`/`op_ring` are the per-job obs sinks;
  /// null means the uninstrumented record hook.
  void run_replication(sim::Simulation& sim, std::size_t users, std::uint64_t seed,
                       JobOutcome& out, obs::SimSample* sample,
                       obs::TraceRing* op_ring) const;

  ContendedConfig config_;
  bool ran_ = false;
};

}  // namespace wlgen::runner
