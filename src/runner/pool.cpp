#include "runner/pool.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wlgen::runner {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

std::size_t resolve_pool_threads(std::size_t requested, std::size_t jobs) {
  std::size_t threads = requested;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  threads = std::min(threads, jobs);
  return std::max<std::size_t>(threads, 1);
}

void drain_pool(std::size_t count, std::size_t threads, const PoolWorkerFactory& make_worker) {
  if (count == 0) return;
  threads = resolve_pool_threads(threads, count);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    // The factory itself may throw (e.g. worker-state allocation failure);
    // that must cancel the run and rethrow on the caller, not escape the
    // thread entry function into std::terminate.
    PoolJob job;
    try {
      job = make_worker();
    } catch (...) {
      cancelled.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      return;
    }
    while (true) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t index = next.fetch_add(1);
      if (index >= count) return;
      try {
        job(index, cancelled);
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wlgen::runner
