#include "runner/pool.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wlgen::runner {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

std::size_t resolve_pool_threads(std::size_t requested, std::size_t jobs) {
  std::size_t threads = requested;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  threads = std::min(threads, jobs);
  return std::max<std::size_t>(threads, 1);
}

std::uint64_t PoolObs::jobs() const {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.jobs;
  return total;
}

std::uint64_t PoolObs::busy_ns() const {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.busy_ns;
  return total;
}

std::uint64_t PoolObs::idle_ns() const {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.idle_ns;
  return total;
}

void drain_pool(std::size_t count, std::size_t threads, const PoolWorkerFactory& make_worker,
                PoolObs* obs) {
  if (count == 0) return;
  threads = resolve_pool_threads(threads, count);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto pool_start = std::chrono::steady_clock::now();
  std::vector<std::vector<PoolJobSpan>> worker_spans;
  if (obs != nullptr) {
    obs->workers.assign(threads, PoolWorkerStat{});
    obs->spans.clear();
    if (obs->record_spans) worker_spans.resize(threads);
  }

  const auto worker = [&](std::size_t worker_index) {
    // The factory itself may throw (e.g. worker-state allocation failure);
    // that must cancel the run and rethrow on the caller, not escape the
    // thread entry function into std::terminate.
    PoolJob job;
    try {
      job = make_worker();
    } catch (...) {
      cancelled.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      return;
    }
    // Observation is hoisted out of the unobserved loop entirely: a null
    // PoolObs* means zero clock reads per job.
    const auto worker_start = std::chrono::steady_clock::now();
    std::uint64_t busy_ns = 0;
    std::uint64_t jobs_run = 0;
    while (true) {
      if (cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t index = next.fetch_add(1);
      if (index >= count) break;
      const auto job_start =
          obs != nullptr ? std::chrono::steady_clock::now() : worker_start;
      try {
        job(index, cancelled);
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        break;
      }
      if (obs != nullptr) {
        const auto job_end = std::chrono::steady_clock::now();
        const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                job_end - job_start)
                                .count();
        busy_ns += static_cast<std::uint64_t>(dur_ns);
        ++jobs_run;
        if (obs->record_spans) {
          PoolJobSpan span;
          span.job = static_cast<std::uint32_t>(index);
          span.worker = static_cast<std::uint32_t>(worker_index);
          span.start_us = std::chrono::duration<double, std::micro>(job_start - pool_start).count();
          span.dur_us = std::chrono::duration<double, std::micro>(job_end - job_start).count();
          worker_spans[worker_index].push_back(span);
        }
      }
    }
    if (obs != nullptr) {
      const auto worker_end = std::chrono::steady_clock::now();
      const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               worker_end - worker_start)
                               .count();
      PoolWorkerStat& stat = obs->workers[worker_index];
      stat.jobs = jobs_run;
      stat.busy_ns = busy_ns;
      stat.idle_ns = static_cast<std::uint64_t>(wall_ns) > busy_ns
                         ? static_cast<std::uint64_t>(wall_ns) - busy_ns
                         : 0;
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }
  if (obs != nullptr && obs->record_spans) {
    for (auto& spans : worker_spans) {
      obs->spans.insert(obs->spans.end(), spans.begin(), spans.end());
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wlgen::runner
