#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace wlgen::runner {

/// Wall-clock milliseconds since `since` — the runners' report timing
/// helper.
double elapsed_ms(std::chrono::steady_clock::time_point since);

/// Executes one job index.  The `cancelled` flag flips when another worker
/// has thrown; long-running jobs should poll it at natural checkpoints
/// (ShardedRunner checks between users) and return early.
using PoolJob = std::function<void(std::size_t index, const std::atomic<bool>& cancelled)>;

/// Invoked once per worker thread before it starts draining jobs; returns
/// that worker's job function.  Worker-local state (a warm sim::Simulation,
/// scratch buffers) lives in the returned closure, so it is built once per
/// thread instead of once per job.
using PoolWorkerFactory = std::function<PoolJob()>;

/// Resolves a thread-count request: 0 means hardware concurrency, and the
/// result is clamped to [1, jobs].
std::size_t resolve_pool_threads(std::size_t requested, std::size_t jobs);

/// Drains jobs 0..count-1 over up to `threads` worker threads (0 = hardware
/// concurrency).  Jobs are claimed from a shared atomic counter, so ordering
/// is nondeterministic — results must be written to per-index slots and
/// folded by the caller in a fixed order (the ShardedRunner merge contract).
/// The first exception cancels the remaining jobs and is rethrown on the
/// calling thread after every worker has joined.  `threads == 1` (or a
/// single job) runs inline with no thread spawned.
///
/// Per-worker utilization accounting: how many jobs the worker executed and
/// how its wall time split between running jobs (busy) and waiting for work
/// or sitting behind slower peers (idle).  This is what makes a flat scaling
/// curve self-diagnosing: saturated workers show busy ≈ wall, a starved pool
/// shows idle dominating.
struct PoolWorkerStat {
  std::uint64_t jobs = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
};

/// One job's wall-clock span (for trace timelines), relative to drain_pool
/// entry.
struct PoolJobSpan {
  std::uint32_t job = 0;
  std::uint32_t worker = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Optional drain_pool observation.  When passed, the pool records one
/// PoolWorkerStat per worker and — when record_spans is set — a PoolJobSpan
/// per job.  Costs two steady_clock reads per job; a null PoolObs* keeps the
/// pool entirely clock-free.  Wall-clock numbers are scheduling-dependent by
/// nature: reporting only, never folded into results.
struct PoolObs {
  bool record_spans = false;           ///< in: also record per-job spans
  std::vector<PoolWorkerStat> workers; ///< out: one entry per worker
  std::vector<PoolJobSpan> spans;      ///< out: per-job spans, worker-major order

  std::uint64_t jobs() const;
  std::uint64_t busy_ns() const;
  std::uint64_t idle_ns() const;
};

/// This is the worker pool behind both runner::ShardedRunner (shards as
/// jobs) and exp::run_experiments (experiments as jobs).  `obs`, when
/// non-null, receives per-worker utilization (and job spans); results are
/// unaffected either way.
void drain_pool(std::size_t count, std::size_t threads, const PoolWorkerFactory& make_worker,
                PoolObs* obs = nullptr);

}  // namespace wlgen::runner
