#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>

namespace wlgen::runner {

/// Wall-clock milliseconds since `since` — the runners' report timing
/// helper.
double elapsed_ms(std::chrono::steady_clock::time_point since);

/// Executes one job index.  The `cancelled` flag flips when another worker
/// has thrown; long-running jobs should poll it at natural checkpoints
/// (ShardedRunner checks between users) and return early.
using PoolJob = std::function<void(std::size_t index, const std::atomic<bool>& cancelled)>;

/// Invoked once per worker thread before it starts draining jobs; returns
/// that worker's job function.  Worker-local state (a warm sim::Simulation,
/// scratch buffers) lives in the returned closure, so it is built once per
/// thread instead of once per job.
using PoolWorkerFactory = std::function<PoolJob()>;

/// Resolves a thread-count request: 0 means hardware concurrency, and the
/// result is clamped to [1, jobs].
std::size_t resolve_pool_threads(std::size_t requested, std::size_t jobs);

/// Drains jobs 0..count-1 over up to `threads` worker threads (0 = hardware
/// concurrency).  Jobs are claimed from a shared atomic counter, so ordering
/// is nondeterministic — results must be written to per-index slots and
/// folded by the caller in a fixed order (the ShardedRunner merge contract).
/// The first exception cancels the remaining jobs and is rethrown on the
/// calling thread after every worker has joined.  `threads == 1` (or a
/// single job) runs inline with no thread spawned.
///
/// This is the worker pool behind both runner::ShardedRunner (shards as
/// jobs) and exp::run_experiments (experiments as jobs).
void drain_pool(std::size_t count, std::size_t threads, const PoolWorkerFactory& make_worker);

}  // namespace wlgen::runner
