#include "runner/partition.h"

#include <stdexcept>

namespace wlgen::runner {

std::vector<UserRange> partition_users(std::size_t num_users, std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("partition_users: need >= 1 shard");
  std::vector<UserRange> out;
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // floor(s*N/K) boundaries; the products stay well inside 64 bits for
    // any population this simulator can hold in memory.
    out.push_back(UserRange{s * num_users / shards, (s + 1) * num_users / shards});
  }
  return out;
}

std::size_t shard_of_user(std::size_t user, std::size_t num_users, std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("shard_of_user: need >= 1 shard");
  if (user >= num_users) throw std::out_of_range("shard_of_user: user out of range");
  // shard s owns user u iff floor(s*N/K) <= u < floor((s+1)*N/K); a local
  // scan from the direct estimate is simplest and exact.  (user < num_users
  // holds here, so num_users >= 1.)
  std::size_t s = shards * user / num_users;
  if (s >= shards) s = shards - 1;
  while (s > 0 && user < s * num_users / shards) --s;
  while (s + 1 < shards && user >= (s + 1) * num_users / shards) ++s;
  return s;
}

}  // namespace wlgen::runner
