#include "runner/stats.h"

namespace wlgen::runner {

RunnerStats::RunnerStats(HistogramSpec spec)
    : response_hist_(spec.lo_us, spec.hi_us, spec.bins) {}

void RunnerStats::add(const core::OpRecord& record) {
  response_us_.add(record.response_us);
  response_hist_.add(record.response_us);
  if (fsmodel::is_data_op(record.op)) {
    access_size_.add(static_cast<double>(record.actual_bytes));
    bytes_moved_ += record.actual_bytes;
  }
  total_response_us_ += record.response_us;
  ++ops_;
}

void RunnerStats::merge(const RunnerStats& other) {
  response_us_.merge(other.response_us_);
  access_size_.merge(other.access_size_);
  response_hist_.merge(other.response_hist_);
  ops_ += other.ops_;
  bytes_moved_ += other.bytes_moved_;
  total_response_us_ += other.total_response_us_;
}

double RunnerStats::response_per_byte_us() const {
  return bytes_moved_ > 0 ? total_response_us_ / static_cast<double>(bytes_moved_) : 0.0;
}

}  // namespace wlgen::runner
