#include "runner/contended_runner.h"

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/presets.h"
#include "fs/filesystem.h"
#include "obs/progress.h"
#include "runner/pool.h"
#include "util/rng.h"

namespace wlgen::runner {

std::uint64_t replication_seed(std::uint64_t root_seed, std::size_t replication) {
  // Chain two util::splitmix64 steps so nearby (root, replication) pairs
  // never collide by simple arithmetic coincidence; the result is a pure
  // function of the two inputs.
  std::uint64_t state = root_seed;
  state = util::splitmix64(state) + static_cast<std::uint64_t>(replication);
  return util::splitmix64(state);
}

/// Everything one replication produces; slots are per-job, so workers never
/// write to shared state.
struct ContendedRunner::JobOutcome {
  explicit JobOutcome(HistogramSpec spec) : stats(spec) {}

  RunnerStats stats;
  double simulated_us = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
};

ContendedRunner::ContendedRunner(ContendedConfig config) : config_(std::move(config)) {
  if (config_.user_points.empty()) {
    throw std::invalid_argument("ContendedRunner: need >= 1 sweep point");
  }
  for (const std::size_t users : config_.user_points) {
    if (users == 0) throw std::invalid_argument("ContendedRunner: sweep points need >= 1 user");
  }
  if (config_.replications == 0) {
    throw std::invalid_argument("ContendedRunner: need >= 1 replication");
  }
  if (config_.profiles.empty()) config_.profiles = core::di86_file_profiles();
  if (config_.population.groups.empty()) config_.population = core::default_population();
  if (!config_.model_factory) config_.model_factory = nfs_model_factory();
  config_.traffic.validate();
  if (config_.traffic.arrivals && config_.usim.windows_per_user != 1) {
    throw std::invalid_argument(
        "ContendedRunner: open-loop arrivals require windows_per_user == 1");
  }
}

void ContendedRunner::run_replication(sim::Simulation& sim, std::size_t users,
                                      std::uint64_t seed, JobOutcome& out,
                                      obs::SimSample* sample, obs::TraceRing* op_ring) const {
  sim.reset();

  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&sim] { return sim.now(); });
  auto model = config_.model_factory(sim);
  if (config_.tune_model) config_.tune_model(*model);
  // Fault events land on the replication's shared model — the server-side
  // disturbance every user of the point experiences together.
  if (config_.traffic.faults.any()) {
    traffic::install_faults(sim, *model, config_.traffic.faults);
  }

  core::FscConfig fsc_config = config_.fsc;
  fsc_config.num_users = users;
  fsc_config.first_user = 0;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, config_.profiles, fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig usim_config = config_.usim;
  usim_config.num_users = users;
  usim_config.first_user = 0;
  usim_config.population_users = users;
  usim_config.seed = seed;
  usim_config.collect_log = false;  // aggregates only; replications do not share a log
  // Open-loop arrivals: each replication deals its own timeline from its
  // replication seed — a pure function of (config, users, seed), so results
  // stay thread-invariant and replications stay independent.
  if (config_.traffic.arrivals) {
    usim_config.arrival_times_us = std::make_shared<const std::vector<std::vector<double>>>(
        traffic::assign_arrivals(*config_.traffic.arrivals, users, seed));
  }
  usim_config.churn = config_.traffic.faults.churns;
  // Same single-observation-point pattern as ShardedRunner::run_user: obs
  // off means the historical record hook, bit for bit.
  if (sample == nullptr) {
    usim_config.on_record = [&out](const core::OpRecord& r) { out.stats.add(r); };
  } else if (op_ring == nullptr) {
    usim_config.on_record = [&out, sample](const core::OpRecord& r) {
      out.stats.add(r);
      sample->ops.add(r);
    };
  } else {
    usim_config.on_record = [&out, sample, op_ring](const core::OpRecord& r) {
      out.stats.add(r);
      sample->ops.add(r);
      obs::record_op(*op_ring, r);
    };
  }

  core::UserSimulator usim(sim, fsys, *model, manifest, config_.population, usim_config);
  usim.run();

  out.simulated_us = sim.now();
  out.ops = usim.total_ops();
  out.sessions = usim.sessions_completed();
  out.events = sim.events_processed();
  if (sample != nullptr) {
    sample->sim_events = out.events;
    sample->heap_high_water = sim.arena_high_water();
    sample->rng_draws = usim.rng_draws();
    sample->sessions = out.sessions;
  }
}

ContendedResult ContendedRunner::run() {
  if (ran_) throw std::logic_error("ContendedRunner::run: may only run once");
  ran_ = true;
  const auto run_start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim

  const std::size_t points = config_.user_points.size();
  const std::size_t reps = config_.replications;
  const std::size_t jobs = points * reps;

  std::vector<JobOutcome> outcomes(jobs, JobOutcome(config_.histogram));
  std::vector<ReplicationReport> reports(jobs);

  // Observability sinks: per-job samples (fold in fixed job order) and
  // per-job trace rings; all empty when obs is off.
  const bool collect = config_.obs.collect();
  const bool trace_on = config_.obs.trace();
  std::vector<obs::SimSample> samples(collect ? jobs : 0);
  std::vector<obs::TraceRing> op_rings;
  std::vector<obs::TraceRing> stage_rings;
  if (trace_on) {
    const std::size_t share = obs::ring_share(config_.obs.trace_events / 2, jobs);
    op_rings.assign(jobs, obs::TraceRing(share));
    stage_rings.assign(jobs, obs::TraceRing(share));
  }
  std::optional<obs::ProgressReporter> progress;
  if (config_.obs.progress) {
    obs::ProgressReporter::Options options;
    options.label = config_.obs.label.empty() ? "contended sweep" : config_.obs.label;
    options.unit = "replications";
    options.total_units = jobs;
    options.interval_ms = config_.obs.progress_interval_ms;
    progress.emplace(std::move(options));
  }
  PoolObs pool_obs;
  pool_obs.record_spans = trace_on;
  PoolObs* const pool_ptr = config_.obs.any() ? &pool_obs : nullptr;

  // Workers drain the (point x replication) grid; each owns one Simulation
  // whose clock and event arena are reset between jobs.  Job j = p * reps + r
  // writes only to slot j, so scheduling never touches shared state.
  drain_pool(jobs, config_.threads, [&]() -> PoolJob {
    auto sim = std::make_shared<sim::Simulation>();
    return [&, sim](std::size_t j, const std::atomic<bool>& cancelled) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t p = j / reps;
      const std::size_t r = j % reps;
      const std::size_t users = config_.user_points[p];
      const std::uint64_t seed = replication_seed(config_.seed, r);
      const auto job_start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
      obs::ScopedStageTrace stage_trace(trace_on ? &stage_rings[j] : nullptr);
      run_replication(*sim, users, seed, outcomes[j], collect ? &samples[j] : nullptr,
                      trace_on ? &op_rings[j] : nullptr);
      reports[j] = {p, r, seed, outcomes[j].ops, outcomes[j].events,
                    outcomes[j].simulated_us, elapsed_ms(job_start)};
      if (progress) progress->advance(1, outcomes[j].events, outcomes[j].simulated_us);
    };
  }, pool_ptr);

  // Deterministic fold: fixed (point, replication) order, independent of
  // which thread produced each slot.
  ContendedResult result;
  result.points.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    ContendedPoint point;
    point.users = config_.user_points[p];
    point.stats = RunnerStats(config_.histogram);
    point.replication_levels.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      const JobOutcome& out = outcomes[p * reps + r];
      point.stats.merge(out.stats);
      point.replication_levels.push_back(out.stats.response_per_byte_us());
      point.total_ops += out.ops;
      point.sessions_completed += out.sessions;
    }
    point.response_per_byte =
        stats::mean_confidence_interval(point.replication_levels, config_.confidence);
    result.total_ops += point.total_ops;
    result.points.push_back(std::move(point));
  }
  result.replications = std::move(reports);

  if (progress) progress->stop();
  if (collect) {
    obs::SimSample merged;
    for (std::size_t j = 0; j < jobs; ++j) merged.merge(samples[j]);
    merged.export_into(result.registry);
    if (config_.traffic.any()) {
      // Pure functions of the config — thread invariant, so stable.
      if (config_.traffic.arrivals) {
        result.registry.add_counter("traffic.arrivals",
                                    config_.traffic.arrivals->sessions * jobs);
      }
      result.registry.add_counter("traffic.slowdown_windows",
                                  config_.traffic.faults.slowdowns.size());
      result.registry.add_counter("traffic.flush_events",
                                  config_.traffic.faults.flush_times_us.size());
      result.registry.add_counter("traffic.churn_windows",
                                  config_.traffic.faults.churns.size());
    }
    if (pool_ptr != nullptr) obs::export_pool(pool_obs, result.registry);
  }
  if (trace_on) {
    for (std::size_t j = 0; j < jobs; ++j) {
      result.trace.ops.append(op_rings[j]);
      result.trace.stages.append(stage_rings[j]);
    }
    result.trace.pool = obs::TraceRing(pool_obs.spans.size());
    obs::pool_spans_into(pool_obs, result.trace.pool);
  }
  result.pool = std::move(pool_obs);

  result.wall_ms = elapsed_ms(run_start);
  return result;
}

}  // namespace wlgen::runner
