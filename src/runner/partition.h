#pragma once

#include <cstddef>
#include <vector>

namespace wlgen::runner {

/// Half-open range of global user indices owned by one shard.
struct UserRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool contains(std::size_t user) const { return user >= begin && user < end; }

  bool operator==(const UserRange&) const = default;
};

/// The deterministic partitioning rule: shard s of K owns the contiguous
/// range [floor(s*N/K), floor((s+1)*N/K)) of the N global user indices.
/// Properties the runner and its tests rely on:
///
///   - ranges are disjoint and cover [0, N) exactly, in index order;
///   - shard sizes differ by at most one user (balanced);
///   - the rule depends only on (N, K) — never on thread scheduling.
///
/// When K > N, K - N shards are empty — interleaved among the others by
/// the floor rule, not trailing.  Empty shards are still returned, so
/// shard indices remain stable.
std::vector<UserRange> partition_users(std::size_t num_users, std::size_t shards);

/// Inverse of the rule: which shard owns `user` under (num_users, shards).
std::size_t shard_of_user(std::size_t user, std::size_t num_users, std::size_t shards);

}  // namespace wlgen::runner
