#include "net/network.h"

#include <stdexcept>

namespace wlgen::net {

Network::Network(sim::Simulation& sim, NetworkParams params, std::string name)
    : params_(params), medium_(sim, std::move(name), 1) {
  if (params_.latency_us < 0.0) throw std::invalid_argument("Network: negative latency");
  if (params_.bandwidth_bytes_per_us <= 0.0) {
    throw std::invalid_argument("Network: bandwidth must be > 0");
  }
}

double Network::transmission_time_us(std::uint64_t payload_bytes) const {
  const double total_bytes =
      static_cast<double>(payload_bytes + params_.per_message_overhead_bytes);
  return total_bytes / params_.bandwidth_bytes_per_us;
}

void Network::append_message_stages(sim::StageChain& chain, std::uint64_t payload_bytes) {
  ++messages_;
  payload_bytes_ += payload_bytes;
  chain.push_back(sim::Stage::make_use(medium_, transmission_time_us(payload_bytes)));
  if (params_.latency_us > 0.0) chain.push_back(sim::Stage::make_delay(params_.latency_us));
}

}  // namespace wlgen::net
