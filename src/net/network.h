#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/stages.h"

namespace wlgen::net {

/// Parameters of a shared-medium LAN in the style of the paper's testbed
/// (10 Mbit/s Ethernet between a SUN 3/50 client and a SUN 4/490 server).
struct NetworkParams {
  /// One-way propagation + protocol latency per message, microseconds.
  double latency_us = 200.0;
  /// Transmission rate in bytes per microsecond (10 Mbit/s ~ 1.25 B/us).
  double bandwidth_bytes_per_us = 1.25;
  /// Fixed per-message framing overhead in bytes (headers, RPC envelope).
  std::uint64_t per_message_overhead_bytes = 160;
};

/// A shared network medium.  Transmission time contends on the medium (a
/// single-capacity resource, like one Ethernet segment); propagation latency
/// does not.  Models append stages for a full message with
/// `append_message_stages`.
class Network {
 public:
  Network(sim::Simulation& sim, NetworkParams params, std::string name = "net");
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Microseconds the medium is held to transmit `payload_bytes`.
  double transmission_time_us(std::uint64_t payload_bytes) const;

  /// Appends [use(medium, transmit), delay(latency)] stages for one message.
  void append_message_stages(sim::StageChain& chain, std::uint64_t payload_bytes);

  /// Total messages transmitted.
  std::uint64_t messages_sent() const { return messages_; }

  /// Total payload bytes transmitted (excludes framing overhead).
  std::uint64_t payload_bytes_sent() const { return payload_bytes_; }

  const NetworkParams& params() const { return params_; }
  sim::Resource& medium() { return medium_; }
  const sim::Resource& medium() const { return medium_; }

 private:
  NetworkParams params_;
  sim::Resource medium_;
  std::uint64_t messages_ = 0;
  std::uint64_t payload_bytes_ = 0;
};

}  // namespace wlgen::net
