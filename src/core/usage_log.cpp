#include "core/usage_log.h"

#include <sstream>
#include <stdexcept>

#include "core/log_sink.h"
#include "util/strings.h"

namespace wlgen::core {

namespace {

fsmodel::FsOpType op_from_string(const std::string& name) {
  using fsmodel::FsOpType;
  for (FsOpType op : {FsOpType::open, FsOpType::close, FsOpType::read, FsOpType::write,
                      FsOpType::creat, FsOpType::unlink, FsOpType::stat, FsOpType::lseek,
                      FsOpType::mkdir, FsOpType::readdir}) {
    if (name == fsmodel::to_string(op)) return op;
  }
  throw std::invalid_argument("UsageLog: unknown op '" + name + "'");
}

FileType file_type_from_int(int v) {
  if (v == 0) return FileType::directory;
  if (v == 1) return FileType::regular;
  throw std::invalid_argument("UsageLog: bad file type");
}

FileOwner owner_from_int(int v) {
  if (v < 0 || v > 2) throw std::invalid_argument("UsageLog: bad owner");
  return static_cast<FileOwner>(v);
}

UseMode use_from_int(int v) {
  if (v < 0 || v > 3) throw std::invalid_argument("UsageLog: bad use mode");
  return static_cast<UseMode>(v);
}

}  // namespace

const char* usage_log_header_line() {
  return "# issue_us\tresponse_us\tuser\tsession\top\treq_bytes\tact_bytes\tfile_id\t"
         "file_size\tftype\towner\tuse\n";
}

void append_record_text(std::ostream& out, const OpRecord& r) {
  out << r.issue_time_us << '\t' << r.response_us << '\t' << r.user << '\t' << r.session
      << '\t' << fsmodel::to_string(r.op) << '\t' << r.requested_bytes << '\t'
      << r.actual_bytes << '\t' << r.file_id << '\t' << r.file_size << '\t'
      << static_cast<int>(r.category.file_type) << '\t' << static_cast<int>(r.category.owner)
      << '\t' << static_cast<int>(r.category.use) << '\n';
}

OpRecord parse_record_line(const std::string& line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 12) {
    throw std::invalid_argument("UsageLog::parse: expected 12 fields, got " +
                                std::to_string(fields.size()));
  }
  OpRecord r;
  const auto f0 = util::parse_double(fields[0]);
  const auto f1 = util::parse_double(fields[1]);
  const auto f2 = util::parse_int(fields[2]);
  const auto f3 = util::parse_int(fields[3]);
  const auto f5 = util::parse_int(fields[5]);
  const auto f6 = util::parse_int(fields[6]);
  const auto f7 = util::parse_int(fields[7]);
  const auto f8 = util::parse_int(fields[8]);
  const auto f9 = util::parse_int(fields[9]);
  const auto f10 = util::parse_int(fields[10]);
  const auto f11 = util::parse_int(fields[11]);
  if (!f0 || !f1 || !f2 || !f3 || !f5 || !f6 || !f7 || !f8 || !f9 || !f10 || !f11) {
    throw std::invalid_argument("UsageLog::parse: malformed line: " + line);
  }
  r.issue_time_us = *f0;
  r.response_us = *f1;
  r.user = static_cast<std::uint32_t>(*f2);
  r.session = static_cast<std::uint32_t>(*f3);
  r.op = op_from_string(fields[4]);
  r.requested_bytes = static_cast<std::uint64_t>(*f5);
  r.actual_bytes = static_cast<std::uint64_t>(*f6);
  r.file_id = static_cast<std::uint64_t>(*f7);
  r.file_size = static_cast<std::uint64_t>(*f8);
  r.category.file_type = file_type_from_int(static_cast<int>(*f9));
  r.category.owner = owner_from_int(static_cast<int>(*f10));
  r.category.use = use_from_int(static_cast<int>(*f11));
  return r;
}

std::string UsageLog::serialize() const {
  std::ostringstream out;
  MemoryLogReader reader(*this);
  write_log_text(reader, out);
  return out.str();
}

UsageLog UsageLog::parse(const std::string& text) {
  MemorySink sink;
  parse_log_text(text, sink);
  return sink.take_log();
}

}  // namespace wlgen::core
