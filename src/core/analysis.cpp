#include "core/analysis.h"

#include <algorithm>

namespace wlgen::core {

UsageAnalyzer::UsageAnalyzer(LogReader& reader) { consume(reader); }

UsageAnalyzer::UsageAnalyzer(const UsageLog& log) {
  MemoryLogReader reader(log);
  consume(reader);
}

void UsageAnalyzer::consume(LogReader& reader) {
  struct SessionAccumulator {
    double start = 0.0;
    double end = 0.0;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    bool first = true;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, SessionAccumulator> acc;

  OpRecord r;
  while (reader.next(r)) {
    ++op_count_;
    response_.add(r.response_us);
    response_sum_us_ += r.response_us;
    auto& op_stats = per_op_[r.op];
    op_stats.response_us.add(r.response_us);
    if (fsmodel::is_data_op(r.op)) {
      access_size_.add(static_cast<double>(r.actual_bytes));
      data_response_.add(r.response_us);
      op_stats.access_size.add(static_cast<double>(r.actual_bytes));
      data_bytes_ += static_cast<double>(r.actual_bytes);
    }
    const auto key = std::make_pair(r.user, r.session);
    auto& a = acc[key];
    if (a.first) {
      a.start = r.issue_time_us;
      a.first = false;
    }
    a.start = std::min(a.start, r.issue_time_us);
    a.end = std::max(a.end, r.issue_time_us + r.response_us);
    ++a.ops;
    if (fsmodel::is_data_op(r.op)) {
      a.bytes += r.actual_bytes;
      auto& touch = touches_[key][r.file_id];
      touch.bytes += r.actual_bytes;
      touch.file_size = std::max(touch.file_size, r.file_size);
      touch.category = r.category;
    } else if (r.op == fsmodel::FsOpType::open || r.op == fsmodel::FsOpType::creat) {
      // Opening counts as referencing the file even if no byte moves.
      auto& touch = touches_[key][r.file_id];
      touch.file_size = std::max(touch.file_size, r.file_size);
      touch.category = r.category;
    }
  }

  sessions_.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SessionSummary s;
    s.user = key.first;
    s.session = key.second;
    s.start_us = a.start;
    s.end_us = a.end;
    s.ops = a.ops;
    s.bytes_accessed = a.bytes;
    const auto touched = touches_.find(key);
    if (touched != touches_.end()) {
      s.files_referenced = touched->second.size();
      for (const auto& [file, t] : touched->second) {
        s.total_file_bytes += static_cast<double>(t.file_size);
      }
      if (s.files_referenced > 0) {
        s.mean_file_size = s.total_file_bytes / static_cast<double>(s.files_referenced);
      }
      if (s.total_file_bytes > 0.0) {
        s.access_per_byte = static_cast<double>(s.bytes_accessed) / s.total_file_bytes;
      }
    }
    sessions_.push_back(s);
  }
}

double UsageAnalyzer::response_per_byte_us() const {
  return data_bytes_ > 0.0 ? response_sum_us_ / data_bytes_ : 0.0;
}

namespace {

stats::Histogram histogram_of(const std::vector<double>& values, std::size_t bins) {
  if (values.empty()) return stats::Histogram(0.0, 1.0, bins);
  return stats::Histogram::from_data(values, bins);
}

}  // namespace

stats::Histogram UsageAnalyzer::session_access_per_byte_histogram(std::size_t bins) const {
  std::vector<double> values;
  values.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    if (s.files_referenced > 0) values.push_back(s.access_per_byte);
  }
  return histogram_of(values, bins);
}

stats::Histogram UsageAnalyzer::session_file_size_histogram(std::size_t bins) const {
  std::vector<double> values;
  values.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    if (s.files_referenced > 0) values.push_back(s.mean_file_size);
  }
  return histogram_of(values, bins);
}

stats::Histogram UsageAnalyzer::session_files_histogram(std::size_t bins) const {
  std::vector<double> values;
  values.reserve(sessions_.size());
  for (const auto& s : sessions_) values.push_back(static_cast<double>(s.files_referenced));
  return histogram_of(values, bins);
}

std::map<std::string, CategoryUsage> UsageAnalyzer::per_category_usage() const {
  std::map<std::string, CategoryUsage> out;
  std::map<std::string, std::size_t> sessions_touching;
  for (const auto& [key, files] : touches_) {
    std::map<std::string, std::size_t> files_in_category;
    for (const auto& [file, t] : files) {
      const std::string label = t.category.label();
      auto& usage = out[label];
      if (t.file_size > 0) {
        usage.access_per_byte.add(static_cast<double>(t.bytes) /
                                  static_cast<double>(t.file_size));
        usage.file_size.add(static_cast<double>(t.file_size));
      }
      ++files_in_category[label];
    }
    for (const auto& [label, count] : files_in_category) {
      out[label].files_per_session.add(static_cast<double>(count));
      ++sessions_touching[label];
    }
  }
  const double total_sessions = static_cast<double>(touches_.size());
  if (total_sessions > 0.0) {
    for (auto& [label, usage] : out) {
      usage.fraction_sessions_touching =
          static_cast<double>(sessions_touching[label]) / total_sessions;
    }
  }
  return out;
}

}  // namespace wlgen::core
