#pragma once

#include <map>
#include <vector>

#include "core/log_sink.h"
#include "core/usage_log.h"
#include "core/workload.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace wlgen::core {

/// Per-login-session aggregates — the quantities whose distributions the
/// paper plots in Figures 5.3–5.5 ("average access-per-byte, average file
/// size and average number of files referenced").
struct SessionSummary {
  std::uint32_t user = 0;
  std::uint32_t session = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t bytes_accessed = 0;      ///< actual bytes over read+write calls
  std::size_t files_referenced = 0;      ///< distinct files touched
  double total_file_bytes = 0.0;         ///< sum of referenced files' sizes
  double mean_file_size = 0.0;           ///< total_file_bytes / files_referenced
  double access_per_byte = 0.0;          ///< bytes_accessed / total_file_bytes
};

/// Per-op-type statistics (Table 5.3's access size and response time).
struct OpTypeStats {
  stats::RunningSummary access_size;  ///< actual bytes (data ops only)
  stats::RunningSummary response_us;
};

/// Per-category usage re-derivation (cross-check against Table 5.2).
struct CategoryUsage {
  stats::RunningSummary access_per_byte;    ///< per touched file
  stats::RunningSummary file_size;          ///< per touched file
  stats::RunningSummary files_per_session;  ///< over sessions touching the category
  double fraction_sessions_touching = 0.0;
};

/// The paper's "Usage Analyzer ... for users to analyze the results and
/// display them graphically" (section 5.1): turns a usage-log stream into
/// session summaries, per-syscall statistics and the figure histograms.
///
/// Consumes a LogReader in ONE streaming pass — a spilled million-user run
/// analyzes in bounded memory (per-session accumulators, never the record
/// vector).  Each accumulator sees records in the same forward order a
/// per-method scan of a materialized log used to, so every statistic is
/// bit-identical with the pre-streaming implementation.
class UsageAnalyzer {
 public:
  explicit UsageAnalyzer(LogReader& reader);

  /// Convenience over a materialized log (wraps a MemoryLogReader).
  explicit UsageAnalyzer(const UsageLog& log);

  const std::vector<SessionSummary>& sessions() const { return sessions_; }

  /// Actual bytes moved per read/write call (Table 5.3 "access size").
  const stats::RunningSummary& access_size_stats() const { return access_size_; }

  /// Response time over every logged call (Table 5.3 "response time").
  const stats::RunningSummary& response_stats() const { return response_; }

  /// Response time over read/write calls only.
  const stats::RunningSummary& data_response_stats() const { return data_response_; }

  /// Total response time across *every* file-access call divided by the
  /// bytes moved by read/write calls — the "average response time per byte"
  /// y-axis of Figures 5.6–5.12.  Opens, closes, creats and unlinks are part
  /// of the cost of accessing those bytes (and under contention they absorb
  /// most of the queueing), so they belong in the numerator.
  double response_per_byte_us() const;

  /// Per-op-type breakdown.
  const std::map<fsmodel::FsOpType, OpTypeStats>& per_op_stats() const { return per_op_; }

  /// Distribution of per-session access-per-byte (Figure 5.3 input).
  stats::Histogram session_access_per_byte_histogram(std::size_t bins = 30) const;

  /// Distribution of per-session mean file size (Figure 5.4 input).
  stats::Histogram session_file_size_histogram(std::size_t bins = 30) const;

  /// Distribution of per-session files referenced (Figure 5.5 input).
  stats::Histogram session_files_histogram(std::size_t bins = 30) const;

  /// Per-category usage aggregates keyed by category label.
  std::map<std::string, CategoryUsage> per_category_usage() const;

  std::size_t op_count() const { return op_count_; }

 private:
  struct FileTouch {
    std::uint64_t bytes = 0;
    std::uint64_t file_size = 0;
    FileCategory category;
  };

  void consume(LogReader& reader);

  std::vector<SessionSummary> sessions_;
  // (user, session) -> file id -> touch record; kept for category breakdowns.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::map<std::uint64_t, FileTouch>> touches_;
  std::size_t op_count_ = 0;
  stats::RunningSummary access_size_;
  stats::RunningSummary response_;
  stats::RunningSummary data_response_;
  std::map<fsmodel::FsOpType, OpTypeStats> per_op_;
  double response_sum_us_ = 0.0;
  double data_bytes_ = 0.0;
};

}  // namespace wlgen::core
