#include "core/fsc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlgen::core {

const std::vector<std::size_t> CreatedFileSystem::kEmptyPool = {};

std::string CreatedFileSystem::system_dir() { return "/system"; }

std::string CreatedFileSystem::user_dir(std::size_t user) {
  return "/users/u" + std::to_string(user);
}

void CreatedFileSystem::add_file(CreatedFile file) {
  const std::size_t index = files_.size();
  const PoolKey key{file.category.index(), file.owner_user};
  files_.push_back(std::move(file));
  pools_[key].push_back(index);
}

const std::vector<std::size_t>& CreatedFileSystem::pool(const FileCategory& category,
                                                        std::size_t user) const {
  const std::size_t owner =
      category.owner == FileOwner::user ? user : CreatedFile::kSystemOwner;
  const auto it = pools_.find(PoolKey{category.index(), owner});
  return it == pools_.end() ? kEmptyPool : it->second;
}

FileSystemCreator::FileSystemCreator(fs::SimulatedFileSystem& fsys,
                                     std::vector<FileCategoryProfile> profiles, FscConfig config)
    : fsys_(fsys), profiles_(std::move(profiles)), config_(config) {
  if (profiles_.empty()) throw std::invalid_argument("FileSystemCreator: no category profiles");
  if (config_.num_users == 0) throw std::invalid_argument("FileSystemCreator: need >= 1 user");
}

std::uint64_t FileSystemCreator::sample_size(const FileCategoryProfile& profile,
                                             util::RngStream& rng) {
  if (!profile.size_dist) throw std::invalid_argument("FileSystemCreator: profile missing size dist");
  const double v = profile.size_dist->sample(rng);
  return static_cast<std::uint64_t>(std::max(1.0, std::llround(v) * 1.0));
}

namespace {

std::string category_file_name(const FileCategory& category, std::size_t ordinal) {
  std::string name = category.label();
  for (auto& c : name) {
    if (c == '/' || c == '-') c = '_';
  }
  std::string lowered;
  for (char c : name) lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lowered + "_" + std::to_string(ordinal);
}

void require_ok(fs::FsStatus status, const std::string& what) {
  if (status != fs::FsStatus::ok) {
    throw std::runtime_error("FileSystemCreator: " + what + " failed: " +
                             fs::to_string(status));
  }
}

}  // namespace

void FileSystemCreator::create_regular(CreatedFileSystem& out,
                                       const FileCategoryProfile& profile, const std::string& dir,
                                       std::size_t owner_user, std::size_t ordinal,
                                       util::RngStream& rng) {
  const std::string path = dir + "/" + category_file_name(profile.category, ordinal);
  const std::uint64_t size = sample_size(profile, rng);
  const auto fd = fsys_.creat(path);
  if (!fd.ok()) {
    throw std::runtime_error("FileSystemCreator: creat(" + path + ") failed: " +
                             fs::to_string(fd.status()));
  }
  const auto wrote = fsys_.write(fd.value(), size);
  if (!wrote.ok()) {
    throw std::runtime_error("FileSystemCreator: populate(" + path + ") failed: " +
                             fs::to_string(wrote.status()));
  }
  require_ok(fsys_.close(fd.value()), "close(" + path + ")");

  CreatedFile file;
  file.path = path;
  file.category = profile.category;
  file.size = size;
  file.owner_user = owner_user;
  file.inode = fsys_.stat(path).value().inode;
  out.add_file(std::move(file));
}

CreatedFileSystem FileSystemCreator::create() {
  CreatedFileSystem out;
  out.set_user_count(config_.first_user + config_.num_users);

  // The shared system tree and every user tree draw from their own streams
  // ("fsc/system", "fsc/user/<k>"), so building users [first_user,
  // first_user + num_users) yields bit-identical trees to a full build —
  // the FSC side of the runner's deterministic user partitioning.
  util::RngStream system_rng(config_.seed, "fsc/system");

  require_ok(fsys_.mkdir_recursive(CreatedFileSystem::system_dir()), "mkdir /system");
  require_ok(fsys_.mkdir_recursive("/users"), "mkdir /users");

  // Partition the regular-file profiles by owner.  Directory-category
  // profiles are realised by the layout's real directories, whose sizes
  // emerge from their entry counts (see fs::SimulatedFileSystem).
  std::vector<const FileCategoryProfile*> user_profiles;
  std::vector<const FileCategoryProfile*> notes_profiles;
  std::vector<const FileCategoryProfile*> other_profiles;
  for (const auto& p : profiles_) {
    if (p.category.file_type != FileType::regular) continue;
    switch (p.category.owner) {
      case FileOwner::user: user_profiles.push_back(&p); break;
      case FileOwner::notes: notes_profiles.push_back(&p); break;
      case FileOwner::other: other_profiles.push_back(&p); break;
    }
  }

  // System subtrees: the NOTES and OTHER categories each get half of the
  // configured system subdirectories (at least one apiece).
  const std::size_t notes_dirs = std::max<std::size_t>(1, config_.system_subdirs / 2);
  const std::size_t other_dirs =
      std::max<std::size_t>(1, config_.system_subdirs - notes_dirs);
  std::vector<std::string> notes_paths, other_paths;
  for (std::size_t i = 0; i < notes_dirs; ++i) {
    const std::string dir = CreatedFileSystem::system_dir() + "/notes" + std::to_string(i);
    require_ok(fsys_.mkdir_recursive(dir), "mkdir " + dir);
    notes_paths.push_back(dir);
  }
  for (std::size_t i = 0; i < other_dirs; ++i) {
    const std::string dir = CreatedFileSystem::system_dir() + "/other" + std::to_string(i);
    require_ok(fsys_.mkdir_recursive(dir), "mkdir " + dir);
    other_paths.push_back(dir);
  }

  const auto create_system = [&](const std::vector<const FileCategoryProfile*>& profiles,
                                 const std::vector<std::string>& dirs, std::size_t count) {
    if (profiles.empty() || dirs.empty()) return;
    std::vector<double> weights;
    for (const auto* p : profiles) weights.push_back(std::max(p->fraction_of_files, 1e-9));
    std::vector<std::size_t> ordinal(profiles.size(), 0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t pick = system_rng.categorical(weights);
      const auto& dir = dirs[static_cast<std::size_t>(
          system_rng.uniform_int(0, static_cast<std::int64_t>(dirs.size()) - 1))];
      create_regular(out, *profiles[pick], dir, CreatedFile::kSystemOwner, ordinal[pick]++,
                     system_rng);
    }
  };
  // Split the system file budget by the relative NOTES/OTHER fractions.
  double notes_frac = 0.0, other_frac = 0.0;
  for (const auto* p : notes_profiles) notes_frac += p->fraction_of_files;
  for (const auto* p : other_profiles) other_frac += p->fraction_of_files;
  const double system_total = std::max(notes_frac + other_frac, 1e-9);
  const std::size_t notes_count = static_cast<std::size_t>(
      std::llround(static_cast<double>(config_.system_files) * notes_frac / system_total));
  create_system(notes_profiles, notes_paths, notes_count);
  create_system(other_profiles, other_paths, config_.system_files - notes_count);

  // Per-user home + subdirectories and files, each user from a private
  // stream keyed by the *global* user index.
  const std::size_t user_end = config_.first_user + config_.num_users;
  for (std::size_t user = config_.first_user; user < user_end; ++user) {
    util::RngStream user_rng(config_.seed, "fsc/user/" + std::to_string(user));
    const std::string home = CreatedFileSystem::user_dir(user);
    require_ok(fsys_.mkdir_recursive(home), "mkdir " + home);
    std::vector<std::string> dirs = {home};
    for (std::size_t i = 0; i < config_.user_subdirs; ++i) {
      const std::string dir = home + "/d" + std::to_string(i);
      require_ok(fsys_.mkdir_recursive(dir), "mkdir " + dir);
      dirs.push_back(dir);
    }
    if (user_profiles.empty()) continue;
    std::vector<double> weights;
    for (const auto* p : user_profiles) weights.push_back(std::max(p->fraction_of_files, 1e-9));
    std::vector<std::size_t> ordinal(user_profiles.size(), 0);
    for (std::size_t i = 0; i < config_.files_per_user; ++i) {
      const std::size_t pick = user_rng.categorical(weights);
      const auto& dir = dirs[static_cast<std::size_t>(
          user_rng.uniform_int(0, static_cast<std::int64_t>(dirs.size()) - 1))];
      create_regular(out, *user_profiles[pick], dir, user, ordinal[pick]++, user_rng);
    }
  }

  // Register the real directories under their DIR categories so the USIM can
  // reference them: the user's own directories (DIR/USER) and the system and
  // users directories (DIR/OTHER).
  const auto add_dir = [&](const std::string& path, FileOwner owner, std::size_t owner_user) {
    const auto st = fsys_.stat(path);
    if (!st.ok()) return;
    CreatedFile file;
    file.path = path;
    file.category = FileCategory{FileType::directory, owner, UseMode::read_only};
    file.size = st.value().size;
    file.inode = st.value().inode;
    file.owner_user = owner_user;
    out.add_file(std::move(file));
  };
  add_dir(CreatedFileSystem::system_dir(), FileOwner::other, CreatedFile::kSystemOwner);
  add_dir("/users", FileOwner::other, CreatedFile::kSystemOwner);
  for (const auto& dir : notes_paths) add_dir(dir, FileOwner::other, CreatedFile::kSystemOwner);
  for (const auto& dir : other_paths) add_dir(dir, FileOwner::other, CreatedFile::kSystemOwner);
  for (std::size_t user = config_.first_user; user < user_end; ++user) {
    add_dir(CreatedFileSystem::user_dir(user), FileOwner::user, user);
    for (std::size_t i = 0; i < config_.user_subdirs; ++i) {
      add_dir(CreatedFileSystem::user_dir(user) + "/d" + std::to_string(i), FileOwner::user,
              user);
    }
  }
  return out;
}

}  // namespace wlgen::core
