#include "core/ext.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wlgen::core {

const char* to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::sequential: return "sequential";
    case AccessPattern::uniform_random: return "uniform_random";
    case AccessPattern::zipf_block: return "zipf_block";
  }
  return "?";
}

std::uint64_t choose_offset(AccessPattern pattern, std::uint64_t file_size,
                            std::uint64_t access_size, util::RngStream& rng) {
  if (file_size == 0) return 0;
  const std::uint64_t max_start = access_size >= file_size ? 0 : file_size - access_size;
  switch (pattern) {
    case AccessPattern::sequential:
      throw std::logic_error("choose_offset: sequential offsets come from the descriptor");
    case AccessPattern::uniform_random:
      return static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(max_start)));
    case AccessPattern::zipf_block: {
      // Log-uniform block choice: P(block <= b) ~ log(b)/log(N), strongly
      // favouring the head of the file, a standard stand-in for Zipf access
      // frequency over indexed records.
      const double n = static_cast<double>(max_start + 1);
      const double pick = std::exp(rng.uniform01() * std::log(n)) - 1.0;
      return std::min<std::uint64_t>(static_cast<std::uint64_t>(pick), max_start);
    }
  }
  return 0;
}

std::size_t IndependentOpStream::choose(std::size_t count, std::size_t,
                                        util::RngStream& rng) const {
  if (count == 0) throw std::invalid_argument("OpStreamPolicy::choose: no items");
  return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
}

std::unique_ptr<OpStreamPolicy> IndependentOpStream::clone() const {
  return std::make_unique<IndependentOpStream>(*this);
}

MarkovOpStream::MarkovOpStream(double persistence) : persistence_(persistence) {
  if (persistence < 0.0 || persistence >= 1.0) {
    throw std::invalid_argument("MarkovOpStream: persistence must be in [0, 1)");
  }
}

std::size_t MarkovOpStream::choose(std::size_t count, std::size_t previous,
                                   util::RngStream& rng) const {
  if (count == 0) throw std::invalid_argument("OpStreamPolicy::choose: no items");
  if (previous != kNone && previous < count && rng.bernoulli(persistence_)) return previous;
  return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
}

std::string MarkovOpStream::name() const {
  return "markov(p=" + std::to_string(persistence_) + ")";
}

std::unique_ptr<OpStreamPolicy> MarkovOpStream::clone() const {
  return std::make_unique<MarkovOpStream>(*this);
}

DiurnalModulator::DiurnalModulator(double period_us, double busy_multiplier,
                                   double idle_multiplier)
    : period_us_(period_us), busy_(busy_multiplier), idle_(idle_multiplier) {
  if (period_us <= 0.0) throw std::invalid_argument("DiurnalModulator: period must be > 0");
  if (busy_multiplier <= 0.0 || idle_multiplier <= 0.0) {
    throw std::invalid_argument("DiurnalModulator: multipliers must be > 0");
  }
}

double DiurnalModulator::multiplier(double now_us) const {
  const double phase = 2.0 * std::numbers::pi * (now_us / period_us_);
  const double mid = 0.5 * (busy_ + idle_);
  const double amplitude = 0.5 * (idle_ - busy_);
  return mid + amplitude * std::cos(phase);
}

}  // namespace wlgen::core
