#include "core/usim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/log_sink.h"
#include "dist/basic.h"

namespace wlgen::core {

namespace {

/// Rounds a sampled continuous value to a count >= 1.
std::uint64_t at_least_one(double sampled) {
  const long long v = std::llround(sampled);
  return v < 1 ? 1 : static_cast<std::uint64_t>(v);
}

}  // namespace

/// One file's worth of planned work inside a session.
struct UserSimulator::WorkItem {
  enum class State { need_creat, need_stat, need_open, active, need_close, need_unlink, done };

  FileCategory category;
  std::string path;
  std::uint64_t inode = 0;
  std::uint64_t file_size = 0;     ///< logical size as the item progresses
  std::uint64_t bytes_target = 0;  ///< accesses-per-byte * file size
  std::uint64_t bytes_done = 0;
  std::uint64_t write_target = 0;  ///< bytes to materialise for NEW/TEMP
  std::uint64_t bytes_written = 0;
  fs::Fd fd = -1;
  State state = State::need_open;
};

/// An independent login-session driver; a user has `windows_per_user` slots
/// (one, in the paper's model).
struct UserSimulator::SessionSlot {
  std::size_t slot_index = 0;
  std::uint32_t session_ordinal = 0;  ///< global session number for this user
  std::size_t sessions_done = 0;      ///< sessions completed in this slot
  std::vector<WorkItem> items;
  std::size_t previous_item = OpStreamPolicy::kNone;
  std::size_t ops_this_session = 0;
};

/// Per-(user, characteristic) prefetch buffer over Distribution::sample_n —
/// the batched draw pipeline (see UsimConfig::draw_batch).  With capacity 1
/// every next() is exactly one scalar sample() at the historical point in
/// the user's stream; larger capacities refill a whole block at once so the
/// distribution's batch kernel amortises dispatch and table lookups.
struct UserSimulator::DrawBuffer {
  const dist::Distribution* dist = nullptr;
  std::size_t capacity = 1;
  std::vector<double> values;
  std::size_t pos = 0;

  DrawBuffer() = default;
  DrawBuffer(const dist::Distribution* d, std::size_t cap) : dist(d), capacity(cap) {}

  double next(util::RngStream& rng) {
    if (pos == values.size()) {
      values.resize(capacity);
      dist->sample_n(rng, values.data(), capacity);
      pos = 0;
    }
    return values[pos++];
  }
};

struct UserSimulator::UserState {
  /// The three per-category characteristics of one UsageProfile, buffered.
  struct ProfileBuffers {
    DrawBuffer files_per_session;
    DrawBuffer file_size;
    DrawBuffer accesses_per_byte;
  };

  std::size_t index = 0;  ///< global user index (first_user + local offset)
  const UserType* type = nullptr;
  util::RngStream rng;
  std::vector<SessionSlot> slots;
  std::uint32_t next_session_ordinal = 0;
  std::uint64_t new_file_counter = 0;

  /// Open-system mode: this user's session arrival times (owned by
  /// UsimConfig::arrival_times_us) and the next unconsumed index.
  const std::vector<double>* arrivals = nullptr;
  std::size_t next_arrival = 0;

  DrawBuffer think_time;
  DrawBuffer access_size;
  DrawBuffer session_gap;
  std::vector<ProfileBuffers> profiles;  ///< parallel to type->usage

  UserState(std::uint64_t seed, std::size_t idx)
      : index(idx), rng(seed, "usim/user/" + std::to_string(idx)) {}

  void bind_buffers(const UsimConfig& config) {
    const std::size_t batch = config.draw_batch;
    think_time = DrawBuffer(type->think_time_us.get(), batch);
    access_size = DrawBuffer(type->access_size_bytes.get(), batch);
    session_gap = DrawBuffer(config.inter_session_gap_us.get(), batch);
    profiles.clear();
    profiles.reserve(type->usage.size());
    for (const auto& profile : type->usage) {
      ProfileBuffers buffers;
      buffers.files_per_session = DrawBuffer(profile.files_per_session.get(), batch);
      buffers.file_size = DrawBuffer(profile.file_size.get(), batch);
      buffers.accesses_per_byte = DrawBuffer(profile.accesses_per_byte.get(), batch);
      profiles.push_back(std::move(buffers));
    }
  }
};

UserSimulator::UserSimulator(sim::Simulation& sim, fs::SimulatedFileSystem& fsys,
                             fsmodel::FileSystemModel& model, const CreatedFileSystem& manifest,
                             Population population, UsimConfig config)
    : sim_(sim),
      fsys_(fsys),
      model_(model),
      manifest_(manifest),
      population_(std::move(population)),
      config_(std::move(config)) {
  population_.validate_and_normalize();
  if (config_.num_users == 0) throw std::invalid_argument("UserSimulator: need >= 1 user");
  if (config_.sessions_per_user == 0) {
    throw std::invalid_argument("UserSimulator: need >= 1 session per user");
  }
  if (config_.windows_per_user == 0) {
    throw std::invalid_argument("UserSimulator: need >= 1 window per user");
  }
  if (config_.client_machines == 0) {
    throw std::invalid_argument("UserSimulator: need >= 1 client machine");
  }
  if (config_.draw_batch == 0) {
    throw std::invalid_argument("UserSimulator: draw_batch must be >= 1");
  }
  if (manifest_.user_count() < config_.first_user + config_.num_users) {
    throw std::invalid_argument(
        "UserSimulator: the created file system has fewer user directories than the "
        "configured user range");
  }
  if (config_.population_users == 0) config_.population_users = config_.num_users;
  if (config_.population_users < config_.first_user + config_.num_users) {
    throw std::invalid_argument(
        "UserSimulator: population_users must cover the configured user range");
  }
  if (!config_.inter_session_gap_us) {
    config_.inter_session_gap_us = make_dist<dist::ConstantDistribution>(1000.0);
  }
  if (config_.markov_persistence >= 0.0) {
    policy_ = std::make_unique<MarkovOpStream>(config_.markov_persistence);
  } else {
    policy_ = std::make_unique<IndependentOpStream>();
  }
  if (!config_.think_modulator) {
    config_.think_modulator = std::make_shared<const ConstantModulator>();
  }
  if (config_.arrival_times_us) {
    if (config_.windows_per_user != 1) {
      throw std::invalid_argument(
          "UserSimulator: open-loop arrivals require windows_per_user == 1");
    }
    if (config_.arrival_times_us->size() < config_.first_user + config_.num_users) {
      throw std::invalid_argument(
          "UserSimulator: arrival_times_us must cover the configured user range");
    }
  }

  for (std::size_t u = 0; u < config_.num_users; ++u) {
    const std::size_t global = config_.first_user + u;
    auto user = std::make_unique<UserState>(config_.seed, global);
    user->type = &population_.type_for_user(global, config_.population_users);
    user->bind_buffers(config_);
    user->slots.resize(config_.windows_per_user);
    for (std::size_t s = 0; s < config_.windows_per_user; ++s) user->slots[s].slot_index = s;
    if (config_.arrival_times_us) user->arrivals = &(*config_.arrival_times_us)[global];
    users_.push_back(std::move(user));
  }
}

UserSimulator::~UserSimulator() = default;

double UserSimulator::sample_think(UserState& user) {
  const double base = user.think_time.next(user.rng);
  const double scaled = base * config_.think_modulator->multiplier(sim_.now());
  return scaled < 0.0 ? 0.0 : scaled;
}

std::string UserSimulator::new_file_path(UserState& user, UseMode use) {
  const char* stem = use == UseMode::temp ? "tmp" : "new";
  // Scatter new files across the user's directories so no single directory
  // balloons over hundreds of sessions.
  std::string dir = CreatedFileSystem::user_dir(user.index);
  const FileCategory user_dirs{FileType::directory, FileOwner::user, UseMode::read_only};
  const auto& pool = manifest_.pool(user_dirs, user.index);
  if (!pool.empty()) {
    const std::size_t pick = static_cast<std::size_t>(
        user.rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    dir = manifest_.files()[pool[pick]].path;
  }
  return dir + "/" + stem + "_" + std::to_string(user.new_file_counter++);
}

bool UserSimulator::plan_items(UserState& user, SessionSlot& slot) {
  slot.items.clear();
  slot.previous_item = OpStreamPolicy::kNone;
  slot.ops_this_session = 0;

  for (std::size_t p = 0; p < user.type->usage.size(); ++p) {
    const auto& profile = user.type->usage[p];
    UserState::ProfileBuffers& draws = user.profiles[p];
    if (!user.rng.bernoulli(profile.prob_accessing_category)) continue;
    const std::uint64_t files = at_least_one(draws.files_per_session.next(user.rng));
    const auto& pool = manifest_.pool(profile.category, user.index);
    for (std::uint64_t f = 0; f < files; ++f) {
      WorkItem item;
      item.category = profile.category;
      const bool creates_file =
          profile.category.use == UseMode::new_file || profile.category.use == UseMode::temp;
      if (creates_file) {
        item.path = new_file_path(user, profile.category.use);
        item.write_target = at_least_one(draws.file_size.next(user.rng));
        item.file_size = 0;
        item.bytes_target =
            at_least_one(draws.accesses_per_byte.next(user.rng) *
                         static_cast<double>(item.write_target));
        item.state = WorkItem::State::need_creat;
      } else if (!pool.empty()) {
        std::size_t pick;
        if (config_.size_bias_beta != 0.0) {
          // Size-biased selection: weight ~ size^beta.
          std::vector<double> weights;
          weights.reserve(pool.size());
          for (std::size_t idx : pool) {
            weights.push_back(std::pow(
                static_cast<double>(std::max<std::uint64_t>(1, manifest_.files()[idx].size)),
                config_.size_bias_beta));
          }
          pick = user.rng.categorical(weights);
        } else {
          pick = static_cast<std::size_t>(
              user.rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
        }
        const CreatedFile& file = manifest_.files()[pool[pick]];
        item.path = file.path;
        // Re-stat: earlier sessions may have grown/shrunk the file.
        const auto st = fsys_.stat(file.path);
        if (!st.ok()) continue;  // raced with nothing in this design, but be safe
        item.inode = st.value().inode;
        item.file_size = st.value().size;
        if (item.file_size == 0) continue;
        item.bytes_target =
            at_least_one(draws.accesses_per_byte.next(user.rng) *
                         static_cast<double>(item.file_size));
        item.state = user.rng.bernoulli(config_.stat_before_open_prob)
                         ? WorkItem::State::need_stat
                         : WorkItem::State::need_open;
      } else {
        // No pre-created file to touch (tiny FSC configuration): materialise
        // one, as the paper's generator also "only creates those files which
        // may be accessed".
        item.path = new_file_path(user, UseMode::new_file);
        item.write_target = at_least_one(draws.file_size.next(user.rng));
        item.file_size = 0;
        item.bytes_target =
            at_least_one(draws.accesses_per_byte.next(user.rng) *
                         static_cast<double>(item.write_target));
        item.state = WorkItem::State::need_creat;
      }
      slot.items.push_back(std::move(item));
    }
  }
  return !slot.items.empty();
}

void UserSimulator::start_session(UserState& user, SessionSlot& slot) {
  slot.session_ordinal = user.next_session_ordinal++;
  // Degenerate draws can skip every category; such a login does nothing.
  if (!plan_items(user, slot)) {
    finish_session(user, slot);
    return;
  }
  schedule_next_op(user, slot);
}

void UserSimulator::schedule_next_op(UserState& user, SessionSlot& slot) {
  sim_.schedule(sample_think(user), [this, &user, &slot]() { issue_next_op(user, slot); });
}

void UserSimulator::finish_session(UserState& user, SessionSlot& slot) {
  ++sessions_completed_;
  ++slot.sessions_done;
  slot.items.clear();
  // Closed loop: a fixed per-slot session budget.  Open loop: the user's
  // arrival list is the budget (schedule_session_start stops at its end).
  if (user.arrivals == nullptr && slot.sessions_done >= config_.sessions_per_user) return;
  schedule_session_start(user, slot);
}

void UserSimulator::schedule_session_start(UserState& user, SessionSlot& slot) {
  if (user.arrivals != nullptr) {
    // Open-system mode: sessions start at their queued arrival time, or
    // immediately when the arrival is already in the past (per-user FIFO —
    // a user's sessions never overlap).
    if (user.next_arrival >= user.arrivals->size()) return;
    double start = std::max((*user.arrivals)[user.next_arrival++], sim_.now());
    start = traffic::churn_adjusted(config_.churn, config_.seed, user.index, start);
    sim_.schedule_at(start, [this, &user, &slot]() { start_session(user, slot); });
    return;
  }
  const double gap = std::max(0.0, user.session_gap.next(user.rng));
  if (config_.churn.empty()) {
    sim_.schedule(gap, [this, &user, &slot]() { start_session(user, slot); });
    return;
  }
  const double start =
      traffic::churn_adjusted(config_.churn, config_.seed, user.index, sim_.now() + gap);
  sim_.schedule_at(start, [this, &user, &slot]() { start_session(user, slot); });
}

void UserSimulator::issue(UserState& user, SessionSlot& slot, WorkItem& item,
                          fsmodel::FsOpType op, std::uint64_t requested, std::uint64_t actual) {
  ++total_ops_;
  ++slot.ops_this_session;

  fsmodel::FsOp model_op;
  model_op.type = op;
  model_op.file_id = item.inode;
  model_op.size = actual;
  model_op.file_size = item.file_size;
  model_op.client = static_cast<std::uint32_t>(user.index % config_.client_machines);
  if (item.fd >= 0 && fsmodel::is_data_op(op)) {
    const auto pos = fsys_.tell(item.fd);
    // tell() reports the post-op offset; the op started `actual` earlier.
    model_op.offset = pos.ok() && pos.value() >= actual ? pos.value() - actual : 0;
  }

  const double issued_at = sim_.now();
  const std::uint32_t session = slot.session_ordinal;
  sim::execute_chain(
      sim_, model_.plan(model_op),
      [this, &user, &slot, op, requested, actual, issued_at, session,
       inode = item.inode, fsize = item.file_size, category = item.category](double elapsed) {
        if (config_.collect_log || config_.on_record || config_.sink != nullptr) {
          OpRecord record;
          record.issue_time_us = issued_at;
          record.response_us = elapsed;
          record.user = static_cast<std::uint32_t>(user.index);
          record.session = session;
          record.op = op;
          record.requested_bytes = requested;
          record.actual_bytes = actual;
          record.file_id = inode;
          record.file_size = fsize;
          record.category = category;
          if (config_.on_record) config_.on_record(record);
          if (config_.sink != nullptr) {
            config_.sink->append(record);
          } else if (config_.collect_log) {
            log_.append(record);
          }
        }
        // Completion continues the session: pick the next operation after a
        // think time (already folded into schedule_next_op's delay).
        bool all_done = true;
        for (const auto& it : slot.items) {
          if (it.state != WorkItem::State::done) {
            all_done = false;
            break;
          }
        }
        if (all_done || slot.ops_this_session >= config_.max_ops_per_session) {
          // Emergency close of anything still open when the op budget blew.
          for (auto& it : slot.items) {
            if (it.fd >= 0) {
              fsys_.close(it.fd);
              it.fd = -1;
            }
          }
          finish_session(user, slot);
        } else {
          schedule_next_op(user, slot);
        }
      });
}

void UserSimulator::issue_next_op(UserState& user, SessionSlot& slot) {
  // Collect indices of unfinished items; map previous into that subset for
  // the Markov policy.
  std::vector<std::size_t> active;
  active.reserve(slot.items.size());
  std::size_t previous_active = OpStreamPolicy::kNone;
  for (std::size_t i = 0; i < slot.items.size(); ++i) {
    if (slot.items[i].state == WorkItem::State::done) continue;
    if (i == slot.previous_item) previous_active = active.size();
    active.push_back(i);
  }
  if (active.empty()) {
    finish_session(user, slot);
    return;
  }

  const std::size_t pick = active[policy_->choose(active.size(), previous_active, user.rng)];
  WorkItem& item = slot.items[pick];
  slot.previous_item = pick;

  switch (item.state) {
    case WorkItem::State::need_creat: {
      // creat(2) semantics give a write-only descriptor; the generator later
      // re-reads what it wrote (accesses-per-byte > 1), so it creates with
      // O_RDWR|O_CREAT|O_TRUNC the way real programs that reread do.
      const auto fd = fsys_.open(item.path, fs::kRead | fs::kWrite | fs::kCreate | fs::kTruncate);
      if (!fd.ok()) {
        item.state = WorkItem::State::done;  // cannot create (e.g. no space)
        issue_next_op(user, slot);
        return;
      }
      item.fd = fd.value();
      item.inode = fsys_.fstat(item.fd).value().inode;
      item.file_size = 0;
      item.state = WorkItem::State::active;
      issue(user, slot, item, fsmodel::FsOpType::creat, 0, 0);
      return;
    }
    case WorkItem::State::need_stat: {
      item.state = WorkItem::State::need_open;
      issue(user, slot, item, fsmodel::FsOpType::stat, 0, 0);
      return;
    }
    case WorkItem::State::need_open: {
      unsigned flags = fs::kRead;
      if (item.category.use == UseMode::read_write) flags |= fs::kWrite;
      const auto fd = fsys_.open(item.path, flags);
      if (!fd.ok()) {
        item.state = WorkItem::State::done;
        issue_next_op(user, slot);
        return;
      }
      item.fd = fd.value();
      item.state = WorkItem::State::active;
      issue(user, slot, item, fsmodel::FsOpType::open, 0, 0);
      return;
    }
    case WorkItem::State::active:
      break;  // handled below
    case WorkItem::State::need_close: {
      fsys_.close(item.fd);
      item.fd = -1;
      item.state = item.category.use == UseMode::temp ? WorkItem::State::need_unlink
                                                      : WorkItem::State::done;
      issue(user, slot, item, fsmodel::FsOpType::close, 0, 0);
      return;
    }
    case WorkItem::State::need_unlink: {
      fsys_.unlink(item.path);
      item.state = WorkItem::State::done;
      issue(user, slot, item, fsmodel::FsOpType::unlink, 0, 0);
      return;
    }
    case WorkItem::State::done:
      throw std::logic_error("UserSimulator: picked a done item");
  }

  // --- data operation on an active item -------------------------------------
  if (item.bytes_done >= item.bytes_target) {
    item.state = WorkItem::State::need_close;
    issue_next_op(user, slot);
    return;
  }

  const std::uint64_t chunk = at_least_one(user.access_size.next(user.rng));

  // Phase 1 for NEW/TEMP items: materialise the file with extending writes.
  if (item.bytes_written < item.write_target) {
    const std::uint64_t remaining = item.write_target - item.bytes_written;
    const std::uint64_t size = std::min(chunk, remaining);
    const auto wrote = fsys_.write(item.fd, size);
    const std::uint64_t actual = wrote.ok() ? wrote.value() : 0;
    item.bytes_written += actual;
    item.bytes_done += actual;
    item.file_size = std::max(item.file_size, fsys_.fstat(item.fd).value().size);
    if (!wrote.ok()) item.write_target = item.bytes_written;  // no space: stop growing
    issue(user, slot, item, fsmodel::FsOpType::write, size, actual);
    return;
  }

  // Phase 2: reads (and RD-WRT in-place writes) within [0, file_size).
  // Refresh the size first: a directory item grows as the session creates
  // files in it, and RD-WRT files are shared across users.
  const auto st = fsys_.fstat(item.fd);
  if (st.ok()) item.file_size = st.value().size;
  if (item.file_size == 0) {
    item.state = WorkItem::State::need_close;
    issue_next_op(user, slot);
    return;
  }

  const bool is_write = item.category.use == UseMode::read_write &&
                        !user.rng.bernoulli(config_.rdwr_read_fraction);

  if (config_.pattern != AccessPattern::sequential) {
    // Direct-access extension: silently position the descriptor; the data op
    // carries the offset to the model.
    const std::uint64_t offset =
        choose_offset(config_.pattern, item.file_size, chunk, user.rng);
    fsys_.lseek(item.fd, static_cast<std::int64_t>(offset), fs::Seek::set);
  }

  const std::uint64_t position = fsys_.tell(item.fd).value();
  if (position >= item.file_size) {
    // Sequential wrap: accesses-per-byte > 1 re-reads the file from the top.
    // The rewind is a real, logged lseek system call.
    fsys_.lseek(item.fd, 0, fs::Seek::set);
    issue(user, slot, item, fsmodel::FsOpType::lseek, 0, 0);
    return;
  }

  if (is_write) {
    // In-place update: never extends the file (sequential wrap keeps RD-WRT
    // files from growing without bound across sessions).
    const std::uint64_t size = std::min<std::uint64_t>(chunk, item.file_size - position);
    const auto wrote = fsys_.write(item.fd, size);
    const std::uint64_t actual = wrote.ok() ? wrote.value() : 0;
    item.bytes_done += actual;
    if (!wrote.ok() || actual == 0) item.state = WorkItem::State::need_close;  // cannot progress
    issue(user, slot, item, fsmodel::FsOpType::write, size, actual);
    return;
  }

  const auto got = fsys_.read(item.fd, chunk);
  const std::uint64_t actual = got.ok() ? got.value() : 0;
  item.bytes_done += actual;
  if (!got.ok() || actual == 0) item.state = WorkItem::State::need_close;  // cannot progress
  issue(user, slot, item, fsmodel::FsOpType::read, chunk, actual);
}

void UserSimulator::run() {
  if (ran_) throw std::logic_error("UserSimulator::run: may only run once");
  ran_ = true;
  for (auto& user : users_) {
    for (auto& slot : user->slots) {
      // Closed loop staggers logins by a sampled gap so users do not
      // lockstep; open loop starts at the user's first queued arrival.
      schedule_session_start(*user, slot);
    }
  }
  sim_.run();
}

std::uint64_t UserSimulator::rng_draws() const {
  std::uint64_t total = 0;
  for (const auto& user : users_) total += user->rng.uniform_draws();
  return total;
}

}  // namespace wlgen::core
