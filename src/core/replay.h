#pragma once

#include <memory>

#include "core/log_sink.h"
#include "core/usage_log.h"
#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::core {

/// Trace-driven workload replay — the related-work alternative the paper
/// positions itself against (section 2.1: "trace data reproduces the actual
/// workload, but provides an inflexible description").
///
/// Consumes the recorded trace through a LogReader cursor, so a replay can
/// stream straight off a spilled on-disk run set without materializing the
/// record vector.  Re-measures every response against a (possibly
/// different) file-system model.  Two modes:
///
/// * **open loop** (preserve_timing): ops are issued at their recorded
///   timestamps regardless of how the new system responds — how trace
///   replay is usually done, and where its inflexibility bites (the trace
///   cannot react to a slower system, nor represent more users than it
///   recorded).  The cursor is drained once up front, scheduling each
///   record at its recorded offset; the event heap holds the pending
///   issues, not the log, and input order is kept on timestamp ties, so
///   any record order replays correctly (a raw USIM log arrives in
///   completion order).
/// * **closed loop**: each simulated user issues its next op only after the
///   previous one completes plus the recorded think gap, approximating the
///   original feedback behaviour.  Every user starts at simulated time 0,
///   so the whole trace's per-user queues are buffered (inherent to the
///   mode, not to the reader API).
class TraceReplayer {
 public:
  struct Options {
    bool preserve_timing = true;  ///< open loop (timestamps) vs closed loop
    double time_scale = 1.0;      ///< stretch (>1) or compress (<1) the trace clock
  };

  /// Streams the trace from `trace` (non-owning; must outlive run()).
  TraceReplayer(sim::Simulation& sim, fsmodel::FileSystemModel& model, LogReader& trace);

  /// Convenience over a materialized log (wraps a MemoryLogReader).
  TraceReplayer(sim::Simulation& sim, fsmodel::FileSystemModel& model, const UsageLog& trace);

  /// Replays the whole trace; returns a log with the same ops but response
  /// times re-measured on `model`.  May be called once.
  UsageLog run();
  UsageLog run(const Options& options);

  std::uint64_t ops_replayed() const { return ops_replayed_; }

 private:
  sim::Simulation& sim_;
  fsmodel::FileSystemModel& model_;
  std::unique_ptr<LogReader> owned_trace_;  ///< set by the UsageLog ctor
  LogReader& trace_;
  std::uint64_t ops_replayed_ = 0;
  bool ran_ = false;
};

}  // namespace wlgen::core
