#pragma once

#include "core/usage_log.h"
#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::core {

/// Trace-driven workload replay — the related-work alternative the paper
/// positions itself against (section 2.1: "trace data reproduces the actual
/// workload, but provides an inflexible description").
///
/// Replays a recorded UsageLog against a (possibly different) file-system
/// model and re-measures every response.  Two modes:
///
/// * **open loop** (preserve_timing): ops are issued at their recorded
///   timestamps regardless of how the new system responds — how trace
///   replay is usually done, and where its inflexibility bites (the trace
///   cannot react to a slower system, nor represent more users than it
///   recorded);
/// * **closed loop**: each simulated user issues its next op only after the
///   previous one completes plus the recorded think gap, approximating the
///   original feedback behaviour.
class TraceReplayer {
 public:
  struct Options {
    bool preserve_timing = true;  ///< open loop (timestamps) vs closed loop
    double time_scale = 1.0;      ///< stretch (>1) or compress (<1) the trace clock
  };

  TraceReplayer(sim::Simulation& sim, fsmodel::FileSystemModel& model, const UsageLog& trace);

  /// Replays the whole trace; returns a log with the same ops but response
  /// times re-measured on `model`.  May be called once.
  UsageLog run();
  UsageLog run(const Options& options);

  std::uint64_t ops_replayed() const { return ops_replayed_; }

 private:
  sim::Simulation& sim_;
  fsmodel::FileSystemModel& model_;
  const UsageLog& trace_;
  std::uint64_t ops_replayed_ = 0;
  bool ran_ = false;
};

}  // namespace wlgen::core
