#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/usage_log.h"
#include "fs/filesystem.h"
#include "fsmodel/model.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace wlgen::core {

/// One step of a scripted (benchmark-style) workload.
struct ScriptOp {
  fsmodel::FsOpType type = fsmodel::FsOpType::read;
  std::string path;
  std::uint64_t bytes = 0;    ///< read/write request size
  std::int64_t offset = -1;   ///< >= 0: seek target (lseek) / position (data op)
  int phase = 0;              ///< phase index for per-phase timing
};

/// Result of running a script: per-phase elapsed simulated time plus the log.
struct ScriptResult {
  std::vector<std::string> phase_names;
  std::vector<double> phase_us;
  double total_us = 0.0;
  std::uint64_t ops = 0;
  UsageLog log;
};

/// Executes a fixed op sequence against the logical file system and a
/// performance model, one call at a time (a benchmark process is
/// single-threaded).  This is the "benchmarks" workload family of the
/// paper's related work (section 2.1) — the comparison point that motivates
/// the user-oriented generator ("benchmarks are too artificial", section 5.3).
class ScriptRunner {
 public:
  ScriptRunner(sim::Simulation& sim, fs::SimulatedFileSystem& fsys,
               fsmodel::FileSystemModel& model);

  /// Runs the script to completion (drives the simulation).
  ScriptResult run(const std::vector<ScriptOp>& script, std::vector<std::string> phase_names);

 private:
  sim::Simulation& sim_;
  fs::SimulatedFileSystem& fsys_;
  fsmodel::FileSystemModel& model_;
};

/// Configuration for the Andrew-style benchmark (Howard et al., cited in
/// section 2.1: "a script, consisting of makedir, copy, scandir, readall and
/// make").
struct AndrewConfig {
  std::size_t directories = 5;
  std::size_t files_per_directory = 14;  ///< 70 files, like the Andrew tree
  std::uint64_t file_bytes = 10240;
  std::uint64_t io_chunk_bytes = 4096;
  std::string source_root = "/andrew_src";
  std::string target_root = "/andrew";
};

/// Builds the five-phase Andrew script: (0) setup of the source tree,
/// (1) MakeDir, (2) Copy, (3) ScanDir, (4) ReadAll, (5) Make.
std::vector<ScriptOp> make_andrew_script(const AndrewConfig& config);

/// Phase names matching make_andrew_script.
std::vector<std::string> andrew_phase_names();

/// Configuration for the Buchholz synthetic file-update job (Buchholz 1969;
/// Sreenivasan & Kleinman 1974 — both cited in section 2.1): a master file
/// updated from a detail file, parameterised by record counts and sizes.
struct BuchholzConfig {
  std::size_t master_records = 512;
  std::size_t detail_records = 128;
  std::uint64_t record_bytes = 120;
  std::uint64_t block_bytes = 2048;  ///< setup write granularity
  std::size_t passes = 1;
  std::uint64_t seed = 1969;
  std::string root = "/buchholz";
};

/// Builds the Buchholz script: (0) setup master+detail files, (1..) one
/// update pass each: sequential detail reads, random-offset master
/// read-modify-writes.
std::vector<ScriptOp> make_buchholz_script(const BuchholzConfig& config);

/// Phase names matching make_buchholz_script.
std::vector<std::string> buchholz_phase_names(const BuchholzConfig& config);

}  // namespace wlgen::core
