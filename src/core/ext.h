#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.h"

namespace wlgen::core {

/// How byte offsets inside a file are chosen — implements the paper's
/// future-work item "the file types could include indexed files and
/// direct-access files" (section 6.2).  `sequential` is the paper's model
/// ("only sequential file access is simulated", section 4.2).
enum class AccessPattern {
  sequential,      ///< paper default: forward, wrapping at EOF
  uniform_random,  ///< direct-access: offsets uniform over the file
  zipf_block,      ///< indexed: log-uniform (Zipf-like) favouring low blocks
};

const char* to_string(AccessPattern pattern);

/// Chooses the starting offset of a non-sequential access on a file of
/// `file_size` bytes for an access of `access_size` bytes.
std::uint64_t choose_offset(AccessPattern pattern, std::uint64_t file_size,
                            std::uint64_t access_size, util::RngStream& rng);

/// Selection policy over a user's active work items — the independence
/// dimension of the model (section 3.1.4).  The paper "assume[s]
/// independence, subject to obvious logical constraints"; the Markov policy
/// implements the section 6.2 proposal so the assumption can be examined
/// (bench/ablation_markov).
class OpStreamPolicy {
 public:
  virtual ~OpStreamPolicy() = default;

  /// Picks an index in [0, count).  `previous` is the last picked index or
  /// kNone at a session start / after the previous item completed.
  virtual std::size_t choose(std::size_t count, std::size_t previous,
                             util::RngStream& rng) const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<OpStreamPolicy> clone() const = 0;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

/// The paper's model: every operation picks a work item uniformly at random.
class IndependentOpStream final : public OpStreamPolicy {
 public:
  std::size_t choose(std::size_t count, std::size_t previous,
                     util::RngStream& rng) const override;
  std::string name() const override { return "independent"; }
  std::unique_ptr<OpStreamPolicy> clone() const override;
};

/// Order-1 Markov stream: with probability `persistence` the next operation
/// stays on the same work item, otherwise it jumps uniformly.
class MarkovOpStream final : public OpStreamPolicy {
 public:
  /// persistence in [0, 1).
  explicit MarkovOpStream(double persistence);

  std::size_t choose(std::size_t count, std::size_t previous,
                     util::RngStream& rng) const override;
  std::string name() const override;
  std::unique_ptr<OpStreamPolicy> clone() const override;

  double persistence() const { return persistence_; }

 private:
  double persistence_;
};

/// Scales think times by simulated time of day — the section 6.2 proposal
/// built on Calzarossa & Serazzi's observation that "the distribution of
/// inter-login times varies depending on time of day".
class ThinkTimeModulator {
 public:
  virtual ~ThinkTimeModulator() = default;

  /// Multiplier applied to a sampled think time at simulated time `now_us`.
  virtual double multiplier(double now_us) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's (time-independent) behaviour: multiplier 1 everywhere.
class ConstantModulator final : public ThinkTimeModulator {
 public:
  double multiplier(double) const override { return 1.0; }
  std::string name() const override { return "constant"; }
};

/// Sinusoidal day profile: multiplier swings between `busy_multiplier` (fast
/// thinking, busy hours) and `idle_multiplier` over `period_us`.
class DiurnalModulator final : public ThinkTimeModulator {
 public:
  DiurnalModulator(double period_us, double busy_multiplier, double idle_multiplier);

  double multiplier(double now_us) const override;
  std::string name() const override { return "diurnal"; }

 private:
  double period_us_;
  double busy_;
  double idle_;
};

}  // namespace wlgen::core
