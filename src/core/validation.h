#pragma once

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/usage_log.h"
#include "core/workload.h"

namespace wlgen::core {

/// One validated measure: how a generated workload compares with its target
/// characterisation on a single dimension.
struct ValidationCheck {
  std::string measure;      ///< e.g. "access size", "think time gap"
  double expected_mean = 0.0;
  double measured_mean = 0.0;
  double relative_error = 0.0;  ///< |measured - expected| / expected
  double ks_statistic = 0.0;    ///< 0 when a distributional test is N/A
  double ks_p_value = 1.0;
  bool passed = false;
};

/// Result of validating a usage log against the workload specification that
/// generated it (or that it is claimed to follow).
struct ValidationReport {
  std::vector<ValidationCheck> checks;
  bool all_passed() const;
  std::string render() const;  ///< human-readable table
};

/// Options for validate_log.
struct ValidationOptions {
  double mean_tolerance = 0.15;  ///< relative error allowed on means
  double ks_alpha = 0.01;        ///< significance level for KS rejection
  /// Means are biased by mechanisms the spec doesn't describe (EOF
  /// truncation trims access sizes; category wrap granularity trims
  /// accesses-per-byte); when true the expected means are pre-adjusted by
  /// the library's standard correction factors before comparison.
  bool apply_known_corrections = true;
};

/// The paper's objective that a workload "be amenable to statistical tests
/// of similarity to the real workload" (section 2.2), as an API: compares a
/// generated UsageLog against a user type's distributions — requested access
/// sizes (KS test against the spec), per-category files-per-session and
/// accesses-per-byte means, category touch probabilities — and reports
/// pass/fail per measure.
ValidationReport validate_log(const UsageLog& log, const UserType& spec,
                              ValidationOptions options = {});

}  // namespace wlgen::core
