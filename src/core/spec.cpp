#include "core/spec.h"

#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dist/basic.h"
#include "dist/fitting.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"
#include "dist/tabulated.h"
#include "util/ascii_plot.h"
#include "util/numeric.h"
#include "util/strings.h"
#include "util/svg.h"

namespace wlgen::core {

namespace {

/// Minimal recursive-descent tokenizer/parser for the spec grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  dist::DistributionPtr parse() {
    auto result = parse_expression();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after distribution");
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream out;
    out << "distribution spec error at offset " << pos_ << ": " << what << " in \"" << text_
        << "\"";
    throw std::invalid_argument(out.str());
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  std::string identifier() {
    skip_space();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  double number() {
    skip_space();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    const auto parsed = util::parse_double(text_.substr(start, pos_ - start));
    if (!parsed) fail("expected number");
    return *parsed;
  }

  /// Parses "(k=v, k=v, ...)" or "(v, v, ...)" into ordered (key, value)
  /// pairs; positional values get empty keys.
  std::vector<std::pair<std::string, double>> tuple() {
    std::vector<std::pair<std::string, double>> out;
    expect('(');
    if (consume(')')) return out;
    while (true) {
      skip_space();
      std::string key;
      const std::size_t mark = pos_;
      if (pos_ < text_.size() && std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        key = identifier();
        if (!consume('=')) {
          pos_ = mark;  // it was not "key=", rewind and treat as a number
          key.clear();
        }
      }
      out.emplace_back(key, number());
      if (consume(')')) break;
      expect(',');
    }
    return out;
  }

  double named(const std::vector<std::pair<std::string, double>>& fields, const std::string& key,
               double fallback, bool required = false) {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    if (required) fail("missing field '" + key + "'");
    return fallback;
  }

  dist::DistributionPtr parse_expression() {
    const std::string head = util::to_lower(identifier());
    if (head == "constant" || head == "const") {
      const auto fields = tuple();
      if (fields.size() != 1) fail("constant takes one value");
      return std::make_unique<dist::ConstantDistribution>(fields[0].second);
    }
    if (head == "uniform") {
      const auto fields = tuple();
      if (fields.size() != 2) fail("uniform takes (lo, hi)");
      return std::make_unique<dist::UniformDistribution>(fields[0].second, fields[1].second);
    }
    if (head == "exp" || head == "exponential") {
      const auto fields = tuple();
      double theta = 0.0, offset = 0.0;
      if (fields.size() == 1 && fields[0].first.empty()) {
        theta = fields[0].second;
      } else {
        theta = named(fields, "theta", 0.0, /*required=*/true);
        offset = named(fields, "s", 0.0);
      }
      return std::make_unique<dist::ExponentialDistribution>(theta, offset);
    }
    if (head == "phase_exp") {
      std::vector<dist::ExpPhase> phases;
      expect('(');
      while (true) {
        const auto fields = tuple();
        phases.push_back({named(fields, "w", 1.0), named(fields, "theta", 0.0, true),
                          named(fields, "s", 0.0)});
        if (consume(')')) break;
        expect(',');
      }
      return std::make_unique<dist::PhaseTypeExponential>(std::move(phases));
    }
    if (head == "gamma" || head == "multi_gamma") {
      std::vector<dist::GammaStage> stages;
      expect('(');
      while (true) {
        const auto fields = tuple();
        stages.push_back({named(fields, "w", 1.0), named(fields, "alpha", 0.0, true),
                          named(fields, "theta", 0.0, true), named(fields, "s", 0.0)});
        if (consume(')')) break;
        expect(',');
      }
      return std::make_unique<dist::MultiStageGamma>(std::move(stages));
    }
    if (head == "pdf_table" || head == "cdf_table") {
      std::vector<double> xs, vs;
      expect('(');
      while (true) {
        const auto fields = tuple();
        if (fields.size() != 2) fail("table entries are (x, value) pairs");
        xs.push_back(fields[0].second);
        vs.push_back(fields[1].second);
        if (consume(')')) break;
        expect(',');
      }
      if (head == "pdf_table") {
        return std::make_unique<dist::TabulatedPdf>(std::move(xs), std::move(vs));
      }
      return std::make_unique<dist::TabulatedCdf>(std::move(xs), std::move(vs));
    }
    fail("unknown distribution family '" + head + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string format_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

dist::DistributionPtr parse_distribution(const std::string& text) { return Parser(text).parse(); }

std::string serialize_distribution(const dist::Distribution& d) {
  if (const auto* c = dynamic_cast<const dist::ConstantDistribution*>(&d)) {
    return "constant(" + format_number(c->value()) + ")";
  }
  if (const auto* u = dynamic_cast<const dist::UniformDistribution*>(&d)) {
    return "uniform(" + format_number(u->lower_bound()) + ", " + format_number(u->upper_bound()) +
           ")";
  }
  if (const auto* e = dynamic_cast<const dist::ExponentialDistribution*>(&d)) {
    return "exp(theta=" + format_number(e->theta()) + ", s=" + format_number(e->offset()) + ")";
  }
  if (const auto* p = dynamic_cast<const dist::PhaseTypeExponential*>(&d)) {
    std::string out = "phase_exp(";
    for (std::size_t i = 0; i < p->phases().size(); ++i) {
      const auto& ph = p->phases()[i];
      if (i != 0) out += ", ";
      out += "(w=" + format_number(ph.weight) + ", theta=" + format_number(ph.theta) +
             ", s=" + format_number(ph.offset) + ")";
    }
    return out + ")";
  }
  if (const auto* g = dynamic_cast<const dist::MultiStageGamma*>(&d)) {
    std::string out = "gamma(";
    for (std::size_t i = 0; i < g->stages().size(); ++i) {
      const auto& st = g->stages()[i];
      if (i != 0) out += ", ";
      out += "(w=" + format_number(st.weight) + ", alpha=" + format_number(st.alpha) +
             ", theta=" + format_number(st.theta) + ", s=" + format_number(st.offset) + ")";
    }
    return out + ")";
  }
  throw std::invalid_argument("serialize_distribution: unsupported family: " + d.describe());
}

void DistributionSpecifier::set(const std::string& name, DistRef distribution) {
  if (!distribution) throw std::invalid_argument("DistributionSpecifier::set: null distribution");
  entries_[name] = std::move(distribution);
}

void DistributionSpecifier::load_spec_text(const std::string& text) {
  for (const auto& raw_line : util::split(text, '\n')) {
    const std::string line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("spec line missing '=': " + line);
    }
    const std::string name = util::trim(line.substr(0, eq));
    if (name.empty()) throw std::invalid_argument("spec line missing name: " + line);
    set(name, DistRef(parse_distribution(line.substr(eq + 1))));
  }
}

DistRef DistributionSpecifier::fit(const std::string& name, const std::vector<double>& data,
                                   Family family, std::size_t components) {
  DistRef fitted;
  switch (family) {
    case Family::exponential:
      fitted = make_dist<dist::ExponentialDistribution>(dist::fit_exponential(data));
      break;
    case Family::phase_exponential:
      fitted = make_dist<dist::PhaseTypeExponential>(dist::fit_phase_exponential(data, components));
      break;
    case Family::multistage_gamma:
      fitted = make_dist<dist::MultiStageGamma>(dist::fit_multistage_gamma(data, components));
      break;
  }
  set(name, fitted);
  return fitted;
}

DistRef DistributionSpecifier::get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("DistributionSpecifier: no distribution named '" + name + "'");
  }
  return it->second;
}

bool DistributionSpecifier::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> DistributionSpecifier::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, d] : entries_) out.push_back(name);
  return out;
}

dist::CdfTable DistributionSpecifier::cdf_table(const std::string& name,
                                                std::size_t points) const {
  return dist::build_cdf_table(*get(name), points);
}

std::pair<double, double> DistributionSpecifier::plot_range(const dist::Distribution& d,
                                                            double lo, double hi) const {
  if (hi > lo) return {lo, hi};
  double a = d.lower_bound();
  if (!std::isfinite(a)) a = d.quantile(0.001);
  double b = d.upper_bound();
  if (!std::isfinite(b)) b = d.quantile(0.999);
  if (!(b > a)) b = a + 1.0;
  return {a, b};
}

std::string DistributionSpecifier::render_ascii(const std::string& name, double lo,
                                                double hi) const {
  const DistRef d = get(name);
  const auto [a, b] = plot_range(*d, lo, hi);
  util::PlotOptions options;
  options.title = name + " : " + d->describe();
  // std::string{} sidesteps gcc 12.2's -Wrestrict false positive on
  // string::operator=(const char*) at -O3 (GCC PR 105329, fixed in 12.3).
  options.x_label = std::string{"x"};
  options.y_label = std::string{"f(x)"};
  return util::ascii_function([&](double x) { return d->pdf(x); }, a, b, 96, options);
}

std::string DistributionSpecifier::render_svg(const std::string& name, double lo,
                                              double hi) const {
  const DistRef d = get(name);
  const auto [a, b] = plot_range(*d, lo, hi);
  util::SvgSeries series;
  series.label = name;
  const std::size_t samples = 256;
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = a + (b - a) * static_cast<double>(i) / static_cast<double>(samples - 1);
    series.xs.push_back(x);
    series.ys.push_back(d->pdf(x));
  }
  util::SvgOptions options;
  options.title = d->describe();
  // std::string{} sidesteps gcc 12.2's -Wrestrict false positive on
  // string::operator=(const char*) at -O3 (GCC PR 105329, fixed in 12.3).
  options.x_label = std::string{"x"};
  options.y_label = std::string{"f(x)"};
  return util::svg_plot({series}, options);
}

std::string DistributionSpecifier::serialize() const {
  std::string out;
  for (const auto& [name, d] : entries_) {
    out += name;
    out += " = ";
    out += serialize_distribution(*d);
    out += "\n";
  }
  return out;
}

}  // namespace wlgen::core
