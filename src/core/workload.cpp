#include "core/workload.h"

#include <cmath>
#include <stdexcept>

namespace wlgen::core {

const char* to_string(FileType v) {
  switch (v) {
    case FileType::directory: return "DIR";
    case FileType::regular: return "REG";
  }
  return "?";
}

const char* to_string(FileOwner v) {
  switch (v) {
    case FileOwner::user: return "USER";
    case FileOwner::notes: return "NOTES";
    case FileOwner::other: return "OTHER";
  }
  return "?";
}

const char* to_string(UseMode v) {
  switch (v) {
    case UseMode::read_only: return "RDONLY";
    case UseMode::new_file: return "NEW";
    case UseMode::read_write: return "RD-WRT";
    case UseMode::temp: return "TEMP";
  }
  return "?";
}

std::string FileCategory::label() const {
  std::string out = to_string(file_type);
  out += '/';
  out += to_string(owner);
  out += '/';
  out += to_string(use);
  return out;
}

std::size_t FileCategory::index() const {
  return static_cast<std::size_t>(file_type) * 12 + static_cast<std::size_t>(owner) * 4 +
         static_cast<std::size_t>(use);
}

void Population::validate_and_normalize() {
  if (groups.empty()) throw std::invalid_argument("Population: no groups");
  double total = 0.0;
  for (const auto& g : groups) {
    if (g.fraction < 0.0) throw std::invalid_argument("Population: negative fraction");
    if (!g.type.think_time_us || !g.type.access_size_bytes) {
      throw std::invalid_argument("Population: user type missing distributions");
    }
    total += g.fraction;
  }
  if (total <= 0.0) throw std::invalid_argument("Population: fractions sum to zero");
  for (auto& g : groups) g.fraction /= total;
}

const UserType& Population::type_for_user(std::size_t index, std::size_t total) const {
  if (groups.empty()) throw std::logic_error("Population: no groups");
  if (total == 0 || index >= total) throw std::invalid_argument("Population: bad user index");

  // Largest-remainder apportionment of `total` users over the groups.
  std::vector<std::size_t> count(groups.size(), 0);
  std::vector<double> remainder(groups.size(), 0.0);
  std::size_t assigned = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double exact = groups[g].fraction * static_cast<double>(total);
    count[g] = static_cast<std::size_t>(exact);
    remainder[g] = exact - static_cast<double>(count[g]);
    assigned += count[g];
  }
  while (assigned < total) {
    std::size_t best = 0;
    for (std::size_t g = 1; g < groups.size(); ++g) {
      if (remainder[g] > remainder[best]) best = g;
    }
    ++count[best];
    remainder[best] = -1.0;
    ++assigned;
  }

  std::size_t cursor = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    cursor += count[g];
    if (index < cursor) return groups[g].type;
  }
  return groups.back().type;
}

std::vector<FileCategory> all_categories() {
  std::vector<FileCategory> out;
  for (FileType t : {FileType::directory, FileType::regular}) {
    for (FileOwner o : {FileOwner::user, FileOwner::notes, FileOwner::other}) {
      for (UseMode u : {UseMode::read_only, UseMode::new_file, UseMode::read_write, UseMode::temp}) {
        out.push_back(FileCategory{t, o, u});
      }
    }
  }
  return out;
}

}  // namespace wlgen::core
