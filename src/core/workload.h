#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::core {

/// Shared handle to an immutable distribution.  Workload specifications are
/// value types that get copied into simulators, so the distributions they
/// carry are shared-immutable rather than uniquely owned.
using DistRef = std::shared_ptr<const dist::Distribution>;

/// Convenience: wraps a concrete distribution into a DistRef.
template <typename D, typename... Args>
DistRef make_dist(Args&&... args) {
  return std::make_shared<const D>(std::forward<Args>(args)...);
}

/// File type axis of the paper's file category (Table 5.1): directories are
/// "treated as special files".
enum class FileType : std::uint8_t { directory, regular };

/// Owner axis: the user's own files, the campus "notes" (bulletin-board)
/// files, and other/system files — the categorisation of DI86 that the
/// paper's tables use.
enum class FileOwner : std::uint8_t { user, notes, other };

/// Type-of-use axis: read-only, newly created, read-write, temporary.
enum class UseMode : std::uint8_t { read_only, new_file, read_write, temp };

const char* to_string(FileType v);
const char* to_string(FileOwner v);
const char* to_string(UseMode v);

/// A file category — one row key of paper Tables 5.1/5.2.
struct FileCategory {
  FileType file_type = FileType::regular;
  FileOwner owner = FileOwner::user;
  UseMode use = UseMode::read_only;

  auto operator<=>(const FileCategory&) const = default;

  /// "REG/USER/RDONLY"-style label, matching the paper's table rows.
  std::string label() const;

  /// Stable small integer for indexing (file_type*12 + owner*4 + use).
  std::size_t index() const;
};

/// Per-category description of the *initial file system* — a row of paper
/// Table 5.1: the distribution of file sizes and the fraction of all files
/// that fall in this category.
struct FileCategoryProfile {
  FileCategory category;
  DistRef size_dist;               ///< file size in bytes
  double fraction_of_files = 0.0;  ///< in [0,1]; fractions sum to ~1
};

/// Per-category description of *user behaviour* — a row of paper Table 5.2:
/// how much of each touched file is accessed, how large touched files are,
/// how many files a session touches, and what fraction of users touch the
/// category at all.
struct UsageProfile {
  FileCategory category;
  DistRef accesses_per_byte;   ///< bytes accessed / file size (can be > 1)
  DistRef file_size;           ///< size of files in this category (for NEW/TEMP creation)
  DistRef files_per_session;   ///< number of files referenced per login session
  double prob_accessing_category = 1.0;  ///< paper's "percent of users accessing"
};

/// A type of user — a row of paper Table 5.4 plus its usage distributions.
/// The think time separates "extremely heavy" (0), "heavy" (5000 µs) and
/// "light" (20000 µs) I/O users.
struct UserType {
  std::string name;
  DistRef think_time_us;      ///< inter-I/O-request time
  DistRef access_size_bytes;  ///< bytes requested per read/write system call
  std::vector<UsageProfile> usage;
};

/// A user population: mixture fractions over user types — the experimental
/// variable of Figures 5.6–5.11 (e.g. "80% heavy and 20% light I/O users").
struct Population {
  struct Group {
    UserType type;
    double fraction = 1.0;
  };
  std::vector<Group> groups;

  /// Throws std::invalid_argument unless fractions are positive and the
  /// group list is non-empty; fractions are normalised in place.
  void validate_and_normalize();

  /// Deterministically assigns a type to user `index` of `total` with
  /// largest-remainder apportionment, so a 6-user 50/50 population really is
  /// 3 + 3 (matching how the paper composes its populations).
  const UserType& type_for_user(std::size_t index, std::size_t total) const;
};

/// All category keys in a stable order (24 combinations).
std::vector<FileCategory> all_categories();

}  // namespace wlgen::core
