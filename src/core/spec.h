#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/workload.h"
#include "dist/cdf_table.h"
#include "dist/distribution.h"

namespace wlgen::core {

/// Parses one distribution expression.  Grammar (whitespace-insensitive):
///
///   constant(V)
///   uniform(LO, HI)
///   exp(theta=T [, s=S])                      — also exp(T)
///   phase_exp((w=W, theta=T, s=S), ...)       — paper eq. 5.1 mixture
///   gamma((w=W, alpha=A, theta=T, s=S), ...)  — multi-stage gamma
///   pdf_table((x, f), (x, f), ...)            — direct PDF values
///   cdf_table((x, F), (x, F), ...)            — direct CDF values
///
/// These are exactly the input families of the paper's GDS (section 4.1.1):
/// the two parametric families plus "the PDF or CDF values directly".
/// Throws std::invalid_argument with a position-annotated message on errors.
dist::DistributionPtr parse_distribution(const std::string& text);

/// Serialises distributions of the known families back to parseable text.
/// Throws std::invalid_argument for foreign Distribution subclasses.
std::string serialize_distribution(const dist::Distribution& d);

/// The GDS replacement: a named collection of distributions with load/store,
/// empirical fitting, terminal rendering and CDF-table emission — everything
/// the paper's interactive X11 tool does, scriptable.
class DistributionSpecifier {
 public:
  /// Families supported by fit().
  enum class Family { exponential, phase_exponential, multistage_gamma };

  /// Registers (or replaces) a named distribution.
  void set(const std::string& name, DistRef distribution);

  /// Parses "name = spec" lines ('#' comments, blank lines allowed) and
  /// registers every entry.  Throws std::invalid_argument on parse errors.
  void load_spec_text(const std::string& text);

  /// Fits `family` to raw observations and registers the result under
  /// `name`; returns the fitted distribution.  `components` is the number of
  /// phases/stages for the mixture families.
  DistRef fit(const std::string& name, const std::vector<double>& data, Family family,
              std::size_t components = 2);

  /// Looks up a distribution; throws std::out_of_range when missing.
  DistRef get(const std::string& name) const;

  /// True when `name` is registered.
  bool contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// The paper's "Generate CDF tables" step for one named distribution.
  dist::CdfTable cdf_table(const std::string& name, std::size_t points = 256) const;

  /// Terminal plot of the named density over [lo, hi] — the X11 display's
  /// role.  With lo == hi the range is chosen from the distribution itself.
  std::string render_ascii(const std::string& name, double lo = 0.0, double hi = 0.0) const;

  /// SVG document of the named density (for EXPERIMENTS.md-style artefacts).
  std::string render_svg(const std::string& name, double lo = 0.0, double hi = 0.0) const;

  /// Serialises every entry as "name = spec" lines.
  std::string serialize() const;

 private:
  std::pair<double, double> plot_range(const dist::Distribution& d, double lo, double hi) const;

  std::map<std::string, DistRef> entries_;
};

}  // namespace wlgen::core
