#include "core/replay.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/stages.h"

namespace wlgen::core {

TraceReplayer::TraceReplayer(sim::Simulation& sim, fsmodel::FileSystemModel& model,
                             LogReader& trace)
    : sim_(sim), model_(model), trace_(trace) {}

TraceReplayer::TraceReplayer(sim::Simulation& sim, fsmodel::FileSystemModel& model,
                             const UsageLog& trace)
    : sim_(sim),
      model_(model),
      owned_trace_(std::make_unique<MemoryLogReader>(trace)),
      trace_(*owned_trace_) {}

UsageLog TraceReplayer::run() { return run(Options{}); }

UsageLog TraceReplayer::run(const Options& options) {
  if (ran_) throw std::logic_error("TraceReplayer::run: may only run once");
  ran_ = true;
  if (options.time_scale <= 0.0) {
    throw std::invalid_argument("TraceReplayer: time_scale must be > 0");
  }

  auto result = std::make_shared<UsageLog>();
  const double scale = options.time_scale;

  if (options.preserve_timing) {
    // Open loop: every op fires at its recorded (scaled) offset regardless
    // of how long the replayed calls take.  The cursor is drained once,
    // scheduling each record as it is read — the event heap buffers the
    // pending issues, never the log itself — and input order is preserved
    // on timestamp ties (the sim's FIFO tie-break), so a trace recorded in
    // completion order (a raw USIM log) replays identically to before the
    // streaming refactor.
    OpRecord r;
    bool have_base = false;
    double base = 0.0;
    while (trace_.next(r)) {
      if (!have_base) {
        base = r.issue_time_us;
        have_base = true;
      }
      const double at = std::max(0.0, (r.issue_time_us - base) * scale);
      sim_.schedule_at(at, [this, result, r]() {
        fsmodel::FsOp op;
        op.type = r.op;
        op.file_id = r.file_id;
        op.size = r.actual_bytes;
        op.file_size = r.file_size;
        const double issued = sim_.now();
        sim::execute_chain(sim_, model_.plan(op), [this, r, result, issued](double elapsed) {
          OpRecord out = r;
          out.issue_time_us = issued;
          out.response_us = elapsed;
          result->append(out);
          ++ops_replayed_;
        });
      });
    }
    sim_.run();
    return std::move(*result);
  }

  // Closed loop: per recorded user, preserve the think gaps between the end
  // of one call and the issue of the next.  Every user's chain starts at
  // simulated time 0, so the per-user queues buffer the whole trace — a
  // property of the mode itself, not of the cursor input.
  struct UserTrace {
    std::vector<OpRecord> ops;
    std::vector<double> gaps;  // gap before ops[i]
  };
  auto traces = std::make_shared<std::map<std::uint32_t, UserTrace>>();
  {
    OpRecord r;
    while (trace_.next(r)) (*traces)[r.user].ops.push_back(r);
  }
  for (auto& [user, t] : *traces) {
    std::stable_sort(t.ops.begin(), t.ops.end(), [](const OpRecord& a, const OpRecord& b) {
      return a.issue_time_us < b.issue_time_us;
    });
    t.gaps.resize(t.ops.size(), 0.0);
    for (std::size_t i = 1; i < t.ops.size(); ++i) {
      const double prev_end = t.ops[i - 1].issue_time_us + t.ops[i - 1].response_us;
      t.gaps[i] = std::max(0.0, (t.ops[i].issue_time_us - prev_end) * scale);
    }
  }

  // Each user is a chain: gap -> op -> completion -> next.
  struct Walker {
    TraceReplayer* self;
    std::shared_ptr<UsageLog> result;
    const UserTrace* trace;
    std::size_t index = 0;

    void step() {
      if (index >= trace->ops.size()) return;
      const OpRecord& r = trace->ops[index];
      const double gap = trace->gaps[index];
      ++index;
      self->sim_.schedule(gap, [this, r]() {
        fsmodel::FsOp op;
        op.type = r.op;
        op.file_id = r.file_id;
        op.size = r.actual_bytes;
        op.file_size = r.file_size;
        const double issued = self->sim_.now();
        sim::execute_chain(self->sim_, self->model_.plan(op),
                           [this, r, issued](double elapsed) {
                             OpRecord out = r;
                             out.issue_time_us = issued;
                             out.response_us = elapsed;
                             result->append(out);
                             ++self->ops_replayed_;
                             step();
                           });
      });
    }
  };

  std::vector<std::shared_ptr<Walker>> walkers;
  for (const auto& [user, t] : *traces) {
    auto w = std::make_shared<Walker>();
    w->self = this;
    w->result = result;
    w->trace = &t;
    walkers.push_back(w);
    w->step();
  }
  sim_.run();

  // Canonical order for determinism: by issue time, then user.
  std::sort(result->records_mutable().begin(), result->records_mutable().end(),
            [](const OpRecord& a, const OpRecord& b) {
              if (a.issue_time_us != b.issue_time_us) return a.issue_time_us < b.issue_time_us;
              return a.user < b.user;
            });
  return std::move(*result);
}

}  // namespace wlgen::core
