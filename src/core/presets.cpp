#include "core/presets.h"

#include "core/spec.h"
#include "dist/basic.h"

namespace wlgen::core {

namespace {

/// Exponential DistRef with the given mean.
DistRef exp_dist(double mean) { return make_dist<dist::ExponentialDistribution>(mean); }

FileCategory cat(FileType t, FileOwner o, UseMode u) { return FileCategory{t, o, u}; }

}  // namespace

std::vector<FileCategoryProfile> di86_file_profiles() {
  // Columns: category, mean file size (bytes), percent of files in category.
  std::vector<FileCategoryProfile> out;
  out.push_back({cat(FileType::directory, FileOwner::user, UseMode::read_only), exp_dist(714), 0.077});
  out.push_back({cat(FileType::directory, FileOwner::other, UseMode::read_only), exp_dist(779), 0.034});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::read_only), exp_dist(5794), 0.218});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::new_file), exp_dist(11164), 0.097});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::read_write), exp_dist(17431), 0.046});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::temp), exp_dist(12431), 0.382});
  out.push_back({cat(FileType::regular, FileOwner::notes, UseMode::read_only), exp_dist(31347), 0.064});
  out.push_back({cat(FileType::regular, FileOwner::notes, UseMode::read_write), exp_dist(18771), 0.032});
  out.push_back({cat(FileType::regular, FileOwner::other, UseMode::read_only), exp_dist(15072), 0.050});
  return out;
}

std::vector<UsageProfile> di86_usage_profiles() {
  // Columns: category, accesses-per-byte, file size, files per session,
  // percent of users accessing the category.  (The first row's
  // accesses-per-byte appears as "3128" in the scanned table; the decimal
  // point is lost in the scan — 3.128 is the value consistent with every
  // other row of the characterisation.)
  std::vector<UsageProfile> out;
  out.push_back({cat(FileType::directory, FileOwner::user, UseMode::read_only),
                 exp_dist(3.128), exp_dist(808), exp_dist(2.9), 0.69});
  out.push_back({cat(FileType::directory, FileOwner::other, UseMode::read_only),
                 exp_dist(2.28), exp_dist(1198), exp_dist(2.5), 0.70});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::read_only),
                 exp_dist(1.42), exp_dist(2608), exp_dist(6.0), 1.00});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::new_file),
                 exp_dist(2.36), exp_dist(11438), exp_dist(4.0), 0.40});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::read_write),
                 exp_dist(3.50), exp_dist(19860), exp_dist(2.2), 0.46});
  out.push_back({cat(FileType::regular, FileOwner::user, UseMode::temp),
                 exp_dist(2.00), exp_dist(9233), exp_dist(9.7), 0.59});
  out.push_back({cat(FileType::regular, FileOwner::notes, UseMode::read_only),
                 exp_dist(0.75), exp_dist(53965), exp_dist(11.3), 0.53});
  out.push_back({cat(FileType::regular, FileOwner::notes, UseMode::read_write),
                 exp_dist(1.77), exp_dist(20383), exp_dist(5.7), 0.38});
  out.push_back({cat(FileType::regular, FileOwner::other, UseMode::read_only),
                 exp_dist(2.11), exp_dist(13578), exp_dist(3.1), 0.55});
  return out;
}

DistRef default_access_size_dist() { return exp_dist(1024.0); }

DistRef default_think_time_dist() { return exp_dist(5000.0); }

UserType extremely_heavy_user() {
  UserType u;
  u.name = "extremely-heavy";
  u.think_time_us = make_dist<dist::ConstantDistribution>(0.0);
  u.access_size_bytes = default_access_size_dist();
  u.usage = di86_usage_profiles();
  return u;
}

UserType heavy_user() {
  UserType u;
  u.name = "heavy";
  u.think_time_us = exp_dist(5000.0);
  u.access_size_bytes = default_access_size_dist();
  u.usage = di86_usage_profiles();
  return u;
}

UserType light_user() {
  UserType u;
  u.name = "light";
  u.think_time_us = exp_dist(20000.0);
  u.access_size_bytes = default_access_size_dist();
  u.usage = di86_usage_profiles();
  return u;
}

Population default_population() {
  Population p;
  p.groups.push_back({heavy_user(), 1.0});
  p.validate_and_normalize();
  return p;
}

Population mixed_population(double heavy_fraction) {
  Population p;
  if (heavy_fraction > 0.0) p.groups.push_back({heavy_user(), heavy_fraction});
  if (heavy_fraction < 1.0) p.groups.push_back({light_user(), 1.0 - heavy_fraction});
  p.validate_and_normalize();
  return p;
}

UserType with_access_size_mean(const UserType& base, double mean_bytes) {
  UserType u = base;
  u.access_size_bytes = exp_dist(mean_bytes);
  return u;
}

void apply_gds_overrides(Population& population, const DistributionSpecifier& gds) {
  for (auto& group : population.groups) {
    if (gds.contains("think_time")) group.type.think_time_us = gds.get("think_time");
    if (gds.contains("access_size")) group.type.access_size_bytes = gds.get("access_size");
  }
}

}  // namespace wlgen::core
