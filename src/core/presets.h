#pragma once

#include <cstdint>
#include <vector>

#include "core/workload.h"

namespace wlgen::core {

class DistributionSpecifier;

/// Paper Table 5.1 — "File characterization by file category": the nine
/// categories with their mean file sizes and fractions of all files.  The
/// paper specifies only means and "assume[s] that the measures are
/// exponentially distributed" (section 5.1); these profiles therefore carry
/// exponential size distributions with those means.
std::vector<FileCategoryProfile> di86_file_profiles();

/// Paper Table 5.2 — "User characterization by file category": per-category
/// accesses-per-byte, touched-file size, files-per-session (all exponential
/// around the published means, per the paper's stated assumption) and the
/// probability a user touches the category at all.
std::vector<UsageProfile> di86_usage_profiles();

/// Paper section 5.1 defaults for the syscall-level parameters: access size
/// exponential with mean 1024 bytes, think time exponential with mean
/// 5000 µs.
DistRef default_access_size_dist();
DistRef default_think_time_dist();

/// Paper Table 5.4 — the three simulated user types, distinguished by think
/// time: extremely heavy (0 µs), heavy (5000 µs), light (20000 µs).  All use
/// the default access-size distribution and the Table 5.2 usage profiles.
UserType extremely_heavy_user();
UserType heavy_user();
UserType light_user();

/// The default single-type population of section 5.1 (all "heavy", i.e. the
/// 5000 µs think time used for the 600-session characterisation run).
Population default_population();

/// The mixed populations of Figures 5.7–5.11: `heavy_fraction` of heavy
/// users, the rest light.
Population mixed_population(double heavy_fraction);

/// A user type equal to `base` but with the access-size distribution
/// replaced by an exponential of the given mean — the Figure 5.12 sweep
/// ("from a mean of 128 bytes to 2048 bytes").
UserType with_access_size_mean(const UserType& base, double mean_bytes);

/// Applies GDS overrides to every group of `population`: when `gds` names
/// "think_time" and/or "access_size", those distributions replace the
/// groups' presets.  The re-parameterisation hook shared by `wlgen run
/// --spec` and the scenario subsystem's `[workload]` overrides.
void apply_gds_overrides(Population& population, const DistributionSpecifier& gds);

}  // namespace wlgen::core
