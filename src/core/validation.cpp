#include "core/validation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "stats/tests.h"
#include "util/table.h"

namespace wlgen::core {

bool ValidationReport::all_passed() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const ValidationCheck& c) { return c.passed; });
}

std::string ValidationReport::render() const {
  util::TextTable table(
      {"measure", "expected mean", "measured mean", "rel err %", "KS p", "verdict"});
  for (const auto& c : checks) {
    table.add_row({c.measure, util::TextTable::num(c.expected_mean, 3),
                   util::TextTable::num(c.measured_mean, 3),
                   util::TextTable::num(c.relative_error * 100.0, 1),
                   c.ks_statistic > 0.0 ? util::TextTable::num(c.ks_p_value, 4) : "-",
                   c.passed ? "pass" : "FAIL"});
  }
  return table.render();
}

namespace {

/// E[min(1, X)] for a distribution X, by quantile averaging.  Used to
/// correct the expected size of generator-created files: a NEW/TEMP item
/// stops writing when its access budget (accesses-per-byte x target size)
/// runs out, so the realised size is target x min(1, apb).
double expected_min_one(const dist::Distribution& d) {
  const int n = 400;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / n;
    sum += std::min(1.0, d.quantile(u));
  }
  return sum / n;
}

}  // namespace

ValidationReport validate_log(const UsageLog& log, const UserType& spec,
                              ValidationOptions options) {
  ValidationReport report;

  // abs_slack lets probability checks account for their own sampling noise.
  const auto mean_check = [&](const std::string& measure, double expected, double measured,
                              double tolerance, double abs_slack = 0.0) {
    ValidationCheck c;
    c.measure = measure;
    c.expected_mean = expected;
    c.measured_mean = measured;
    c.relative_error = expected != 0.0 ? std::fabs(measured - expected) / std::fabs(expected)
                                       : std::fabs(measured);
    c.passed = std::fabs(measured - expected) <=
               std::max(tolerance * std::fabs(expected), abs_slack);
    report.checks.push_back(c);
  };

  // --- requested access sizes against the spec distribution ---------------
  // Requests are the generator's own draws (rounded to >= 1 byte and, for
  // writes, clipped by remaining write targets), so compare reads only.
  std::vector<double> requested_reads;
  for (const auto& r : log.records()) {
    if (r.op == fsmodel::FsOpType::read && r.requested_bytes > 0) {
      requested_reads.push_back(static_cast<double>(r.requested_bytes));
    }
  }
  if (!requested_reads.empty() && spec.access_size_bytes) {
    const auto ks = stats::ks_test(requested_reads, *spec.access_size_bytes);
    double sum = 0.0;
    for (double v : requested_reads) sum += v;
    const double measured = sum / static_cast<double>(requested_reads.size());
    ValidationCheck c;
    c.measure = "read request size (B)";
    c.expected_mean = spec.access_size_bytes->mean();
    c.measured_mean = measured;
    c.relative_error = std::fabs(measured - c.expected_mean) / c.expected_mean;
    c.ks_statistic = ks.statistic;
    c.ks_p_value = ks.p_value;
    // The KS reference is continuous while draws are rounded to whole bytes;
    // with kilobyte-scale means the D statistic stays tiny for a correct
    // generator, so a loose D bound plus the mean tolerance is the criterion.
    c.passed = c.relative_error <= options.mean_tolerance && ks.statistic < 0.05;
    report.checks.push_back(c);
  }

  // --- per-category session behaviour --------------------------------------
  const UsageAnalyzer analyzer(log);
  const auto per_category = analyzer.per_category_usage();
  const double sessions = static_cast<double>(analyzer.sessions().size());

  for (const auto& profile : spec.usage) {
    const auto it = per_category.find(profile.category.label());
    const bool creates = profile.category.use == UseMode::new_file ||
                         profile.category.use == UseMode::temp;

    // Touch probability, with a 3-sigma binomial sampling allowance.
    const double p = profile.prob_accessing_category;
    const double measured_touch =
        it == per_category.end() ? 0.0 : it->second.fraction_sessions_touching;
    const double binom_slack =
        sessions > 0.0 ? 3.0 * std::sqrt(std::max(p * (1.0 - p), 1e-9) / sessions) : 0.0;
    mean_check(profile.category.label() + " touch prob", p, measured_touch,
               options.mean_tolerance, binom_slack);

    if (it == per_category.end()) continue;

    // Accesses-per-byte.  Two mechanisms bias the measurement upward in ways
    // the spec does not describe: (i) two work items drawing the same pool
    // file are merged by the analyzer — the inflation equals spec draws over
    // measured distinct files, both of which are available; (ii) sequential
    // wrap overshoots the byte budget by up to one access (~15% at the
    // default access/file size ratio).
    if (profile.category.file_type == FileType::regular &&
        it->second.access_per_byte.count() > 0) {
      double expected_apb = profile.accesses_per_byte->mean();
      double tolerance = options.mean_tolerance;
      if (options.apply_known_corrections) {
        if (it->second.files_per_session.count() > 0 &&
            it->second.files_per_session.mean() > 0.0) {
          const double collision_factor =
              profile.files_per_session->mean() / it->second.files_per_session.mean();
          expected_apb *= std::max(1.0, collision_factor);
        }
        expected_apb *= 1.15;  // wrap overshoot
        tolerance = 0.25;      // the corrections are first-order only
      }
      mean_check(profile.category.label() + " accesses/byte", expected_apb,
                 it->second.access_per_byte.mean(), tolerance);
    }

    // Files per session: exact for the categories that create their files
    // (no pool collisions possible).
    if (creates && it->second.files_per_session.count() > 0) {
      mean_check(profile.category.label() + " files/session",
                 profile.files_per_session->mean(), it->second.files_per_session.mean(),
                 options.mean_tolerance,
                 3.0 * profile.files_per_session->stddev() /
                     std::sqrt(std::max(1.0, sessions * p)));
    }

    // Created-file sizes: a NEW/TEMP item realises size = target x min(1,
    // apb) because writing stops when the access budget runs out.
    if (creates && it->second.file_size.count() > 0 && profile.file_size &&
        profile.accesses_per_byte) {
      double expected_size = profile.file_size->mean();
      if (options.apply_known_corrections) {
        expected_size *= expected_min_one(*profile.accesses_per_byte);
      }
      mean_check(profile.category.label() + " created size", expected_size,
                 it->second.file_size.mean(), options.mean_tolerance,
                 3.0 * profile.file_size->stddev() /
                     std::sqrt(std::max(1.0, sessions * p)));
    }
  }
  return report;
}

}  // namespace wlgen::core
