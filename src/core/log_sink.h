#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/usage_log.h"

namespace wlgen::core {

// ---------------------------------------------------------------------------
// Producer side: LogSink
// ---------------------------------------------------------------------------

/// Record-at-a-time consumer of a usage-log stream — the producer-side half
/// of the streaming log pipeline (DESIGN.md "Streaming log pipeline").
/// Everything that used to "return a UsageLog by value" now appends into a
/// LogSink instead, so the producer never has to know whether records are
/// being materialized in RAM (MemorySink — the default, today's behaviour)
/// or spilled to sorted on-disk runs (SpillSink — the million-user path).
class LogSink {
 public:
  virtual ~LogSink() = default;

  /// Appends one completed-op record.  Producers append in per-user issue
  /// order with ascending user index across users (the order UserSimulator
  /// and the sharded runner naturally produce).
  virtual void append(const OpRecord& record) = 0;

  /// Flushes buffered state and finalizes the sink.  Idempotent; append()
  /// must not be called afterwards.
  virtual void close() = 0;
};

/// In-memory sink: appends into a UsageLog (exactly the historical path).
class MemorySink final : public LogSink {
 public:
  void append(const OpRecord& record) override { log_.append(record); }
  void close() override {}

  const UsageLog& log() const { return log_; }
  UsageLog take_log() { return std::move(log_); }

 private:
  UsageLog log_;
};

// ---------------------------------------------------------------------------
// Binary run format
// ---------------------------------------------------------------------------

/// Fixed-width little-endian record encoding.  Doubles are stored as their
/// raw IEEE-754 bits, so a spill-and-read round trip is bit-exact — the
/// merge contract and the %.17g digests both depend on that.
inline constexpr std::size_t kSpillRecordBytes = 60;

/// 8-byte magic + u64 record count, then count fixed-width records.
inline constexpr std::size_t kSpillHeaderBytes = 16;
inline constexpr char kSpillMagic[8] = {'W', 'L', 'G', 'R', 'U', 'N', '1', '\0'};

void encode_record(const OpRecord& record, unsigned char* out);
OpRecord decode_record(const unsigned char* in);

/// Metadata of one sorted on-disk run.
struct SpillRun {
  std::string path;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  ///< file size including the header
};

/// Disk-spilling sink: buffers records and cuts them into sorted run files
/// (`<stem>_run<NNNNNN>.wlr` under `dir`) of ~`buffer_records` each.
///
/// Runs are only cut at *user boundaries*: a user's records never straddle
/// two runs.  Producers append users in ascending index order and each
/// user's records in issue order (per-user issue times are nondecreasing —
/// records are emitted at op completion inside a time-monotone event loop),
/// so a stable sort of each run by (issue_time, user) plus a k-way merge
/// keyed the same way reproduces runner::merge_user_logs byte for byte:
/// within-user order survives the stable sort, and a (time, user) key can
/// never tie across runs because a user lives in exactly one run.
class SpillSink final : public LogSink {
 public:
  /// Creates `dir` if needed.  Throws std::runtime_error when the directory
  /// or a run file cannot be created.
  SpillSink(std::string dir, std::string stem, std::size_t buffer_records = 65536);
  ~SpillSink() override;
  SpillSink(const SpillSink&) = delete;
  SpillSink& operator=(const SpillSink&) = delete;

  void append(const OpRecord& record) override;
  void close() override;

  /// The finished runs (valid after close()).
  const std::vector<SpillRun>& runs() const { return runs_; }
  std::uint64_t records_written() const { return records_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void flush();

  std::string dir_;
  std::string stem_;
  std::size_t buffer_records_;
  std::vector<OpRecord> buffer_;
  std::vector<SpillRun> runs_;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint32_t last_user_ = 0;
  bool have_user_ = false;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// Consumer side: LogReader
// ---------------------------------------------------------------------------

/// Forward cursor over a usage-log stream — the consumer-side half of the
/// pipeline.  UsageAnalyzer, TraceReplayer and the text serializer all
/// iterate one of these, so they work identically over an in-RAM log, one
/// spilled run, or a k-way merge of a million users' runs.
class LogReader {
 public:
  virtual ~LogReader() = default;

  /// Fills `out` with the next record; false at end of stream.
  virtual bool next(OpRecord& out) = 0;
};

/// Cursor over a materialized UsageLog (non-owning).
class MemoryLogReader final : public LogReader {
 public:
  explicit MemoryLogReader(const UsageLog& log) : log_(log) {}
  bool next(OpRecord& out) override {
    if (index_ >= log_.size()) return false;
    out = log_.records()[index_++];
    return true;
  }

 private:
  const UsageLog& log_;
  std::size_t index_ = 0;
};

/// Buffered cursor over one binary run file.  Throws std::runtime_error on
/// open failure, bad magic, or a truncated file.
class RunFileReader final : public LogReader {
 public:
  explicit RunFileReader(const SpillRun& run);
  ~RunFileReader() override;
  RunFileReader(const RunFileReader&) = delete;
  RunFileReader& operator=(const RunFileReader&) = delete;

  bool next(OpRecord& out) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<unsigned char> buffer_;
  std::size_t buffer_pos_ = 0;   ///< bytes consumed from buffer_
  std::size_t buffer_len_ = 0;   ///< bytes valid in buffer_
  std::uint64_t remaining_ = 0;  ///< records left in the file
};

/// Loser-tree k-way merge over sorted inputs, keyed by (issue_time, user)
/// with input index as the final tie-break — the reader that gives a
/// spilled sharded run the exact merge_user_logs stream.  Each input must
/// itself be non-descending on (issue_time, user).  Handles k = 0 (empty
/// stream) and k = 1 (degenerate pass-through) without special casing at
/// the call site.
class MergeLogReader final : public LogReader {
 public:
  explicit MergeLogReader(std::vector<std::unique_ptr<LogReader>> inputs);
  bool next(OpRecord& out) override;

 private:
  bool beats(std::size_t a, std::size_t b) const;
  void replay(std::size_t leaf);

  std::vector<std::unique_ptr<LogReader>> inputs_;
  std::vector<OpRecord> current_;
  std::vector<char> valid_;
  std::vector<std::size_t> tree_;  ///< [0] = winner, [1..k-1] = losers
  std::size_t k_ = 0;
};

/// Opens the merged (issue_time, user) view over a set of spilled runs.
std::unique_ptr<LogReader> open_spilled_log(const std::vector<SpillRun>& runs);

// ---------------------------------------------------------------------------
// Streaming adapters
// ---------------------------------------------------------------------------

/// Streams the reader to `out` in UsageLog::serialize's exact text format
/// (header line + one tab-separated record per line, %.17g doubles).
/// Returns the number of records written.
std::uint64_t write_log_text(LogReader& reader, std::ostream& out);

/// Parses UsageLog text (serialize() output) record by record into `sink`.
/// Throws std::invalid_argument on malformed input.
void parse_log_text(const std::string& text, LogSink& sink);

/// Drains a reader into a materialized UsageLog (tests and small runs).
UsageLog materialize(LogReader& reader);

}  // namespace wlgen::core
