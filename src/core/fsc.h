#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/workload.h"
#include "fs/filesystem.h"
#include "util/rng.h"

namespace wlgen::core {

/// One file created by the FSC.
struct CreatedFile {
  std::string path;
  FileCategory category;
  std::uint64_t size = 0;
  fs::InodeId inode = 0;
  std::size_t owner_user = kSystemOwner;  ///< owning user index; kSystemOwner for shared files

  static constexpr std::size_t kSystemOwner = static_cast<std::size_t>(-1);
};

/// The manifest of the file system the FSC built: every created file plus
/// per-category lookup pools the USIM selects from.  "In this new file
/// system, only those files which may be accessed need to be created"
/// (paper section 4.1).
class CreatedFileSystem {
 public:
  /// Root directories used by the layout.
  static std::string system_dir();                 ///< "/system"
  static std::string user_dir(std::size_t user);   ///< "/users/u<k>"

  /// All created files.
  const std::vector<CreatedFile>& files() const { return files_; }

  /// Indices (into files()) of the files user `user` may pick from for
  /// `category`: the user's own files for USER-owned categories, the shared
  /// system pool for NOTES/OTHER.  May be empty (the USIM then creates).
  const std::vector<std::size_t>& pool(const FileCategory& category, std::size_t user) const;

  std::size_t file_count() const { return files_.size(); }

  /// Number of users the layout was built for.
  std::size_t user_count() const { return user_count_; }

  /// Registers a file (used by FileSystemCreator and by tests).
  void add_file(CreatedFile file);

  void set_user_count(std::size_t users) { user_count_ = users; }

 private:
  using PoolKey = std::pair<std::size_t, std::size_t>;  // (category index, user or system)

  std::vector<CreatedFile> files_;
  std::map<PoolKey, std::vector<std::size_t>> pools_;
  std::size_t user_count_ = 0;
  static const std::vector<std::size_t> kEmptyPool;
};

/// Configuration of the initial file system build.
struct FscConfig {
  std::size_t num_users = 1;
  /// Global index of the first user to lay out: the build covers users
  /// [first_user, first_user + num_users).  File sizes draw from per-user
  /// RNG streams derived from the seed, so a range build produces exactly
  /// the trees a full build would give those users — the property the
  /// sharded runner's deterministic partitioning rests on (see DESIGN.md).
  std::size_t first_user = 0;
  /// Total regular files created per user (split across the USER-owned
  /// categories by their Table 5.1 fractions and scattered over the user's
  /// subdirectories).
  std::size_t files_per_user = 64;
  /// Total files in the shared /system tree (NOTES + OTHER categories).
  std::size_t system_files = 256;
  /// Subdirectories under each user's home (plus the home itself); gives the
  /// DIR/USER category a realistic pool and keeps directory sizes in the
  /// Table 5.1 regime (~800 B).
  std::size_t user_subdirs = 4;
  /// Subdirectories under /system for the NOTES and OTHER trees (half each).
  std::size_t system_subdirs = 4;
  std::uint64_t seed = 1991;
};

/// The paper's File System Creator: "builds a new file system according to
/// the file distributions for each file category ... we create a directory
/// for system files, and several directories, one for each virtual user"
/// (section 4.1.2).
class FileSystemCreator {
 public:
  FileSystemCreator(fs::SimulatedFileSystem& fsys, std::vector<FileCategoryProfile> profiles,
                    FscConfig config);

  /// Builds directories and files; returns the manifest.
  /// Throws std::runtime_error if the substrate rejects an operation (which
  /// would mean the configuration is impossible, e.g. capacity exceeded).
  CreatedFileSystem create();

  const FscConfig& config() const { return config_; }

 private:
  std::uint64_t sample_size(const FileCategoryProfile& profile, util::RngStream& rng);
  void create_regular(CreatedFileSystem& out, const FileCategoryProfile& profile,
                      const std::string& dir, std::size_t owner_user, std::size_t ordinal,
                      util::RngStream& rng);

  fs::SimulatedFileSystem& fsys_;
  std::vector<FileCategoryProfile> profiles_;
  FscConfig config_;
};

}  // namespace wlgen::core
