#include "core/log_sink.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wlgen::core {

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

namespace {

inline void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

inline double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string run_file_name(const std::string& stem, std::size_t index) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%06zu", index);
  return stem + "_run" + buffer + ".wlr";
}

}  // namespace

void encode_record(const OpRecord& r, unsigned char* out) {
  put_u64(out + 0, double_bits(r.issue_time_us));
  put_u64(out + 8, double_bits(r.response_us));
  put_u32(out + 16, r.user);
  put_u32(out + 20, r.session);
  out[24] = static_cast<unsigned char>(r.op);
  out[25] = static_cast<unsigned char>(r.category.file_type);
  out[26] = static_cast<unsigned char>(r.category.owner);
  out[27] = static_cast<unsigned char>(r.category.use);
  put_u64(out + 28, r.requested_bytes);
  put_u64(out + 36, r.actual_bytes);
  put_u64(out + 44, r.file_id);
  put_u64(out + 52, r.file_size);
}

OpRecord decode_record(const unsigned char* in) {
  OpRecord r;
  r.issue_time_us = bits_double(get_u64(in + 0));
  r.response_us = bits_double(get_u64(in + 8));
  r.user = get_u32(in + 16);
  r.session = get_u32(in + 20);
  r.op = static_cast<fsmodel::FsOpType>(in[24]);
  r.category.file_type = static_cast<FileType>(in[25]);
  r.category.owner = static_cast<FileOwner>(in[26]);
  r.category.use = static_cast<UseMode>(in[27]);
  r.requested_bytes = get_u64(in + 28);
  r.actual_bytes = get_u64(in + 36);
  r.file_id = get_u64(in + 44);
  r.file_size = get_u64(in + 52);
  return r;
}

// ---------------------------------------------------------------------------
// SpillSink
// ---------------------------------------------------------------------------

SpillSink::SpillSink(std::string dir, std::string stem, std::size_t buffer_records)
    : dir_(std::move(dir)),
      stem_(std::move(stem)),
      buffer_records_(std::max<std::size_t>(1, buffer_records)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec && !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("SpillSink: cannot create spool directory '" + dir_ +
                             "': " + ec.message());
  }
  buffer_.reserve(buffer_records_);
}

SpillSink::~SpillSink() = default;

void SpillSink::append(const OpRecord& record) {
  if (closed_) throw std::logic_error("SpillSink::append after close");
  // Runs are cut only when a *new* user arrives with the buffer over budget,
  // so a user's records never straddle two runs — the property that makes
  // per-run stable sort + k-way merge reproduce merge_user_logs exactly.
  if (have_user_ && record.user != last_user_ && buffer_.size() >= buffer_records_) flush();
  buffer_.push_back(record);
  last_user_ = record.user;
  have_user_ = true;
}

void SpillSink::close() {
  if (closed_) return;
  flush();
  closed_ = true;
}

void SpillSink::flush() {
  if (buffer_.empty()) return;
  // Each user's records arrive in issue order (nondecreasing time) with
  // users ascending, so the stable sort keeps per-user relative order —
  // exactly merge_user_logs' key and tie rules within this run.
  std::stable_sort(buffer_.begin(), buffer_.end(), [](const OpRecord& a, const OpRecord& b) {
    if (a.issue_time_us != b.issue_time_us) return a.issue_time_us < b.issue_time_us;
    return a.user < b.user;
  });

  const std::string path =
      (std::filesystem::path(dir_) / run_file_name(stem_, runs_.size())).string();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("SpillSink: cannot create run file '" + path + "'");
  }

  unsigned char header[kSpillHeaderBytes];
  std::memcpy(header, kSpillMagic, sizeof kSpillMagic);
  put_u64(header + 8, buffer_.size());

  std::vector<unsigned char> encoded(buffer_.size() * kSpillRecordBytes);
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    encode_record(buffer_[i], encoded.data() + i * kSpillRecordBytes);
  }
  const bool ok = std::fwrite(header, 1, sizeof header, file) == sizeof header &&
                  std::fwrite(encoded.data(), 1, encoded.size(), file) == encoded.size();
  const bool closed_ok = std::fclose(file) == 0;
  if (!ok || !closed_ok) {
    throw std::runtime_error("SpillSink: short write to run file '" + path + "'");
  }

  SpillRun run;
  run.path = path;
  run.records = buffer_.size();
  run.bytes = kSpillHeaderBytes + encoded.size();
  records_written_ += run.records;
  bytes_written_ += run.bytes;
  runs_.push_back(std::move(run));
  buffer_.clear();
}

// ---------------------------------------------------------------------------
// RunFileReader
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kReadChunkRecords = 1024;
}

RunFileReader::RunFileReader(const SpillRun& run) : path_(run.path) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("RunFileReader: cannot open run file '" + path_ + "'");
  }
  unsigned char header[kSpillHeaderBytes];
  if (std::fread(header, 1, sizeof header, file_) != sizeof header ||
      std::memcmp(header, kSpillMagic, sizeof kSpillMagic) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("RunFileReader: '" + path_ + "' is not a wlgen run file");
  }
  remaining_ = get_u64(header + 8);
  buffer_.resize(kReadChunkRecords * kSpillRecordBytes);
}

RunFileReader::~RunFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool RunFileReader::next(OpRecord& out) {
  if (remaining_ == 0) return false;
  if (buffer_pos_ >= buffer_len_) {
    const std::size_t want =
        std::min<std::uint64_t>(remaining_, kReadChunkRecords) * kSpillRecordBytes;
    buffer_len_ = std::fread(buffer_.data(), 1, want, file_);
    buffer_pos_ = 0;
    // `want` is exactly what the header still owes us, so any short read —
    // even one that yields whole records — means the file was truncated.
    if (buffer_len_ != want) {
      throw std::runtime_error("RunFileReader: truncated run file '" + path_ + "'");
    }
  }
  out = decode_record(buffer_.data() + buffer_pos_);
  buffer_pos_ += kSpillRecordBytes;
  --remaining_;
  return true;
}

// ---------------------------------------------------------------------------
// MergeLogReader (loser tree)
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kNoInput = static_cast<std::size_t>(-1);
}

MergeLogReader::MergeLogReader(std::vector<std::unique_ptr<LogReader>> inputs)
    : inputs_(std::move(inputs)), k_(inputs_.size()) {
  current_.resize(k_);
  valid_.resize(k_, 0);
  tree_.assign(std::max<std::size_t>(k_, 1), kNoInput);
  for (std::size_t i = 0; i < k_; ++i) valid_[i] = inputs_[i]->next(current_[i]) ? 1 : 0;
  // Build the loser tree by inserting leaves in index order: each insertion
  // either settles into the first empty internal node on its root path or —
  // exactly once, for the last path — reaches tree_[0] as the winner.
  for (std::size_t i = 0; i < k_; ++i) {
    std::size_t winner = i;
    bool settled = false;
    for (std::size_t node = (i + k_) / 2; node >= 1; node /= 2) {
      if (tree_[node] == kNoInput) {
        tree_[node] = winner;
        settled = true;
        break;
      }
      if (beats(tree_[node], winner)) std::swap(winner, tree_[node]);
    }
    if (!settled) tree_[0] = winner;
  }
}

bool MergeLogReader::beats(std::size_t a, std::size_t b) const {
  if (!valid_[a]) return false;
  if (!valid_[b]) return true;
  const OpRecord& ra = current_[a];
  const OpRecord& rb = current_[b];
  if (ra.issue_time_us != rb.issue_time_us) return ra.issue_time_us < rb.issue_time_us;
  if (ra.user != rb.user) return ra.user < rb.user;
  return a < b;  // stability across inputs: lower input index first
}

void MergeLogReader::replay(std::size_t leaf) {
  std::size_t winner = leaf;
  for (std::size_t node = (leaf + k_) / 2; node >= 1; node /= 2) {
    if (beats(tree_[node], winner)) std::swap(winner, tree_[node]);
  }
  tree_[0] = winner;
}

bool MergeLogReader::next(OpRecord& out) {
  if (k_ == 0) return false;
  const std::size_t w = tree_[0];
  if (w == kNoInput || !valid_[w]) return false;
  out = current_[w];
  valid_[w] = inputs_[w]->next(current_[w]) ? 1 : 0;
  replay(w);
  return true;
}

std::unique_ptr<LogReader> open_spilled_log(const std::vector<SpillRun>& runs) {
  std::vector<std::unique_ptr<LogReader>> readers;
  readers.reserve(runs.size());
  for (const auto& run : runs) readers.push_back(std::make_unique<RunFileReader>(run));
  return std::make_unique<MergeLogReader>(std::move(readers));
}

// ---------------------------------------------------------------------------
// Streaming adapters
// ---------------------------------------------------------------------------

std::uint64_t write_log_text(LogReader& reader, std::ostream& out) {
  const auto saved_precision = out.precision(17);
  out << usage_log_header_line();
  std::uint64_t written = 0;
  OpRecord record;
  while (reader.next(record)) {
    append_record_text(out, record);
    ++written;
  }
  out.precision(saved_precision);
  return written;
}

void parse_log_text(const std::string& text, LogSink& sink) {
  for (const auto& line : util::split(text, '\n')) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    sink.append(parse_record_line(trimmed));
  }
  sink.close();
}

UsageLog materialize(LogReader& reader) {
  UsageLog log;
  OpRecord record;
  while (reader.next(record)) log.append(record);
  return log;
}

}  // namespace wlgen::core
