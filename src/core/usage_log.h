#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/workload.h"
#include "fsmodel/model.h"

namespace wlgen::core {

/// One logged system call — a line of the paper's "Usage log file"
/// (Figure 4.1): who did what to which file, how many bytes moved, and how
/// long the call took on the simulated clock.
struct OpRecord {
  double issue_time_us = 0.0;     ///< simulated time the call was issued
  double response_us = 0.0;       ///< completion - issue (queueing included)
  std::uint32_t user = 0;
  std::uint32_t session = 0;      ///< login session ordinal for this user
  fsmodel::FsOpType op = fsmodel::FsOpType::read;
  std::uint64_t requested_bytes = 0;  ///< bytes asked for (read/write)
  std::uint64_t actual_bytes = 0;     ///< bytes moved (EOF-truncated)
  std::uint64_t file_id = 0;          ///< inode
  std::uint64_t file_size = 0;        ///< file size observed at the call
  FileCategory category;
};

/// Append-only usage log with text round-tripping, consumed by the Usage
/// Analyzer exactly as in the paper's pipeline.
class UsageLog {
 public:
  void append(OpRecord record) { records_.push_back(record); }

  const std::vector<OpRecord>& records() const { return records_; }
  std::vector<OpRecord>& records_mutable() { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Tab-separated text serialisation (one record per line, with a header).
  /// Streams via log_sink.h's write_log_text — identical text to streaming a
  /// LogReader directly.
  std::string serialize() const;

  /// Parses serialize() output.  Throws std::invalid_argument on bad input.
  /// Streams record-by-record through a LogSink (log_sink.h parse_log_text).
  static UsageLog parse(const std::string& text);

 private:
  std::vector<OpRecord> records_;
};

/// Shared text codec behind UsageLog::serialize/parse and the streaming
/// writer (log_sink.h write_log_text) — one definition of the line format.
const char* usage_log_header_line();

/// Writes one record line (caller sets stream precision to 17).
void append_record_text(std::ostream& out, const OpRecord& record);

/// Parses one non-comment record line; throws std::invalid_argument.
OpRecord parse_record_line(const std::string& line);

}  // namespace wlgen::core
