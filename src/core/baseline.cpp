#include "core/baseline.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "sim/stages.h"

namespace wlgen::core {

ScriptRunner::ScriptRunner(sim::Simulation& sim, fs::SimulatedFileSystem& fsys,
                           fsmodel::FileSystemModel& model)
    : sim_(sim), fsys_(fsys), model_(model) {}

namespace {

/// Mutable interpreter state shared across the completion chain.
struct RunState {
  const std::vector<ScriptOp>* script = nullptr;
  std::size_t cursor = 0;
  std::map<std::string, fs::Fd> open_fds;
  ScriptResult result;
  int current_phase = 0;
  double phase_start_us = 0.0;
};

}  // namespace

ScriptResult ScriptRunner::run(const std::vector<ScriptOp>& script,
                               std::vector<std::string> phase_names) {
  auto state = std::make_shared<RunState>();
  state->script = &script;
  state->result.phase_names = std::move(phase_names);
  int max_phase = 0;
  for (const auto& op : script) max_phase = std::max(max_phase, op.phase);
  state->result.phase_us.assign(static_cast<std::size_t>(max_phase) + 1, 0.0);
  while (state->result.phase_names.size() < state->result.phase_us.size()) {
    state->result.phase_names.push_back("phase" +
                                        std::to_string(state->result.phase_names.size()));
  }
  state->phase_start_us = sim_.now();
  const double run_start = sim_.now();

  // One step = apply the op logically, compile it temporally, then continue
  // from the completion callback — a single-threaded benchmark process.
  std::function<void()> step = [this, state, &step]() {
    if (state->cursor >= state->script->size()) return;
    const ScriptOp& op = (*state->script)[state->cursor++];

    if (op.phase != state->current_phase) {
      state->result.phase_us[static_cast<std::size_t>(state->current_phase)] +=
          sim_.now() - state->phase_start_us;
      state->current_phase = op.phase;
      state->phase_start_us = sim_.now();
    }

    fsmodel::FsOp model_op;
    model_op.type = op.type;
    std::uint64_t actual = 0;

    switch (op.type) {
      case fsmodel::FsOpType::mkdir:
        fsys_.mkdir_recursive(op.path);
        break;
      case fsmodel::FsOpType::creat: {
        const auto fd = fsys_.creat(op.path);
        if (fd.ok()) state->open_fds[op.path] = fd.value();
        break;
      }
      case fsmodel::FsOpType::open: {
        const auto fd = fsys_.open(op.path, fs::kRead | fs::kWrite);
        if (fd.ok()) state->open_fds[op.path] = fd.value();
        break;
      }
      case fsmodel::FsOpType::close: {
        const auto it = state->open_fds.find(op.path);
        if (it != state->open_fds.end()) {
          fsys_.close(it->second);
          state->open_fds.erase(it);
        }
        break;
      }
      case fsmodel::FsOpType::lseek: {
        const auto it = state->open_fds.find(op.path);
        if (it != state->open_fds.end() && op.offset >= 0) {
          fsys_.lseek(it->second, op.offset, fs::Seek::set);
        }
        break;
      }
      case fsmodel::FsOpType::read:
      case fsmodel::FsOpType::write: {
        const auto it = state->open_fds.find(op.path);
        if (it == state->open_fds.end()) break;
        if (op.offset >= 0) fsys_.lseek(it->second, op.offset, fs::Seek::set);
        const auto pos = fsys_.tell(it->second);
        model_op.offset = pos.ok() ? pos.value() : 0;
        if (op.type == fsmodel::FsOpType::read) {
          const auto got = fsys_.read(it->second, op.bytes);
          actual = got.ok() ? got.value() : 0;
        } else {
          const auto wrote = fsys_.write(it->second, op.bytes);
          actual = wrote.ok() ? wrote.value() : 0;
        }
        break;
      }
      case fsmodel::FsOpType::stat:
      case fsmodel::FsOpType::readdir:
      case fsmodel::FsOpType::unlink:
        // Applied below via path-based calls; failures are benign here.
        if (op.type == fsmodel::FsOpType::unlink) fsys_.unlink(op.path);
        break;
    }

    const auto st = fsys_.stat(op.path);
    if (st.ok()) {
      model_op.file_id = st.value().inode;
      model_op.file_size = st.value().size;
    }
    model_op.size = actual;

    const double issued_at = sim_.now();
    const std::uint64_t requested = op.bytes;
    const auto op_type = op.type;
    sim::execute_chain(sim_, model_.plan(model_op),
                       [state, issued_at, op_type, requested, actual, &step,
                        file_id = model_op.file_id, file_size = model_op.file_size](double elapsed) {
                         OpRecord record;
                         record.issue_time_us = issued_at;
                         record.response_us = elapsed;
                         record.op = op_type;
                         record.requested_bytes = requested;
                         record.actual_bytes = actual;
                         record.file_id = file_id;
                         record.file_size = file_size;
                         state->result.log.append(record);
                         ++state->result.ops;
                         step();
                       });
  };

  step();
  sim_.run();

  state->result.phase_us[static_cast<std::size_t>(state->current_phase)] +=
      sim_.now() - state->phase_start_us;
  state->result.total_us = sim_.now() - run_start;
  // Close anything the script left open.
  for (const auto& [path, fd] : state->open_fds) fsys_.close(fd);
  return std::move(state->result);
}

namespace {

std::string andrew_file(const AndrewConfig& /*config*/, const std::string& root,
                        std::size_t dir, std::size_t file) {
  return root + "/d" + std::to_string(dir) + "/f" + std::to_string(file);
}

void append_full_write(std::vector<ScriptOp>& script, const std::string& path,
                       std::uint64_t total, std::uint64_t chunk, int phase) {
  script.push_back({fsmodel::FsOpType::creat, path, 0, -1, phase});
  for (std::uint64_t done = 0; done < total; done += chunk) {
    script.push_back({fsmodel::FsOpType::write, path, std::min(chunk, total - done), -1, phase});
  }
  script.push_back({fsmodel::FsOpType::close, path, 0, -1, phase});
}

void append_full_read(std::vector<ScriptOp>& script, const std::string& path,
                      std::uint64_t total, std::uint64_t chunk, int phase) {
  script.push_back({fsmodel::FsOpType::open, path, 0, -1, phase});
  for (std::uint64_t done = 0; done < total; done += chunk) {
    script.push_back({fsmodel::FsOpType::read, path, std::min(chunk, total - done), -1, phase});
  }
  script.push_back({fsmodel::FsOpType::close, path, 0, -1, phase});
}

}  // namespace

std::vector<std::string> andrew_phase_names() {
  return {"Setup", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make"};
}

std::vector<ScriptOp> make_andrew_script(const AndrewConfig& c) {
  std::vector<ScriptOp> script;

  // Phase 0 — Setup: materialise the source tree (not part of the paper's
  // benchmark timing, reported separately).
  script.push_back({fsmodel::FsOpType::mkdir, c.source_root, 0, -1, 0});
  for (std::size_t d = 0; d < c.directories; ++d) {
    script.push_back(
        {fsmodel::FsOpType::mkdir, c.source_root + "/d" + std::to_string(d), 0, -1, 0});
    for (std::size_t f = 0; f < c.files_per_directory; ++f) {
      append_full_write(script, andrew_file(c, c.source_root, d, f), c.file_bytes,
                        c.io_chunk_bytes, 0);
    }
  }

  // Phase 1 — MakeDir: replicate the directory skeleton.
  script.push_back({fsmodel::FsOpType::mkdir, c.target_root, 0, -1, 1});
  for (std::size_t d = 0; d < c.directories; ++d) {
    script.push_back(
        {fsmodel::FsOpType::mkdir, c.target_root + "/d" + std::to_string(d), 0, -1, 1});
  }

  // Phase 2 — Copy: read every source file, write its target twin.
  for (std::size_t d = 0; d < c.directories; ++d) {
    for (std::size_t f = 0; f < c.files_per_directory; ++f) {
      const std::string src = andrew_file(c, c.source_root, d, f);
      const std::string dst = andrew_file(c, c.target_root, d, f);
      script.push_back({fsmodel::FsOpType::open, src, 0, -1, 2});
      script.push_back({fsmodel::FsOpType::creat, dst, 0, -1, 2});
      for (std::uint64_t done = 0; done < c.file_bytes; done += c.io_chunk_bytes) {
        const std::uint64_t n = std::min(c.io_chunk_bytes, c.file_bytes - done);
        script.push_back({fsmodel::FsOpType::read, src, n, -1, 2});
        script.push_back({fsmodel::FsOpType::write, dst, n, -1, 2});
      }
      script.push_back({fsmodel::FsOpType::close, src, 0, -1, 2});
      script.push_back({fsmodel::FsOpType::close, dst, 0, -1, 2});
    }
  }

  // Phase 3 — ScanDir: stat of every copied file plus directory reads.
  for (std::size_t d = 0; d < c.directories; ++d) {
    script.push_back(
        {fsmodel::FsOpType::readdir, c.target_root + "/d" + std::to_string(d), 0, -1, 3});
    for (std::size_t f = 0; f < c.files_per_directory; ++f) {
      script.push_back({fsmodel::FsOpType::stat, andrew_file(c, c.target_root, d, f), 0, -1, 3});
    }
  }

  // Phase 4 — ReadAll: sequential read of every byte of the copy.
  for (std::size_t d = 0; d < c.directories; ++d) {
    for (std::size_t f = 0; f < c.files_per_directory; ++f) {
      append_full_read(script, andrew_file(c, c.target_root, d, f), c.file_bytes,
                       c.io_chunk_bytes, 4);
    }
  }

  // Phase 5 — Make: re-read sources, emit an object file per source.
  for (std::size_t d = 0; d < c.directories; ++d) {
    for (std::size_t f = 0; f < c.files_per_directory; ++f) {
      append_full_read(script, andrew_file(c, c.target_root, d, f), c.file_bytes,
                       c.io_chunk_bytes, 5);
      append_full_write(script, andrew_file(c, c.target_root, d, f) + ".o", c.file_bytes / 2,
                        c.io_chunk_bytes, 5);
    }
  }
  return script;
}

std::vector<std::string> buchholz_phase_names(const BuchholzConfig& c) {
  std::vector<std::string> names = {"Setup"};
  for (std::size_t p = 0; p < c.passes; ++p) names.push_back("Update" + std::to_string(p + 1));
  return names;
}

std::vector<ScriptOp> make_buchholz_script(const BuchholzConfig& c) {
  std::vector<ScriptOp> script;
  const std::string master = c.root + "/master";
  const std::string detail = c.root + "/detail";

  // Phase 0 — Setup: materialise master and detail files.
  script.push_back({fsmodel::FsOpType::mkdir, c.root, 0, -1, 0});
  append_full_write(script, master,
                    static_cast<std::uint64_t>(c.master_records) * c.record_bytes, c.block_bytes,
                    0);
  append_full_write(script, detail,
                    static_cast<std::uint64_t>(c.detail_records) * c.record_bytes, c.block_bytes,
                    0);

  // Update passes: sequential detail reads drive random master updates — the
  // "general file update process" Buchholz proposed as a yardstick.
  util::RngStream rng(c.seed, "buchholz");
  for (std::size_t pass = 0; pass < c.passes; ++pass) {
    const int phase = static_cast<int>(pass) + 1;
    script.push_back({fsmodel::FsOpType::open, master, 0, -1, phase});
    script.push_back({fsmodel::FsOpType::open, detail, 0, -1, phase});
    script.push_back({fsmodel::FsOpType::lseek, detail, 0, 0, phase});
    for (std::size_t r = 0; r < c.detail_records; ++r) {
      script.push_back({fsmodel::FsOpType::read, detail, c.record_bytes, -1, phase});
      const std::int64_t record = rng.uniform_int(0, static_cast<std::int64_t>(c.master_records) - 1);
      const std::int64_t offset = record * static_cast<std::int64_t>(c.record_bytes);
      script.push_back({fsmodel::FsOpType::read, master, c.record_bytes, offset, phase});
      script.push_back({fsmodel::FsOpType::write, master, c.record_bytes, offset, phase});
    }
    script.push_back({fsmodel::FsOpType::close, master, 0, -1, phase});
    script.push_back({fsmodel::FsOpType::close, detail, 0, -1, phase});
  }
  return script;
}

}  // namespace wlgen::core
