#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/ext.h"
#include "core/fsc.h"
#include "core/usage_log.h"
#include "core/workload.h"
#include "fs/filesystem.h"
#include "fsmodel/model.h"
#include "sim/simulation.h"
#include "traffic/faults.h"

namespace wlgen::core {

class LogSink;  // core/log_sink.h

/// Configuration of a User Simulator run.
struct UsimConfig {
  /// Simultaneous users on the machine — the x-axis of Figures 5.6–5.11.
  std::size_t num_users = 1;

  /// Global index of the first simulated user: this run drives users
  /// [first_user, first_user + num_users).  RNG streams, population type
  /// assignment and file-system directories are all keyed by the *global*
  /// index, so a range run reproduces exactly the per-user behaviour of a
  /// full run — the USIM side of the sharded runner's deterministic user
  /// partitioning (see DESIGN.md "Sharded runner").
  std::size_t first_user = 0;

  /// Total population size used for user-type apportionment (0 = num_users).
  /// Range runs set this to the full population so user k gets the same
  /// UserType regardless of how users are partitioned into shards.
  std::size_t population_users = 0;

  /// Login sessions each user performs (the paper uses 50 for the response
  /// experiments and 600 total for the characterisation run).
  std::size_t sessions_per_user = 50;

  /// Root seed; every user derives an independent stream from it.
  std::uint64_t seed = 42;

  /// Gap between a logout and the next login (defaults to constant 1000 µs).
  DistRef inter_session_gap_us;

  /// Offset access pattern (paper: sequential).
  AccessPattern pattern = AccessPattern::sequential;

  /// Work-item selection: negative = the paper's independent stream;
  /// in [0,1) = Markov persistence (section 6.2 extension).
  double markov_persistence = -1.0;

  /// Probability of issuing a stat() before opening an existing file.
  double stat_before_open_prob = 0.0;

  /// Read share of data operations on RD-WRT items (the paper does not
  /// publish an op mix; 0.5 is the documented assumption — see DESIGN.md).
  double rdwr_read_fraction = 0.5;

  /// Size bias when picking existing files from a category pool: selection
  /// weight is size^beta.  0 = uniform (the paper's implied behaviour);
  /// beta > 0 models the observation that *touched* files run larger than
  /// the category average (Table 5.2 vs Table 5.1 NOTES sizes).
  double size_bias_beta = 0.0;

  /// Concurrent login sessions per user (section 6.2: "under a window
  /// system, a user may have several simultaneous logins"); 1 = the paper's
  /// single-session user model.
  std::size_t windows_per_user = 1;

  /// Client workstations users are spread over (round-robin by user index).
  /// 1 = the paper's single shared SUN 3/50; match the model's
  /// NfsParams::num_clients when running a multi-workstation topology.
  std::size_t client_machines = 1;

  /// Think-time modulation (section 6.2 time-of-day extension); null = the
  /// paper's time-independent behaviour.
  std::shared_ptr<const ThinkTimeModulator> think_modulator;

  /// Draws prefetched per characteristic through Distribution::sample_n
  /// (must be >= 1).  1 — the default — consumes each user's stream
  /// draw-for-draw in the historical order, so results are bit-identical
  /// with pre-batching builds.  Larger batches amortise sampling dispatch
  /// across the whole draw pipeline (think time, access size, session
  /// planning, inter-session gaps); results stay deterministic and
  /// shard/thread-invariant — every buffer refills from the owning user's
  /// private stream at fixed points in that user's timeline — but realise
  /// a different (equally valid) random sequence, so digests differ from a
  /// draw_batch = 1 run.  Scenario key: workload.draw_batch.
  std::size_t draw_batch = 1;

  /// Hard per-session op budget (guards against degenerate configurations).
  std::size_t max_ops_per_session = 200000;

  /// When false, per-op records are not retained (big sweeps).
  bool collect_log = true;

  /// Streaming destination for completed-op records (non-owning; must
  /// outlive the run).  When set it REPLACES the internal in-memory log —
  /// records append here instead of log_, so a spilling run never
  /// materializes them — and collect_log is ignored.  The sharded runner
  /// points every shard's users at that shard's SpillSink.
  LogSink* sink = nullptr;

  /// Observer invoked with every op record as it completes, independent of
  /// collect_log — the hook mergeable-statistics accumulators use so big
  /// sweeps can run log-free without losing their aggregates.
  std::function<void(const OpRecord&)> on_record;

  /// Open-system session arrivals (src/traffic/arrivals.h): element g holds
  /// GLOBAL user g's session start times in µs, ascending.  When set, the
  /// closed-loop schedule (initial stagger + inter-session gap) is replaced:
  /// user g's session k starts at max(arrival k, previous session end) —
  /// arrivals queue per user, sessions never overlap — and the user runs
  /// exactly arrival_times_us[g].size() sessions (sessions_per_user is
  /// ignored).  Requires windows_per_user == 1.  Indexing by global user
  /// keeps a sharded range run identical to the full run.
  std::shared_ptr<const std::vector<std::vector<double>>> arrival_times_us;

  /// User-population churn windows (src/traffic/faults.h): a deterministic
  /// per-window fraction of users (hash of seed/user/window, no RNG draws)
  /// has session starts inside the window postponed to its end.  Empty =
  /// the exact pre-traffic code path.
  std::vector<traffic::ChurnWindow> churn;
};

/// The paper's User Simulator (USIM): "simulates workload on a terminal or
/// workstation, i.e., a series of users logging in and using the computer"
/// (section 4.1.3).  Each simulated user repeatedly:
///
///   1. plans a login session — for each file category the user's type
///      touches (Table 5.2 probabilities), samples how many files and, per
///      file, how many bytes to access (accesses-per-byte × file size);
///   2. issues one file I/O system call at a time — creat/open first, then
///      sequential reads/writes in access-size chunks (lseek rewinds give
///      accesses-per-byte > 1), close, and unlink for TEMP files —
///      independently interleaved across the session's files;
///   3. sleeps a sampled think time between calls.
///
/// Calls execute logically against the SimulatedFileSystem (so EOF, unlink
/// and fd semantics are real) and temporally against the FileSystemModel
/// (so response times include queueing against the other users).
///
/// One UserSimulator drives one Simulation on one thread.  For populations
/// beyond what a single core can sweep, runner::ShardedRunner partitions the
/// user index space across worker threads via the first_user/num_users range
/// mode and merges the results deterministically — architecture and merge
/// contract are documented in DESIGN.md, "Sharded runner".
class UserSimulator {
 public:
  UserSimulator(sim::Simulation& sim, fs::SimulatedFileSystem& fsys,
                fsmodel::FileSystemModel& model, const CreatedFileSystem& manifest,
                Population population, UsimConfig config);
  ~UserSimulator();
  UserSimulator(const UserSimulator&) = delete;
  UserSimulator& operator=(const UserSimulator&) = delete;

  /// Schedules every user's first login and runs the simulation to
  /// completion.  May be called once.
  void run();

  /// The usage log (empty when collect_log is false).
  const UsageLog& log() const { return log_; }

  /// Moves the log out (the sharded runner's zero-copy handoff); log() is
  /// empty afterwards.
  UsageLog take_log() { return std::move(log_); }

  std::uint64_t total_ops() const { return total_ops_; }
  std::uint64_t sessions_completed() const { return sessions_completed_; }

  /// Total uniform01-path RNG draws across this run's user streams (the obs
  /// "rng.uniform_draws" metric; see util::RngStream::uniform_draws).
  std::uint64_t rng_draws() const;

  const UsimConfig& config() const { return config_; }

 private:
  struct WorkItem;
  struct SessionSlot;
  struct DrawBuffer;
  struct UserState;

  void start_session(UserState& user, SessionSlot& slot);
  void schedule_session_start(UserState& user, SessionSlot& slot);
  void schedule_next_op(UserState& user, SessionSlot& slot);
  void issue_next_op(UserState& user, SessionSlot& slot);
  void finish_session(UserState& user, SessionSlot& slot);
  bool plan_items(UserState& user, SessionSlot& slot);
  void issue(UserState& user, SessionSlot& slot, WorkItem& item, fsmodel::FsOpType op,
             std::uint64_t requested, std::uint64_t actual);
  double sample_think(UserState& user);
  std::string new_file_path(UserState& user, UseMode use);

  sim::Simulation& sim_;
  fs::SimulatedFileSystem& fsys_;
  fsmodel::FileSystemModel& model_;
  const CreatedFileSystem& manifest_;
  Population population_;
  UsimConfig config_;
  std::unique_ptr<OpStreamPolicy> policy_;
  std::vector<std::unique_ptr<UserState>> users_;
  UsageLog log_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t sessions_completed_ = 0;
  bool ran_ = false;
};

}  // namespace wlgen::core
