#include "tools/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace wlgen::lint {

namespace {

namespace fs = std::filesystem;

/// Lexer state carried across lines by strip_comments_and_strings.
enum class StripState { code, block_comment, raw_string };

/// Does `path` (relative, forward slashes) match the anchored regex
/// `filter`?  Empty filter means "match everything" for applies and "match
/// nothing" for allow — callers pick via `empty_matches`.
bool path_matches(const std::string& path, const std::string& filter, bool empty_matches) {
  if (filter.empty()) return empty_matches;
  return std::regex_search(path, std::regex(filter));
}

/// Declared unordered_{map,set} variable names in stripped source —
/// handles one level of nested template arguments, which covers every
/// declaration shape in this codebase (pinned by lint_test fixtures).
std::set<std::string> unordered_names(const std::vector<std::string>& stripped) {
  static const std::regex decl(
      R"(unordered_(?:map|set)\s*<(?:[^<>]|<[^<>]*>)*>\s*([A-Za-z_]\w*))");
  std::set<std::string> names;
  std::string joined;
  for (const auto& line : stripped) {
    joined += line;
    joined += '\n';
  }
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), decl);
       it != std::sregex_iterator(); ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

/// Lines (1-based) where one of `names` is iterated: a range-for over the
/// name, or an explicit name.begin()/name.cbegin() cursor.
std::vector<std::size_t> iteration_lines(const std::vector<std::string>& stripped,
                                         const std::set<std::string>& names) {
  std::vector<std::size_t> hits;
  if (names.empty()) return hits;
  std::string alternation;
  for (const auto& name : names) {
    if (!alternation.empty()) alternation += '|';
    alternation += name;
  }
  // Range-for (`: name)`) or an explicit cursor (`name.begin(`).
  const std::regex iter(R"(:\s*(?:\w+\s*\.\s*)?(?:)" + alternation + R"()\s*\))" +
                        std::string(R"(|\b(?:)") + alternation +
                        R"()\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    if (std::regex_search(stripped[i], iter)) hits.push_back(i + 1);
  }
  return hits;
}

/// First line (1-based) of actual code, and whether it is `#pragma once`.
bool opens_with_pragma_once(const std::vector<std::string>& stripped, bool* has_code) {
  for (const auto& line : stripped) {
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    *has_code = true;
    static const std::regex pragma(R"(^#\s*pragma\s+once\b)");
    return std::regex_search(line.substr(start), pragma);
  }
  *has_code = false;
  return false;
}

}  // namespace

std::string Violation::render() const {
  std::ostringstream out;
  out << file << ":" << line << ": " << rule << ": " << message;
  return out.str();
}

std::vector<std::string> strip_comments_and_strings(const std::string& source) {
  std::vector<std::string> lines;
  std::string current;
  StripState state = StripState::code;
  std::size_t i = 0;
  const std::size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
      ++i;
      continue;
    }
    if (state == StripState::block_comment) {
      if (c == '*' && i + 1 < n && source[i + 1] == '/') {
        state = StripState::code;
        current += ' ';
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (state == StripState::raw_string) {
      if (c == ')' && i + 1 < n && source[i + 1] == '"') {
        state = StripState::code;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    // state == code
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      // Line comment: drop the rest of the line (the newline loops back).
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      state = StripState::block_comment;
      i += 2;
      continue;
    }
    if (c == '"' && i >= 1 && source[i - 1] == 'R') {
      // Raw string literal R"( ... )" — delimiter-free form only; the
      // codebase uses no custom delimiters (a rule regex in a test fixture
      // would, but fixtures embed source as ordinary strings).
      if (i + 1 < n && source[i + 1] == '(') {
        current.pop_back();  // drop the R
        current += ' ';
        state = StripState::raw_string;
        i += 2;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      // Ordinary string/char literal: skip to the unescaped closing quote.
      const char quote = c;
      ++i;
      while (i < n && source[i] != quote && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n && source[i] == quote) ++i;
      current += ' ';
      continue;
    }
    current += c;
    ++i;
  }
  lines.push_back(current);
  return lines;
}

std::map<std::size_t, std::set<std::string>> allow_markers(const std::string& source) {
  std::map<std::size_t, std::set<std::string>> markers;
  static const std::regex marker(R"(wlgen-lint:\s*allow\(([^)]*)\))");
  std::istringstream in(source);
  std::string line;
  for (std::size_t number = 1; std::getline(in, line); ++number) {
    std::smatch match;
    if (!std::regex_search(line, match, marker)) continue;
    std::string ids = match[1].str();
    std::replace(ids.begin(), ids.end(), ',', ' ');
    std::istringstream split(ids);
    std::string id;
    while (split >> id) markers[number].insert(id);
  }
  return markers;
}

std::vector<Violation> lint_source(const std::string& relative_path,
                                   const std::string& printed_path,
                                   const std::string& source,
                                   const std::vector<Rule>& rules,
                                   const std::string& companion_header) {
  const std::vector<std::string> stripped = strip_comments_and_strings(source);
  const auto allows = allow_markers(source);
  const bool is_header = relative_path.size() >= 2 &&
                         relative_path.compare(relative_path.size() - 2, 2, ".h") == 0;

  const auto allowed = [&](std::size_t line, const std::string& rule_id) {
    const auto it = allows.find(line);
    if (it == allows.end()) return false;
    return it->second.count(rule_id) != 0 || it->second.count("*") != 0;
  };

  std::vector<Violation> violations;
  for (const auto& rule : rules) {
    if (!path_matches(relative_path, rule.applies, /*empty_matches=*/true)) continue;
    if (path_matches(relative_path, rule.allow_paths, /*empty_matches=*/false)) continue;

    switch (rule.kind) {
      case RuleKind::pattern: {
        const std::regex pattern(rule.pattern);
        for (std::size_t i = 0; i < stripped.size(); ++i) {
          if (!std::regex_search(stripped[i], pattern)) continue;
          if (allowed(i + 1, rule.id)) continue;
          violations.push_back({printed_path, i + 1, rule.id, rule.message});
        }
        break;
      }
      case RuleKind::pragma_once: {
        if (!is_header) break;
        bool has_code = false;
        const bool ok = opens_with_pragma_once(stripped, &has_code);
        if (has_code && !ok && !allowed(1, rule.id)) {
          violations.push_back({printed_path, 1, rule.id, rule.message});
        }
        break;
      }
      case RuleKind::unordered_iter: {
        std::set<std::string> names = unordered_names(stripped);
        if (!companion_header.empty()) {
          const auto header_names =
              unordered_names(strip_comments_and_strings(companion_header));
          names.insert(header_names.begin(), header_names.end());
        }
        for (const std::size_t line : iteration_lines(stripped, names)) {
          if (allowed(line, rule.id)) continue;
          violations.push_back({printed_path, line, rule.id, rule.message});
        }
        break;
      }
    }
  }
  std::sort(violations.begin(), violations.end());
  return violations;
}

TreeReport lint_tree(const std::string& root, const std::vector<Rule>& rules) {
  if (!fs::is_directory(root)) {
    throw std::runtime_error("lint root '" + root + "' is not a directory");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  TreeReport report;
  for (const auto& file : files) {
    std::string relative = fs::relative(file, root).generic_string();
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + file.string());
    std::ostringstream content;
    content << in.rdbuf();

    // Feed foo.cpp the declarations of a sibling foo.h so the
    // unordered-iter rule sees members declared in the header.
    std::string companion;
    if (file.extension() == ".cpp") {
      fs::path header = file;
      header.replace_extension(".h");
      std::ifstream header_in(header, std::ios::binary);
      if (header_in) {
        std::ostringstream header_content;
        header_content << header_in.rdbuf();
        companion = header_content.str();
      }
    }

    auto violations =
        lint_source(relative, file.generic_string(), content.str(), rules, companion);
    report.violations.insert(report.violations.end(), violations.begin(), violations.end());
    ++report.files_scanned;
  }
  std::sort(report.violations.begin(), report.violations.end());
  return report;
}

int run_lint(const std::string& root, const std::vector<Rule>& rules) {
  const TreeReport report = lint_tree(root, rules);
  for (const auto& violation : report.violations) {
    std::cerr << violation.render() << "\n";
  }
  std::cout << "wlgen lint: " << report.violations.size() << " violation(s) over "
            << report.files_scanned << " file(s) in " << root << "\n";
  return report.violations.empty() ? 0 : 1;
}

}  // namespace wlgen::lint
