#pragma once

#include <vector>

#include "tools/lint/lint.h"

namespace wlgen::lint {

/// The committed determinism rule table — what `wlgen lint` (and the CMake
/// `lint` target, and CI's lint job) enforces over src/.  Each rule carries
/// its rationale; per-path allowlist entries are justified inline in
/// lint_rules.cpp.  tests/lint_test.cpp pins one positive and one negative
/// fixture per rule, and that the committed tree is clean under this table.
const std::vector<Rule>& default_rules();

/// Human-readable rule table (id, rationale, scope) for `wlgen lint --rules`
/// and the DESIGN.md documentation.
std::string render_rule_table();

}  // namespace wlgen::lint
