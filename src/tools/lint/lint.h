#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wlgen::lint {

/// wlgen's determinism linter — a token/regex-level checker for the code
/// shapes that break the repo's core invariant (merged logs, stats digests
/// and checkpoint-resumed runs are bit-identical for any shard/thread/spill
/// combination).  It is deliberately NOT a compiler plugin: the hazards it
/// hunts (wall-clock reads, unordered iteration, FP byte punning, float
/// truncation, raw entropy) are all visible at the token level, and a
/// dependency-free checker can run in CI before any test binary builds.
///
/// Matching happens on source with comments and string/char literals
/// stripped, so prose like "think time (already folded in)" never trips a
/// rule.  Escape hatches, in order of preference:
///   1. the rule's `allow_paths` regex (whole files whose PURPOSE is the
///      flagged operation — each entry carries a justification in
///      lint_rules.cpp), and
///   2. an inline `// wlgen-lint: allow(rule-id[, rule-id...])` comment on
///      the flagged line for one-off, locally-justified sites.
///
/// Diagnostics print as `file:line: rule-id: message`; `run_lint` exits
/// nonzero when any violation survives.  tests/lint_test.cpp pins one
/// positive and one negative fixture per rule plus both escape hatches.

/// How a rule inspects the stripped source.
enum class RuleKind {
  pattern,         ///< flag lines matching `pattern`
  pragma_once,     ///< headers must open with #pragma once
  unordered_iter,  ///< range-for / .begin() over a declared unordered container
};

/// One determinism rule.  `applies` and `allow_paths` are ECMAScript
/// regexes matched against the path RELATIVE to the scanned root with
/// forward slashes (e.g. "core/log_sink.cpp"); an empty `applies` means
/// every scanned file, an empty `allow_paths` means no path exemptions.
struct Rule {
  std::string id;           ///< stable kebab-case id ("wall-clock", ...)
  std::string rationale;    ///< why the shape threatens determinism
  RuleKind kind = RuleKind::pattern;
  std::string pattern;      ///< regex for RuleKind::pattern
  std::string applies;      ///< path filter (regex), empty = all files
  std::string allow_paths;  ///< exempt paths (regex), empty = none
  std::string message;      ///< one-line diagnostic
};

/// One diagnostic; ordered (file, line, rule) for stable output.
struct Violation {
  std::string file;      ///< path as printed (root-joined, clickable)
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;

  bool operator<(const Violation& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
  std::string render() const;  ///< "file:line: rule-id: message"
};

/// Strips // and /* */ comments and the contents of string/char literals
/// (replaced by a single space so token boundaries survive), preserving the
/// line structure: result[i] is line i+1 of `source` with only code left.
/// Raw string literals are handled for the common R"(...)"  delimiter-free
/// form.  This is a lexer approximation, not a parser — good enough for the
/// token-level rules above, and pinned by lint_test fixtures.
std::vector<std::string> strip_comments_and_strings(const std::string& source);

/// Inline escape hatches: maps 1-based line number -> rule ids allowed on
/// that line, parsed from `// wlgen-lint: allow(a, b)` markers in the RAW
/// source (markers live in comments, which strip_comments_and_strings
/// removes).  The wildcard allow(*) suppresses every rule on the line.
std::map<std::size_t, std::set<std::string>> allow_markers(const std::string& source);

/// Lints one file's contents.  `relative_path` (forward slashes, relative
/// to the scanned root) drives the applies/allow_paths filters;
/// `printed_path` is what diagnostics show.  `companion_header` feeds the
/// unordered-iter rule the declarations of the matching .h when linting a
/// .cpp (members declared in foo.h are iterated in foo.cpp).
std::vector<Violation> lint_source(const std::string& relative_path,
                                   const std::string& printed_path,
                                   const std::string& source,
                                   const std::vector<Rule>& rules,
                                   const std::string& companion_header = "");

/// Result of walking a tree: sorted violations + how many files were read
/// (so "0 violations over 0 files" cannot masquerade as a clean pass).
struct TreeReport {
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
};

/// Walks `root` recursively over *.h / *.cpp in sorted path order and lints
/// each file.  Throws std::runtime_error when `root` is not a directory.
TreeReport lint_tree(const std::string& root, const std::vector<Rule>& rules);

/// CLI entry point: lints `root`, prints diagnostics to stderr and a
/// one-line summary to stdout.  Returns 0 on a clean tree, 1 when any
/// violation survives — the `wlgen lint` exit-code contract.
int run_lint(const std::string& root, const std::vector<Rule>& rules);

}  // namespace wlgen::lint
