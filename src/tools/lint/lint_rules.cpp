#include "tools/lint/lint_rules.h"

#include <sstream>

#include "util/table.h"

namespace wlgen::lint {

namespace {

/// The simulation-affecting directories: code here feeds the merged log,
/// the stats digests, or the checkpoint/resume path, so the bit-identical
/// invariant (DESIGN.md "Streaming log pipeline") depends on it.  obs/,
/// util/ and tools/ sit outside: observability is defined to never change
/// results (tests/obs_test.cpp), and the CLI's wall-clock reporting is
/// cosmetic by construction.
constexpr const char* kSimPaths =
    R"(^(core|sim|dist|runner|stats|fsmodel|fs|scenario|exp|traffic)/)";

}  // namespace

const std::vector<Rule>& default_rules() {
  static const std::vector<Rule> rules = {
      {
          "wall-clock",
          "Simulation results must be a pure function of (spec, seed); a wall-clock "
          "read in a sim-affecting path can leak machine speed or timezone into "
          "results, digests or checkpoint decisions.",
          RuleKind::pattern,
          // system_clock/steady_clock/high_resolution_clock, clock_gettime,
          // gettimeofday, localtime/gmtime, and bare time( — the leading
          // [^.\w] keeps member calls like issue_time( and x.time( out.
          R"((system_clock|steady_clock|high_resolution_clock)\b)"
          R"(|\b(clock_gettime|gettimeofday|localtime|gmtime)\s*\()"
          R"(|(^|[^.A-Za-z0-9_])time\s*\()",
          kSimPaths,
          // runner/pool.{h,cpp}: the worker pool's entire observability job
          // is wall-time busy/idle accounting (PoolObs); virtual time never
          // flows through it and digests ignore it (tests/obs_test.cpp).
          R"(^runner/pool\.(h|cpp)$)",
          "wall-clock read in a simulation-affecting path (use sim::Simulation::now; "
          "wall_ms reporting sites carry an inline allow with justification)",
      },
      {
          "unordered-iter",
          "Iteration order of std::unordered_{map,set} depends on libstdc++ "
          "version, hash seeding and insertion history; folding or serializing in "
          "that order silently breaks bit-identical merges.",
          RuleKind::unordered_iter,
          "",
          kSimPaths,
          "",
          "iteration over an unordered container in a simulation-affecting path "
          "(iterate a sorted view, use std::map, or justify an inline allow for a "
          "commutative fold)",
      },
      {
          "raw-rand",
          "All randomness must flow from the seeded util::Rng tree so runs replay "
          "bit-identically; rand()/random_device draw from global or hardware state "
          "that no seed controls.",
          RuleKind::pattern,
          R"(\b(rand|srand|rand_r|drand48)\s*\(|\brandom_device\b)",
          "",  // applies everywhere — entropy is never OK outside util/rng
          // util/rng.{h,cpp}: the one blessed seeding point; today it is
          // pure splitmix64/mt19937_64 and uses no entropy at all, but a
          // future opt-in entropy seed belongs there and nowhere else.
          R"(^util/rng\.(h|cpp)$)",
          "raw entropy source (derive from util::Rng / splitmix64 so the seed tree "
          "controls every draw)",
      },
      {
          "byte-pun",
          "Byte-level reinterpretation of object representations — especially IEEE "
          "doubles — must live in the one audited codec: elsewhere it risks UB and "
          "endianness/padding-dependent record bytes.",
          RuleKind::pattern,
          R"(\breinterpret_cast\b|\bmemcpy\s*\()",
          kSimPaths,
          // core/log_sink.{h,cpp}: the blessed fixed-layout record codec —
          // its double<->uint64 memcpy pair is the defined-behaviour idiom
          // and is pinned byte-for-byte by tests/log_sink_test.cpp.
          // sim/callback.h: type-erased callable storage (launder+memcpy of
          // trivially-copyable closures only, static_asserted there); no
          // floating-point object representation is ever reinterpreted.
          R"(^(core/log_sink\.(h|cpp)|sim/callback\.h)$)",
          "byte punning outside the audited core/log_sink codec (route through "
          "encode_f64/decode_f64 or justify an inline allow)",
      },
      {
          "float-stats",
          "Statistics must accumulate in double: float's 24-bit mantissa makes "
          "sums sensitive to accumulation order and width, so shard-count changes "
          "would change digests.",
          RuleKind::pattern,
          R"(\bfloat\b|\b[0-9]+\.[0-9]*f\b)",
          R"(^(stats/|runner/stats))",
          "",
          "float type or float literal in a stats-accumulation file (accumulate in "
          "double; digests print %.17g doubles)",
      },
      {
          "pragma-once",
          "Every header must open with #pragma once: a missing include guard can "
          "select ODR-divergent definitions between translation units, which shows "
          "up as impossible-to-bisect nondeterminism.",
          RuleKind::pragma_once,
          "",
          "",  // all scanned headers
          "",
          "header does not open with #pragma once",
      },
  };
  return rules;
}

std::string render_rule_table() {
  util::TextTable table({"rule", "scope", "rationale"});
  for (const auto& rule : default_rules()) {
    std::string scope = rule.applies.empty() ? "src/**" : rule.applies;
    if (!rule.allow_paths.empty()) scope += "  except " + rule.allow_paths;
    table.add_row({rule.id, scope, rule.rationale});
  }
  std::ostringstream out;
  out << table.render();
  return out.str();
}

}  // namespace wlgen::lint
