#pragma once

#include <set>
#include <string>
#include <vector>

#include "util/args.h"

namespace wlgen::cli {

/// The wlgen command table — the single source of truth for what each
/// subcommand accepts.  Both the parser contract (require_known sets, the
/// boolean-flag set) and every usage/help string are derived from these
/// specs, so the CLI's help can never drift from what it parses
/// (tests/scenario_test.cpp pins the coverage).
const std::vector<util::CommandSpec>& command_specs();

/// Spec for one command; throws std::invalid_argument on an unknown name.
const util::CommandSpec& command_spec(const std::string& name);

/// Union of every command's boolean flags (+ the implicit --help) — the set
/// Args::parse needs so boolean flags never swallow the next token.
const std::set<std::string>& boolean_flags();

}  // namespace wlgen::cli
