// wlgen — command-line driver for the user-oriented synthetic workload
// generator.  Wraps the three paper components plus the analyzer, the trace
// replayer, the experiment harness and the declarative scenario subsystem.
//
// Usage text is GENERATED from the command table in tools/cli_spec.{h,cpp}
// — the same specs drive Args::require_known and the boolean-flag set, so
// the help can never drift from what the parser accepts (run `wlgen --help`
// or `wlgen <command> --help`; coverage pinned by tests/scenario_test.cpp).
//
// `run --shards` routes through runner::ShardedRunner (independent user
// universes, merged deterministically — DESIGN.md "Sharded runner");
// `run --contended` routes through runner::ContendedRunner (shared-machine
// sweep — DESIGN.md "Contended runner"); without either the classic
// shared-machine single-Simulation path runs.  `scenario run` compiles
// declarative `.scn` files onto the same paths (DESIGN.md "Scenario
// subsystem", reference in docs/SCENARIOS.md).
//
// Exit status: 0 on success, 1 on bad usage or I/O failure; `experiments
// --check` also exits 1 when any experiment's verdict is FAIL.

#include <atomic>
#include <chrono>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/log_sink.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/spec.h"
#include "core/usim.h"
#include "exp/harness.h"
#include "experiments.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "runner/contended_runner.h"
#include "runner/pool.h"
#include "runner/sharded_runner.h"
#include "scenario/run.h"
#include "scenario/spec.h"
#include "tools/cli_spec.h"
#include "tools/lint/lint_rules.h"
#include "util/args.h"
#include "util/ascii_plot.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/svg.h"
#include "util/table.h"
#include "util/version.h"

namespace {

using namespace wlgen;
using util::Args;

int usage() {
  std::cerr << util::render_usage("wlgen", cli::command_specs());
  return 1;
}

std::unique_ptr<fsmodel::FileSystemModel> make_model(const std::string& name,
                                                     sim::Simulation& simulation) {
  // One nfs|local|wholefile dispatch table for both CLI paths.
  return runner::model_factory_by_name(name)(simulation);
}

/// The `run` command's --metrics/--trace/--trace-events/--progress flags as
/// an ObsConfig (everything off when none are given).
obs::ObsConfig obs_from_args(const Args& args, const std::string& label) {
  obs::ObsConfig obs;
  obs.metrics_file = args.get("metrics", "");
  obs.trace_file = args.get("trace", "");
  obs.trace_events = args.count("trace-events", 65536);
  obs.progress = args.boolean("progress");
  obs.label = label;
  return obs;
}

/// Writes the --metrics / --trace artifacts of one labelled run.
void write_obs_artifacts(const obs::ObsConfig& obs, const obs::Registry& registry,
                         const obs::RunTrace& trace, double wall_ms) {
  if (obs.metrics()) {
    util::JsonValue doc = obs::metrics_document(obs.label, wall_ms);
    obs::add_metrics_group(doc, obs.label, registry);
    util::write_text_file(obs.metrics_file, doc.dump());
    std::cout << "metrics report written to " << obs.metrics_file << "\n";
  }
  if (obs.trace()) {
    util::write_text_file(obs.trace_file,
                          obs::chrome_trace_json(obs::run_trace_groups(obs.label, trace)));
    std::cout << "trace written to " << obs.trace_file << "\n";
  }
}

/// One-line pool utilization summary (collected only when obs is on).
void print_pool_utilization(const runner::PoolObs& pool) {
  if (pool.workers.empty()) return;
  const double busy = static_cast<double>(pool.busy_ns());
  const double total = busy + static_cast<double>(pool.idle_ns());
  std::cout << "pool: " << pool.workers.size() << " workers, " << pool.jobs() << " jobs, "
            << util::TextTable::num(total > 0.0 ? 100.0 * busy / total : 0.0, 1)
            << "% busy\n";
}

int cmd_gds(const Args& args) {
  if (args.positional.empty()) return usage();
  core::DistributionSpecifier gds;
  gds.load_spec_text(util::read_text_file(args.positional[0]));

  util::TextTable table({"name", "mean", "stddev", "spec"});
  for (const auto& name : gds.names()) {
    const auto d = gds.get(name);
    table.add_row({name, util::TextTable::num(d->mean(), 3),
                   util::TextTable::num(d->stddev(), 3), core::serialize_distribution(*d)});
  }
  std::cout << table.render();

  if (args.flags.count("plot")) {
    std::cout << "\n" << gds.render_ascii(args.get("plot", ""));
  }
  if (args.flags.count("cdf")) {
    const std::size_t points = args.count("points", 64);
    std::cout << "\n# CDF table for " << args.get("cdf", "") << "\n"
              << gds.cdf_table(args.get("cdf", ""), points).serialize();
  }
  return 0;
}

void print_analysis(core::LogReader& reader) {
  const core::UsageAnalyzer analyzer(reader);
  util::TextTable ops({"op", "count", "access size mean(std)", "response us mean(std)"});
  for (const auto& [op, s] : analyzer.per_op_stats()) {
    ops.add_row({fsmodel::to_string(op), std::to_string(s.response_us.count()),
                 s.access_size.count() ? s.access_size.mean_std_string() : "-",
                 s.response_us.mean_std_string()});
  }
  std::cout << ops.render() << "\n";

  util::TextTable summary({"metric", "value"});
  summary.add_row({"system calls", std::to_string(analyzer.op_count())});
  summary.add_row({"sessions", std::to_string(analyzer.sessions().size())});
  summary.add_row(
      {"access size B mean(std)",
       analyzer.access_size_stats().count() ? analyzer.access_size_stats().mean_std_string() : "-"});
  summary.add_row({"response us mean(std)", analyzer.response_stats().mean_std_string()});
  summary.add_row(
      {"response per byte us", util::TextTable::num(analyzer.response_per_byte_us(), 4)});
  std::cout << summary.render();
}

void print_analysis(const core::UsageLog& log) {
  core::MemoryLogReader reader(log);
  print_analysis(reader);
}

/// Sharded path: K independent Simulation shards on a worker pool, merged
/// deterministically (bit-identical for any --shards/--threads choice).
int cmd_run_sharded(const Args& args, std::size_t users, std::size_t sessions,
                    std::uint64_t seed, core::Population population,
                    core::UsimConfig usim_config) {
  runner::RunnerConfig config;
  config.num_users = users;
  config.shards = args.count("shards", 1);
  config.threads = args.count("threads", 0);
  config.seed = seed;
  config.usim = std::move(usim_config);
  config.usim.sessions_per_user = sessions;
  config.population = std::move(population);
  config.model_factory = runner::model_factory_by_name(args.get("model", "nfs"));
  config.obs = obs_from_args(args, "run --shards");

  // Spill flags imply each other upward: --resume needs checkpoints, and
  // --checkpoint/--spool-dir only mean anything with spilling on.
  const bool checkpoint = args.boolean("checkpoint") || args.boolean("resume");
  if (args.boolean("spill") || args.flags.count("spool-dir") || checkpoint) {
    config.spill.enabled = true;
    config.spill.spool_dir = args.get("spool-dir", ".wlgen-spool/cli-run");
    config.spill.checkpoint = checkpoint;
    config.spill.resume = args.boolean("resume");
    config.spill.config_tag = "cli model=" + args.get("model", "nfs") + " heavy=" +
                              args.get("heavy", "1") + " markov=" + args.get("markov", "-1") +
                              " pattern=" + args.get("pattern", "seq");
  }

  runner::ShardedRunner run(std::move(config));
  const runner::RunnerResult result = run.run();

  std::cout << "model: " << args.get("model", "nfs") << "  users: " << users << "  shards: "
            << result.shards.size() << "  sessions: " << result.sessions_completed
            << "  longest user timeline: " << result.max_simulated_us / 1e6 << " s  wall: "
            << result.wall_ms << " ms\n\n";

  util::TextTable shards({"shard", "users", "syscalls", "events", "wall ms"});
  for (const auto& s : result.shards) {
    shards.add_row({std::to_string(s.shard),
                    std::to_string(s.range.begin) + ".." + std::to_string(s.range.end),
                    std::to_string(s.ops), std::to_string(s.events),
                    util::TextTable::num(s.wall_ms, 1)});
  }
  std::cout << shards.render() << "\n";
  if (!result.spilled_runs.empty()) {
    std::uint64_t spilled_bytes = 0;
    std::uint64_t spilled_records = 0;
    for (const auto& r : result.spilled_runs) {
      spilled_bytes += r.bytes;
      spilled_records += r.records;
    }
    std::cout << "spill: " << spilled_records << " records in " << result.spilled_runs.size()
              << " sorted runs (" << util::TextTable::num(spilled_bytes / (1024.0 * 1024.0), 1)
              << " MiB) under " << run.config().spill.spool_dir << "\n";
    if (run.config().spill.checkpoint) {
      std::cout << "checkpoints: " << result.checkpoints_written << " written, "
                << result.shards_resumed << " shard(s) resumed\n";
    }
    std::cout << "\n";
  }
  {
    // Uniform analysis path: a k-way merge cursor over the spilled runs, or
    // a cursor over the in-RAM log — identical streams either way.
    auto reader = result.open_log_reader();
    print_analysis(*reader);
  }

  if (args.boolean("verify-merge")) {
    auto reader = result.open_log_reader();
    if (!runner::is_merge_ordered(*reader)) {
      std::cerr << "merge contract violated: log is not (time, user) ordered\n";
      return 1;
    }
    std::cout << "\nmerge contract verified: " << result.total_ops
              << " records in (time, user) order\n";
  }
  if (args.flags.count("log")) {
    std::ostringstream text;
    auto reader = result.open_log_reader();
    core::write_log_text(*reader, text);
    util::write_text_file(args.get("log", ""), text.str());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  if (run.config().obs.collect()) {
    std::cout << "\n";
    print_pool_utilization(result.pool);
    write_obs_artifacts(run.config().obs, result.registry, result.trace, result.wall_ms);
  }
  return 0;
}

/// Contended path: one shared-machine Simulation per (load point x
/// replication) job, fanned out over the worker pool and merged
/// deterministically (bit-identical for any --threads choice).
int cmd_run_contended(const Args& args, std::size_t sessions, std::uint64_t seed,
                      core::Population population, core::UsimConfig usim_config) {
  if (args.flags.count("log")) {
    throw std::invalid_argument(
        "--contended collects cross-replication aggregates only (no merged usage log); "
        "drop --log or use the classic/sharded paths");
  }
  if (args.boolean("verify-merge")) {
    throw std::invalid_argument(
        "--verify-merge checks the sharded runner's merged log; contended runs have no "
        "merged log (thread-invariance is pinned by runner_test instead)");
  }
  if (args.flags.count("users") && args.flags.count("users-sweep")) {
    throw std::invalid_argument("--users and --users-sweep are both load-point selectors; "
                                "pick one");
  }
  if (args.boolean("spill") || args.boolean("checkpoint") || args.boolean("resume") ||
      args.flags.count("spool-dir")) {
    throw std::invalid_argument(
        "--spill/--spool-dir/--checkpoint/--resume belong to the sharded runner's "
        "streamed log; contended runs keep no log (use --shards)");
  }
  runner::ContendedConfig config;
  // Explicit --users N without a sweep runs that single load point.
  const std::string default_sweep =
      args.flags.count("users") && !args.flags.count("users-sweep")
          ? args.get("users", "1")
          : "1:6:1";
  config.user_points = scenario::parse_user_sweep(args.get("users-sweep", default_sweep));
  config.replications = args.count("replications", 3);
  config.threads = args.count("threads", 0);
  config.seed = seed;
  config.usim = std::move(usim_config);
  config.usim.sessions_per_user = sessions;
  config.population = std::move(population);
  config.model_factory = runner::model_factory_by_name(args.get("model", "nfs"));
  config.obs = obs_from_args(args, "run --contended");

  runner::ContendedRunner run(std::move(config));
  const runner::ContendedResult result = run.run();

  std::cout << "model: " << args.get("model", "nfs") << "  contended sweep: "
            << result.points.size() << " load points x " << run.config().replications
            << " replications  syscalls: " << result.total_ops << "  wall: " << result.wall_ms
            << " ms\n\n";

  util::TextTable points({"users", "us/byte (pooled)", "mean +/- ci95", "response us mean(std)",
                          "syscalls", "sessions"});
  for (const auto& p : result.points) {
    points.add_row({std::to_string(p.users),
                    util::TextTable::num(p.stats.response_per_byte_us(), 4),
                    util::TextTable::num(p.response_per_byte.mean, 4) + " +/- " +
                        util::TextTable::num(p.response_per_byte.half_width, 4),
                    p.stats.response_us().mean_std_string(),
                    std::to_string(p.total_ops), std::to_string(p.sessions_completed)});
  }
  std::cout << points.render();
  if (run.config().obs.collect()) {
    std::cout << "\n";
    print_pool_utilization(result.pool);
    write_obs_artifacts(run.config().obs, result.registry, result.trace, result.wall_ms);
  }
  return 0;
}

int cmd_run(const Args& args) {
  if (!args.positional.empty()) {
    throw std::invalid_argument("unexpected argument '" + args.positional.front() +
                                "' (run takes only --flags)");
  }
  const std::size_t users = args.count("users", 1);
  const std::size_t sessions = args.count("sessions", 50);
  const auto seed = static_cast<std::uint64_t>(args.count("seed", 1991));
  const double heavy = args.number("heavy", 1.0);

  core::Population population = core::mixed_population(heavy);
  if (args.flags.count("spec")) {
    // Override think time / access size from a GDS spec file when present.
    core::DistributionSpecifier gds;
    gds.load_spec_text(util::read_text_file(args.get("spec", "")));
    core::apply_gds_overrides(population, gds);
  }

  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.seed = seed;
  config.markov_persistence = args.number("markov", -1.0);
  config.windows_per_user = args.count("windows", 1);
  const std::string pattern = args.get("pattern", "seq");
  if (pattern == "random") {
    config.pattern = core::AccessPattern::uniform_random;
  } else if (pattern == "zipf") {
    config.pattern = core::AccessPattern::zipf_block;
  } else if (pattern != "seq") {
    throw std::invalid_argument("unknown pattern '" + pattern + "' (seq|random|zipf)");
  }

  if (args.boolean("contended")) {
    if (args.flags.count("shards")) {
      throw std::invalid_argument("--contended and --shards are different run modes "
                                  "(see DESIGN.md); pick one");
    }
    return cmd_run_contended(args, sessions, seed, std::move(population), std::move(config));
  }
  if (args.flags.count("shards")) {
    return cmd_run_sharded(args, users, sessions, seed, std::move(population),
                           std::move(config));
  }
  if (args.flags.count("threads") || args.boolean("verify-merge") ||
      args.flags.count("replications") || args.flags.count("users-sweep") ||
      args.boolean("spill") || args.flags.count("spool-dir") ||
      args.boolean("checkpoint") || args.boolean("resume")) {
    // Guard against silently switching semantics: the classic path is one
    // shared-machine Simulation; parallel execution exists only under the
    // sharded or contended runner models.
    throw std::invalid_argument(
        "--threads/--verify-merge/--spill/--spool-dir/--checkpoint/--resume require "
        "--shards, and --replications/--users-sweep require --contended (see DESIGN.md)");
  }

  // Classic-path observability: the merged log survives the run, so metrics
  // and op spans are tallied post-hoc from it; only model-stage spans (the
  // thread-local trace slot) and the heartbeat hook in live.
  const auto wall_start = std::chrono::steady_clock::now();
  const obs::ObsConfig obs_cfg = obs_from_args(args, "run");
  obs::RunTrace run_trace;
  if (obs_cfg.trace()) {
    const std::size_t share = obs::ring_share(obs_cfg.trace_events / 2, 1);
    run_trace.ops = obs::TraceRing(share);
    run_trace.stages = obs::TraceRing(share);
  }
  obs::ScopedStageTrace stage_trace(obs_cfg.trace() ? &run_trace.stages : nullptr);
  std::unique_ptr<obs::ProgressReporter> progress;
  if (obs_cfg.progress) {
    obs::ProgressReporter::Options popt;
    popt.label = "run";
    popt.unit = "ops";
    progress = std::make_unique<obs::ProgressReporter>(std::move(popt));
    config.on_record = [&progress](const core::OpRecord& record) {
      progress->advance(1, 0, 0.0);
      progress->note_sim_time(record.issue_time_us + record.response_us);
    };
  }

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto model = make_model(args.get("model", "nfs"), simulation);

  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UserSimulator usim(simulation, fsys, *model, manifest, population, config);
  usim.run();
  if (progress) progress->stop();

  std::cout << "model: " << model->name() << "  users: " << users << "  sessions: "
            << usim.sessions_completed() << "  simulated: " << simulation.now() / 1e6
            << " s\n\n";
  print_analysis(usim.log());
  std::cout << "\n" << model->stats_summary();

  if (args.flags.count("log")) {
    util::write_text_file(args.get("log", ""), usim.log().serialize());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  if (obs_cfg.collect()) {
    obs::SimSample sample;
    sample.sim_events = simulation.events_processed();
    sample.heap_high_water = simulation.arena_high_water();
    sample.rng_draws = usim.rng_draws();
    sample.sessions = usim.sessions_completed();
    for (const auto& record : usim.log().records()) {
      sample.ops.add(record);
      if (obs_cfg.trace()) obs::record_op(run_trace.ops, record);
    }
    obs::Registry registry;
    sample.export_into(registry);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
    std::cout << "\n";
    write_obs_artifacts(obs_cfg, registry, run_trace, wall_ms);
  }
  return 0;
}

/// The paper-expectation harness: runs the 23 registered figure/table
/// experiments, grades them PASS/WARN/FAIL, and writes the artifact set.
int cmd_experiments(const Args& args) {
  if (!args.positional.empty()) {
    // `experiments fig5_1` almost certainly meant `--only fig5_1`; running
    // all 23 instead would silently ignore the selection.
    throw std::invalid_argument("unexpected argument '" + args.positional.front() +
                                "' (to select experiments use --only id[,id...])");
  }
  exp::Registry& registry = exp::Registry::global();
  if (registry.size() == 0) bench::register_all_experiments(registry);

  if (args.boolean("list")) {
    util::TextTable table({"id", "paper artefact", "title"});
    for (const auto& e : registry.all()) {
      table.add_row({e.id, e.artifact.empty() ? e.id : e.artifact, e.title});
    }
    std::cout << table.render();
    return 0;
  }

  exp::HarnessOptions options;
  options.check = args.boolean("check");
  if (args.flags.count("only")) {
    for (const auto& id : util::split(args.get("only", ""), ',')) {
      if (!id.empty()) options.only.push_back(id);
    }
  }
  options.out_dir = args.get("out", "");
  options.scale = args.number("scale", 1.0);
  options.seed = static_cast<std::uint64_t>(args.count("seed", 1991));
  options.threads = args.count("threads", 0);
  options.replications = args.count("replications", 3);
  options.verbose = args.boolean("verbose");
  options.progress = args.boolean("progress");

  const exp::HarnessSummary summary = exp::run_experiments(registry, options);
  return args.boolean("check") && summary.any_fail() ? 1 : 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const core::UsageLog log = core::UsageLog::parse(util::read_text_file(args.positional[0]));
  print_analysis(log);
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.positional.empty()) return usage();
  const core::UsageLog trace = core::UsageLog::parse(util::read_text_file(args.positional[0]));

  sim::Simulation simulation;
  auto model = make_model(args.get("model", "nfs"), simulation);
  core::TraceReplayer replayer(simulation, *model, trace);
  core::TraceReplayer::Options options;
  options.preserve_timing = !args.boolean("closed-loop");
  options.time_scale = args.number("scale", 1.0);
  const core::UsageLog replayed = replayer.run(options);

  std::cout << "replayed " << replayer.ops_replayed() << " ops ("
            << (options.preserve_timing ? "open" : "closed") << " loop) on " << model->name()
            << "\n\n";
  print_analysis(replayed);
  return 0;
}

/// `wlgen scenario run <file.scn>...` executes declarative scenarios on the
/// sharded / contended / replay paths; `--list` surveys the committed
/// library, `--print` echoes a parsed spec (format: docs/SCENARIOS.md).
int cmd_scenario(const Args& args) {
  if (args.boolean("list")) {
    const std::string dir = args.get("dir", "scenarios");
    util::TextTable table({"file", "name", "mode", "models", "description"});
    for (const auto& file : scenario::scenario_files(dir)) {
      const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse_file(file);
      std::vector<std::string> models;
      for (const auto& model : spec.models) models.push_back(model.name);
      table.add_row({file, spec.name, scenario::to_string(spec.mode),
                     util::join(models, ","), spec.description});
    }
    std::cout << table.render();
    return 0;
  }
  if (args.flags.count("print")) {
    std::cout << scenario::ScenarioSpec::parse_file(args.get("print", "")).summary();
    return 0;
  }
  if (args.positional.empty() || args.positional.front() != "run") {
    std::cerr << util::render_command_help("wlgen", cli::command_spec("scenario"));
    return 1;
  }
  if (args.positional.size() < 2) {
    throw std::invalid_argument("scenario run needs at least one <file.scn>");
  }

  scenario::RunOptions options;
  if (args.flags.count("threads")) options.threads = args.count("threads", 0);
  if (args.flags.count("metrics")) options.metrics_file = args.get("metrics", "");
  if (args.flags.count("trace")) options.trace_file = args.get("trace", "");
  if (args.flags.count("trace-events")) {
    options.trace_events = args.count("trace-events", 65536);
  }
  if (args.boolean("progress")) options.progress = true;
  if (args.positional.size() > 2 &&
      (!options.metrics_file.empty() || !options.trace_file.empty())) {
    // One override path cannot hold several scenarios' artifacts; the files
    // would silently clobber each other.
    throw std::invalid_argument(
        "--metrics/--trace override a single output file; run one scenario at a "
        "time or set per-scenario obs.metrics/obs.trace keys instead");
  }

  // Parse every spec up front so a bad file fails before any run starts,
  // then fan the files over the worker pool.  Per-file console output is
  // buffered into per-index slots and printed in argument order, so stdout
  // is byte-identical to the old serial loop for any thread count.
  std::vector<scenario::ScenarioSpec> specs;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    specs.push_back(scenario::ScenarioSpec::parse_file(args.positional[i]));
  }

  const std::size_t total_threads = runner::resolve_pool_threads(
      options.threads.value_or(0), std::numeric_limits<std::size_t>::max());
  const std::size_t outer = std::min(total_threads, specs.size());
  scenario::RunOptions per_file = options;
  if (specs.size() > 1) {
    // Multi-file runs divide the thread budget between the files in flight;
    // run_scenario subdivides each file's share across the spec's backends
    // (docs/SCENARIOS.md "Parallelism and --threads").
    per_file.threads = std::max<std::size_t>(1, total_threads / std::max<std::size_t>(1, outer));
  }

  std::vector<std::string> reports(specs.size());
  runner::drain_pool(specs.size(), outer, [&]() -> runner::PoolJob {
    return [&](std::size_t index, const std::atomic<bool>& /*cancelled*/) {
      const scenario::ScenarioSpec& spec = specs[index];
      const scenario::ScenarioOutcome outcome = scenario::run_scenario(spec, per_file);
      std::ostringstream out;
      out << outcome.report << "\nwall: " << util::TextTable::num(outcome.wall_ms, 1)
          << " ms\n";
      if (!spec.log_file.empty()) out << "usage log written to " << spec.log_file << "\n";
      if (!spec.stats_file.empty()) {
        out << "stats digest written to " << spec.stats_file << "\n";
      }
      if (!outcome.metrics_json.empty()) {
        out << "metrics report written to "
            << (options.metrics_file.empty() ? spec.obs_metrics : options.metrics_file)
            << "\n";
      }
      if (!outcome.trace_json.empty()) {
        out << "trace written to "
            << (options.trace_file.empty() ? spec.obs_trace : options.trace_file) << "\n";
      }
      reports[index] = out.str();
    };
  });
  for (std::size_t i = 0; i < reports.size(); ++i) {
    std::cout << reports[i];
    if (i + 1 < reports.size()) std::cout << "\n";
  }
  return 0;
}

/// `wlgen lint` — the determinism linter (DESIGN.md "Correctness tooling").
/// Exit 0 on a clean tree, 1 with file:line diagnostics on any violation.
int cmd_lint(const Args& args) {
  if (!args.positional.empty()) {
    throw std::invalid_argument("unexpected argument '" + args.positional.front() +
                                "' (lint takes only --flags; the tree is --root)");
  }
  if (args.boolean("rules")) {
    std::cout << lint::render_rule_table();
    return 0;
  }
  return lint::run_lint(args.get("root", "src"), lint::default_rules());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << util::render_usage("wlgen", cli::command_specs());
    return 0;
  }
  bool known_command = false;
  for (const auto& spec : cli::command_specs()) known_command |= spec.name == command;
  if (!known_command) return usage();

  try {
    // Inside the try: parse itself can throw (e.g. `--contended=1` gives a
    // boolean flag a value) and must exit 1 with a message, not abort.
    const Args args = Args::parse(argc, argv, 2, cli::boolean_flags());
    const util::CommandSpec& spec = cli::command_spec(command);
    if (args.boolean("help")) {
      std::cout << util::render_command_help("wlgen", spec);
      return 0;
    }
    args.require_known(spec.flag_names());
    if (command == "gds") return cmd_gds(args);
    if (command == "run") return cmd_run(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "experiments") return cmd_experiments(args);
    if (command == "scenario") return cmd_scenario(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "version") {
      std::cout << util::version_line() << "\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "wlgen " << command << ": " << e.what() << "\n";
    return 1;
  }
  return usage();
}
