// wlgen — command-line driver for the user-oriented synthetic workload
// generator.  Wraps the three paper components plus the analyzer and the
// trace replayer:
//
//   wlgen gds <spec-file> [--plot NAME] [--cdf NAME] [--points N]
//   wlgen run [--users N] [--sessions M] [--model nfs|local|wholefile]
//             [--heavy F] [--seed S] [--markov P] [--pattern seq|random|zipf]
//             [--windows W] [--spec FILE] [--log OUT.tsv]
//             [--shards K] [--threads T] [--verify-merge]
//   wlgen analyze <log.tsv>
//   wlgen replay <log.tsv> [--model ...] [--closed-loop] [--scale X]
//   wlgen experiments [--only id[,id...]] [--check] [--list] [--out DIR]
//                     [--scale F] [--seed S] [--threads N] [--verbose]
//
// --shards routes the run through runner::ShardedRunner (independent user
// universes, merged deterministically — see DESIGN.md "Sharded runner");
// without it the classic shared-machine single-Simulation path runs.
//
// `experiments` runs the registered paper figure/table experiments on the
// exp:: harness (DESIGN.md "Experiment harness"), writing JSON/SVG artifacts
// plus EXPERIMENTS.md into --out (default $WLGEN_OUT or ./artifacts).
//
// Exit status: 0 on success, 1 on bad usage or I/O failure; `experiments
// --check` also exits 1 when any experiment's verdict is FAIL.

#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/spec.h"
#include "core/usim.h"
#include "exp/harness.h"
#include "experiments.h"
#include "runner/sharded_runner.h"
#include "util/ascii_plot.h"
#include "util/strings.h"
#include "util/svg.h"
#include "util/table.h"

namespace {

using namespace wlgen;

/// Tiny flag parser: positional arguments plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv, int start) {
    Args out;
    for (int i = start; i < argc; ++i) {
      const std::string arg = argv[i];
      if (util::starts_with(arg, "--")) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && !util::starts_with(argv[i + 1], "--")) {
          out.flags[key] = argv[++i];
        } else {
          out.flags[key] = "true";  // boolean flag
        }
      } else {
        out.positional.push_back(arg);
      }
    }
    return out;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double number(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const auto v = util::parse_double(it->second);
    if (!v) throw std::invalid_argument("flag --" + key + " expects a number");
    return *v;
  }
  bool boolean(const std::string& key) const { return flags.count(key) != 0; }
};

int usage() {
  std::cerr <<
      "usage:\n"
      "  wlgen gds <spec-file> [--plot NAME] [--cdf NAME] [--points N]\n"
      "  wlgen run [--users N] [--sessions M] [--model nfs|local|wholefile]\n"
      "            [--heavy F] [--seed S] [--markov P] [--pattern seq|random|zipf]\n"
      "            [--windows W] [--spec FILE] [--log OUT.tsv]\n"
      "            [--shards K] [--threads T] [--verify-merge]\n"
      "  wlgen analyze <log.tsv>\n"
      "  wlgen replay <log.tsv> [--model M] [--closed-loop] [--scale X]\n"
      "  wlgen experiments [--only id[,id...]] [--check] [--list] [--out DIR]\n"
      "                    [--scale F] [--seed S] [--threads N] [--verbose]\n";
  return 1;
}

std::unique_ptr<fsmodel::FileSystemModel> make_model(const std::string& name,
                                                     sim::Simulation& simulation) {
  // One nfs|local|wholefile dispatch table for both CLI paths.
  return runner::model_factory_by_name(name)(simulation);
}

int cmd_gds(const Args& args) {
  if (args.positional.empty()) return usage();
  core::DistributionSpecifier gds;
  gds.load_spec_text(util::read_text_file(args.positional[0]));

  util::TextTable table({"name", "mean", "stddev", "spec"});
  for (const auto& name : gds.names()) {
    const auto d = gds.get(name);
    table.add_row({name, util::TextTable::num(d->mean(), 3),
                   util::TextTable::num(d->stddev(), 3), core::serialize_distribution(*d)});
  }
  std::cout << table.render();

  if (args.flags.count("plot")) {
    std::cout << "\n" << gds.render_ascii(args.get("plot", ""));
  }
  if (args.flags.count("cdf")) {
    const auto points = static_cast<std::size_t>(args.number("points", 64));
    std::cout << "\n# CDF table for " << args.get("cdf", "") << "\n"
              << gds.cdf_table(args.get("cdf", ""), points).serialize();
  }
  return 0;
}

void print_analysis(const core::UsageLog& log) {
  const core::UsageAnalyzer analyzer(log);
  util::TextTable ops({"op", "count", "access size mean(std)", "response us mean(std)"});
  for (const auto& [op, s] : analyzer.per_op_stats()) {
    ops.add_row({fsmodel::to_string(op), std::to_string(s.response_us.count()),
                 s.access_size.count() ? s.access_size.mean_std_string() : "-",
                 s.response_us.mean_std_string()});
  }
  std::cout << ops.render() << "\n";

  util::TextTable summary({"metric", "value"});
  summary.add_row({"system calls", std::to_string(analyzer.op_count())});
  summary.add_row({"sessions", std::to_string(analyzer.sessions().size())});
  summary.add_row(
      {"access size B mean(std)",
       analyzer.access_size_stats().count() ? analyzer.access_size_stats().mean_std_string() : "-"});
  summary.add_row({"response us mean(std)", analyzer.response_stats().mean_std_string()});
  summary.add_row(
      {"response per byte us", util::TextTable::num(analyzer.response_per_byte_us(), 4)});
  std::cout << summary.render();
}

/// Sharded path: K independent Simulation shards on a worker pool, merged
/// deterministically (bit-identical for any --shards/--threads choice).
int cmd_run_sharded(const Args& args, std::size_t users, std::size_t sessions,
                    std::uint64_t seed, core::Population population,
                    core::UsimConfig usim_config) {
  runner::RunnerConfig config;
  config.num_users = users;
  config.shards = static_cast<std::size_t>(args.number("shards", 1));
  config.threads = static_cast<std::size_t>(args.number("threads", 0));
  config.seed = seed;
  config.usim = std::move(usim_config);
  config.usim.sessions_per_user = sessions;
  config.population = std::move(population);
  config.model_factory = runner::model_factory_by_name(args.get("model", "nfs"));

  runner::ShardedRunner run(std::move(config));
  const runner::RunnerResult result = run.run();

  std::cout << "model: " << args.get("model", "nfs") << "  users: " << users << "  shards: "
            << result.shards.size() << "  sessions: " << result.sessions_completed
            << "  longest user timeline: " << result.max_simulated_us / 1e6 << " s  wall: "
            << result.wall_ms << " ms\n\n";

  util::TextTable shards({"shard", "users", "syscalls", "events", "wall ms"});
  for (const auto& s : result.shards) {
    shards.add_row({std::to_string(s.shard),
                    std::to_string(s.range.begin) + ".." + std::to_string(s.range.end),
                    std::to_string(s.ops), std::to_string(s.events),
                    util::TextTable::num(s.wall_ms, 1)});
  }
  std::cout << shards.render() << "\n";
  print_analysis(result.log);

  if (args.boolean("verify-merge")) {
    if (!runner::is_merge_ordered(result.log)) {
      std::cerr << "merge contract violated: log is not (time, user) ordered\n";
      return 1;
    }
    std::cout << "\nmerge contract verified: " << result.log.size()
              << " records in (time, user) order\n";
  }
  if (args.flags.count("log")) {
    util::write_text_file(args.get("log", ""), result.log.serialize());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto users = static_cast<std::size_t>(args.number("users", 1));
  const auto sessions = static_cast<std::size_t>(args.number("sessions", 50));
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1991));
  const double heavy = args.number("heavy", 1.0);

  core::Population population = core::mixed_population(heavy);
  if (args.flags.count("spec")) {
    // Override think time / access size from a GDS spec file when present.
    core::DistributionSpecifier gds;
    gds.load_spec_text(util::read_text_file(args.get("spec", "")));
    for (auto& group : population.groups) {
      if (gds.contains("think_time")) group.type.think_time_us = gds.get("think_time");
      if (gds.contains("access_size")) group.type.access_size_bytes = gds.get("access_size");
    }
  }

  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.seed = seed;
  config.markov_persistence = args.number("markov", -1.0);
  config.windows_per_user = static_cast<std::size_t>(args.number("windows", 1));
  const std::string pattern = args.get("pattern", "seq");
  if (pattern == "random") {
    config.pattern = core::AccessPattern::uniform_random;
  } else if (pattern == "zipf") {
    config.pattern = core::AccessPattern::zipf_block;
  } else if (pattern != "seq") {
    throw std::invalid_argument("unknown pattern '" + pattern + "' (seq|random|zipf)");
  }

  if (args.flags.count("shards")) {
    return cmd_run_sharded(args, users, sessions, seed, std::move(population),
                           std::move(config));
  }
  if (args.flags.count("threads") || args.boolean("verify-merge")) {
    // Guard against silently switching semantics: the classic path is one
    // shared-machine Simulation; parallel execution exists only under the
    // sharded runner's independent-universe model.
    throw std::invalid_argument("--threads/--verify-merge require --shards (see DESIGN.md)");
  }

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto model = make_model(args.get("model", "nfs"), simulation);

  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UserSimulator usim(simulation, fsys, *model, manifest, population, config);
  usim.run();

  std::cout << "model: " << model->name() << "  users: " << users << "  sessions: "
            << usim.sessions_completed() << "  simulated: " << simulation.now() / 1e6
            << " s\n\n";
  print_analysis(usim.log());
  std::cout << "\n" << model->stats_summary();

  if (args.flags.count("log")) {
    util::write_text_file(args.get("log", ""), usim.log().serialize());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  return 0;
}

/// The paper-expectation harness: runs the 23 registered figure/table
/// experiments, grades them PASS/WARN/FAIL, and writes the artifact set.
int cmd_experiments(const Args& args) {
  exp::Registry& registry = exp::Registry::global();
  if (registry.size() == 0) bench::register_all_experiments(registry);

  if (args.boolean("list")) {
    util::TextTable table({"id", "paper artefact", "title"});
    for (const auto& e : registry.all()) {
      table.add_row({e.id, e.artifact.empty() ? e.id : e.artifact, e.title});
    }
    std::cout << table.render();
    return 0;
  }

  exp::HarnessOptions options;
  options.check = args.boolean("check");
  if (args.flags.count("only")) {
    for (const auto& id : util::split(args.get("only", ""), ',')) {
      if (!id.empty()) options.only.push_back(id);
    }
  }
  options.out_dir = args.get("out", "");
  options.scale = args.number("scale", 1.0);
  options.seed = static_cast<std::uint64_t>(args.number("seed", 1991));
  options.threads = static_cast<std::size_t>(args.number("threads", 0));
  options.verbose = args.boolean("verbose");

  const exp::HarnessSummary summary = exp::run_experiments(registry, options);
  return args.boolean("check") && summary.any_fail() ? 1 : 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const core::UsageLog log = core::UsageLog::parse(util::read_text_file(args.positional[0]));
  print_analysis(log);
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.positional.empty()) return usage();
  const core::UsageLog trace = core::UsageLog::parse(util::read_text_file(args.positional[0]));

  sim::Simulation simulation;
  auto model = make_model(args.get("model", "nfs"), simulation);
  core::TraceReplayer replayer(simulation, *model, trace);
  core::TraceReplayer::Options options;
  options.preserve_timing = !args.boolean("closed-loop");
  options.time_scale = args.number("scale", 1.0);
  const core::UsageLog replayed = replayer.run(options);

  std::cout << "replayed " << replayer.ops_replayed() << " ops ("
            << (options.preserve_timing ? "open" : "closed") << " loop) on " << model->name()
            << "\n\n";
  print_analysis(replayed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "gds") return cmd_gds(args);
    if (command == "run") return cmd_run(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "experiments") return cmd_experiments(args);
  } catch (const std::exception& e) {
    std::cerr << "wlgen " << command << ": " << e.what() << "\n";
    return 1;
  }
  return usage();
}
