// wlgen — command-line driver for the user-oriented synthetic workload
// generator.  Wraps the three paper components plus the analyzer and the
// trace replayer:
//
//   wlgen gds <spec-file> [--plot NAME] [--cdf NAME] [--points N]
//   wlgen run [--users N] [--sessions M] [--model nfs|local|wholefile]
//             [--heavy F] [--seed S] [--markov P] [--pattern seq|random|zipf]
//             [--windows W] [--spec FILE] [--log OUT.tsv]
//             [--shards K] [--threads T] [--verify-merge]
//             [--contended] [--users-sweep A:B:STEP] [--replications R]
//   wlgen analyze <log.tsv>
//   wlgen replay <log.tsv> [--model ...] [--closed-loop] [--scale X]
//   wlgen experiments [--only id[,id...]] [--check] [--list] [--out DIR]
//                     [--scale F] [--seed S] [--threads N] [--replications R]
//                     [--verbose]
//
// --shards routes the run through runner::ShardedRunner (independent user
// universes, merged deterministically — see DESIGN.md "Sharded runner");
// --contended routes it through runner::ContendedRunner (shared-machine
// sweep: all users of a load point contend inside one Simulation, load
// points x replications fan out over the worker pool — see DESIGN.md
// "Contended runner"); without either the classic shared-machine
// single-Simulation path runs.
//
// `experiments` runs the registered paper figure/table experiments on the
// exp:: harness (DESIGN.md "Experiment harness"), writing JSON/SVG artifacts
// plus EXPERIMENTS.md into --out (default $WLGEN_OUT or ./artifacts).
//
// Exit status: 0 on success, 1 on bad usage or I/O failure; `experiments
// --check` also exits 1 when any experiment's verdict is FAIL.

#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/spec.h"
#include "core/usim.h"
#include "exp/harness.h"
#include "experiments.h"
#include "runner/contended_runner.h"
#include "runner/sharded_runner.h"
#include "util/args.h"
#include "util/ascii_plot.h"
#include "util/strings.h"
#include "util/svg.h"
#include "util/table.h"

namespace {

using namespace wlgen;
using util::Args;

/// Flags that never consume a following token (util::Args boolean set).
const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {"check", "list",        "verbose",
                                              "contended", "verify-merge", "closed-loop"};
  return flags;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  wlgen gds <spec-file> [--plot NAME] [--cdf NAME] [--points N]\n"
      "  wlgen run [--users N] [--sessions M] [--model nfs|local|wholefile]\n"
      "            [--heavy F] [--seed S] [--markov P] [--pattern seq|random|zipf]\n"
      "            [--windows W] [--spec FILE] [--log OUT.tsv]\n"
      "            [--shards K] [--threads T] [--verify-merge]\n"
      "            [--contended] [--users-sweep A:B:STEP] [--replications R]\n"
      "  wlgen analyze <log.tsv>\n"
      "  wlgen replay <log.tsv> [--model M] [--closed-loop] [--scale X]\n"
      "  wlgen experiments [--only id[,id...]] [--check] [--list] [--out DIR]\n"
      "                    [--scale F] [--seed S] [--threads N] [--replications R]\n"
      "                    [--verbose]\n";
  return 1;
}

std::unique_ptr<fsmodel::FileSystemModel> make_model(const std::string& name,
                                                     sim::Simulation& simulation) {
  // One nfs|local|wholefile dispatch table for both CLI paths.
  return runner::model_factory_by_name(name)(simulation);
}

int cmd_gds(const Args& args) {
  args.require_known({"plot", "cdf", "points"});
  if (args.positional.empty()) return usage();
  core::DistributionSpecifier gds;
  gds.load_spec_text(util::read_text_file(args.positional[0]));

  util::TextTable table({"name", "mean", "stddev", "spec"});
  for (const auto& name : gds.names()) {
    const auto d = gds.get(name);
    table.add_row({name, util::TextTable::num(d->mean(), 3),
                   util::TextTable::num(d->stddev(), 3), core::serialize_distribution(*d)});
  }
  std::cout << table.render();

  if (args.flags.count("plot")) {
    std::cout << "\n" << gds.render_ascii(args.get("plot", ""));
  }
  if (args.flags.count("cdf")) {
    const std::size_t points = args.count("points", 64);
    std::cout << "\n# CDF table for " << args.get("cdf", "") << "\n"
              << gds.cdf_table(args.get("cdf", ""), points).serialize();
  }
  return 0;
}

void print_analysis(const core::UsageLog& log) {
  const core::UsageAnalyzer analyzer(log);
  util::TextTable ops({"op", "count", "access size mean(std)", "response us mean(std)"});
  for (const auto& [op, s] : analyzer.per_op_stats()) {
    ops.add_row({fsmodel::to_string(op), std::to_string(s.response_us.count()),
                 s.access_size.count() ? s.access_size.mean_std_string() : "-",
                 s.response_us.mean_std_string()});
  }
  std::cout << ops.render() << "\n";

  util::TextTable summary({"metric", "value"});
  summary.add_row({"system calls", std::to_string(analyzer.op_count())});
  summary.add_row({"sessions", std::to_string(analyzer.sessions().size())});
  summary.add_row(
      {"access size B mean(std)",
       analyzer.access_size_stats().count() ? analyzer.access_size_stats().mean_std_string() : "-"});
  summary.add_row({"response us mean(std)", analyzer.response_stats().mean_std_string()});
  summary.add_row(
      {"response per byte us", util::TextTable::num(analyzer.response_per_byte_us(), 4)});
  std::cout << summary.render();
}

/// Sharded path: K independent Simulation shards on a worker pool, merged
/// deterministically (bit-identical for any --shards/--threads choice).
int cmd_run_sharded(const Args& args, std::size_t users, std::size_t sessions,
                    std::uint64_t seed, core::Population population,
                    core::UsimConfig usim_config) {
  runner::RunnerConfig config;
  config.num_users = users;
  config.shards = args.count("shards", 1);
  config.threads = args.count("threads", 0);
  config.seed = seed;
  config.usim = std::move(usim_config);
  config.usim.sessions_per_user = sessions;
  config.population = std::move(population);
  config.model_factory = runner::model_factory_by_name(args.get("model", "nfs"));

  runner::ShardedRunner run(std::move(config));
  const runner::RunnerResult result = run.run();

  std::cout << "model: " << args.get("model", "nfs") << "  users: " << users << "  shards: "
            << result.shards.size() << "  sessions: " << result.sessions_completed
            << "  longest user timeline: " << result.max_simulated_us / 1e6 << " s  wall: "
            << result.wall_ms << " ms\n\n";

  util::TextTable shards({"shard", "users", "syscalls", "events", "wall ms"});
  for (const auto& s : result.shards) {
    shards.add_row({std::to_string(s.shard),
                    std::to_string(s.range.begin) + ".." + std::to_string(s.range.end),
                    std::to_string(s.ops), std::to_string(s.events),
                    util::TextTable::num(s.wall_ms, 1)});
  }
  std::cout << shards.render() << "\n";
  print_analysis(result.log);

  if (args.boolean("verify-merge")) {
    if (!runner::is_merge_ordered(result.log)) {
      std::cerr << "merge contract violated: log is not (time, user) ordered\n";
      return 1;
    }
    std::cout << "\nmerge contract verified: " << result.log.size()
              << " records in (time, user) order\n";
  }
  if (args.flags.count("log")) {
    util::write_text_file(args.get("log", ""), result.log.serialize());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  return 0;
}

/// Parses a --users-sweep spec: "N" (one point), "A:B" (step 1) or
/// "A:B:STEP"; throws std::invalid_argument on malformed or empty sweeps.
std::vector<std::size_t> parse_users_sweep(const std::string& spec) {
  const std::vector<std::string> parts = util::split(spec, ':');
  auto part = [&](std::size_t i) -> std::size_t {
    const auto v = util::parse_int(parts[i]);
    if (!v || *v < 0) {
      throw std::invalid_argument("--users-sweep expects A:B:STEP of non-negative integers, "
                                  "got '" + spec + "'");
    }
    return static_cast<std::size_t>(*v);
  };
  if (parts.empty() || parts.size() > 3) {
    throw std::invalid_argument("--users-sweep expects N, A:B or A:B:STEP, got '" + spec + "'");
  }
  const std::size_t lo = part(0);
  const std::size_t hi = parts.size() >= 2 ? part(1) : lo;
  const std::size_t step = parts.size() == 3 ? part(2) : 1;
  if (lo == 0 || hi < lo || step == 0) {
    throw std::invalid_argument("--users-sweep needs 1 <= A <= B and STEP >= 1, got '" + spec +
                                "'");
  }
  std::vector<std::size_t> points;
  for (std::size_t users = lo; users <= hi; users += step) points.push_back(users);
  return points;
}

/// Contended path: one shared-machine Simulation per (load point x
/// replication) job, fanned out over the worker pool and merged
/// deterministically (bit-identical for any --threads choice).
int cmd_run_contended(const Args& args, std::size_t sessions, std::uint64_t seed,
                      core::Population population, core::UsimConfig usim_config) {
  if (args.flags.count("log")) {
    throw std::invalid_argument(
        "--contended collects cross-replication aggregates only (no merged usage log); "
        "drop --log or use the classic/sharded paths");
  }
  if (args.boolean("verify-merge")) {
    throw std::invalid_argument(
        "--verify-merge checks the sharded runner's merged log; contended runs have no "
        "merged log (thread-invariance is pinned by runner_test instead)");
  }
  if (args.flags.count("users") && args.flags.count("users-sweep")) {
    throw std::invalid_argument("--users and --users-sweep are both load-point selectors; "
                                "pick one");
  }
  runner::ContendedConfig config;
  // Explicit --users N without a sweep runs that single load point.
  const std::string default_sweep =
      args.flags.count("users") && !args.flags.count("users-sweep")
          ? args.get("users", "1")
          : "1:6:1";
  config.user_points = parse_users_sweep(args.get("users-sweep", default_sweep));
  config.replications = args.count("replications", 3);
  config.threads = args.count("threads", 0);
  config.seed = seed;
  config.usim = std::move(usim_config);
  config.usim.sessions_per_user = sessions;
  config.population = std::move(population);
  config.model_factory = runner::model_factory_by_name(args.get("model", "nfs"));

  runner::ContendedRunner run(std::move(config));
  const runner::ContendedResult result = run.run();

  std::cout << "model: " << args.get("model", "nfs") << "  contended sweep: "
            << result.points.size() << " load points x " << run.config().replications
            << " replications  syscalls: " << result.total_ops << "  wall: " << result.wall_ms
            << " ms\n\n";

  util::TextTable points({"users", "us/byte (pooled)", "mean +/- ci95", "response us mean(std)",
                          "syscalls", "sessions"});
  for (const auto& p : result.points) {
    points.add_row({std::to_string(p.users),
                    util::TextTable::num(p.stats.response_per_byte_us(), 4),
                    util::TextTable::num(p.response_per_byte.mean, 4) + " +/- " +
                        util::TextTable::num(p.response_per_byte.half_width, 4),
                    p.stats.response_us().mean_std_string(),
                    std::to_string(p.total_ops), std::to_string(p.sessions_completed)});
  }
  std::cout << points.render();
  return 0;
}

int cmd_run(const Args& args) {
  args.require_known({"users", "sessions", "model", "heavy", "seed", "markov", "pattern",
                      "windows", "spec", "log", "shards", "threads", "verify-merge",
                      "contended", "users-sweep", "replications"});
  if (!args.positional.empty()) {
    throw std::invalid_argument("unexpected argument '" + args.positional.front() +
                                "' (run takes only --flags)");
  }
  const std::size_t users = args.count("users", 1);
  const std::size_t sessions = args.count("sessions", 50);
  const auto seed = static_cast<std::uint64_t>(args.count("seed", 1991));
  const double heavy = args.number("heavy", 1.0);

  core::Population population = core::mixed_population(heavy);
  if (args.flags.count("spec")) {
    // Override think time / access size from a GDS spec file when present.
    core::DistributionSpecifier gds;
    gds.load_spec_text(util::read_text_file(args.get("spec", "")));
    for (auto& group : population.groups) {
      if (gds.contains("think_time")) group.type.think_time_us = gds.get("think_time");
      if (gds.contains("access_size")) group.type.access_size_bytes = gds.get("access_size");
    }
  }

  core::UsimConfig config;
  config.num_users = users;
  config.sessions_per_user = sessions;
  config.seed = seed;
  config.markov_persistence = args.number("markov", -1.0);
  config.windows_per_user = args.count("windows", 1);
  const std::string pattern = args.get("pattern", "seq");
  if (pattern == "random") {
    config.pattern = core::AccessPattern::uniform_random;
  } else if (pattern == "zipf") {
    config.pattern = core::AccessPattern::zipf_block;
  } else if (pattern != "seq") {
    throw std::invalid_argument("unknown pattern '" + pattern + "' (seq|random|zipf)");
  }

  if (args.boolean("contended")) {
    if (args.flags.count("shards")) {
      throw std::invalid_argument("--contended and --shards are different run modes "
                                  "(see DESIGN.md); pick one");
    }
    return cmd_run_contended(args, sessions, seed, std::move(population), std::move(config));
  }
  if (args.flags.count("shards")) {
    return cmd_run_sharded(args, users, sessions, seed, std::move(population),
                           std::move(config));
  }
  if (args.flags.count("threads") || args.boolean("verify-merge") ||
      args.flags.count("replications") || args.flags.count("users-sweep")) {
    // Guard against silently switching semantics: the classic path is one
    // shared-machine Simulation; parallel execution exists only under the
    // sharded or contended runner models.
    throw std::invalid_argument(
        "--threads/--verify-merge require --shards, and --replications/--users-sweep "
        "require --contended (see DESIGN.md)");
  }

  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto model = make_model(args.get("model", "nfs"), simulation);

  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UserSimulator usim(simulation, fsys, *model, manifest, population, config);
  usim.run();

  std::cout << "model: " << model->name() << "  users: " << users << "  sessions: "
            << usim.sessions_completed() << "  simulated: " << simulation.now() / 1e6
            << " s\n\n";
  print_analysis(usim.log());
  std::cout << "\n" << model->stats_summary();

  if (args.flags.count("log")) {
    util::write_text_file(args.get("log", ""), usim.log().serialize());
    std::cout << "\nusage log written to " << args.get("log", "") << "\n";
  }
  return 0;
}

/// The paper-expectation harness: runs the 23 registered figure/table
/// experiments, grades them PASS/WARN/FAIL, and writes the artifact set.
int cmd_experiments(const Args& args) {
  args.require_known(
      {"only", "check", "list", "out", "scale", "seed", "threads", "replications", "verbose"});
  if (!args.positional.empty()) {
    // `experiments fig5_1` almost certainly meant `--only fig5_1`; running
    // all 23 instead would silently ignore the selection.
    throw std::invalid_argument("unexpected argument '" + args.positional.front() +
                                "' (to select experiments use --only id[,id...])");
  }
  exp::Registry& registry = exp::Registry::global();
  if (registry.size() == 0) bench::register_all_experiments(registry);

  if (args.boolean("list")) {
    util::TextTable table({"id", "paper artefact", "title"});
    for (const auto& e : registry.all()) {
      table.add_row({e.id, e.artifact.empty() ? e.id : e.artifact, e.title});
    }
    std::cout << table.render();
    return 0;
  }

  exp::HarnessOptions options;
  options.check = args.boolean("check");
  if (args.flags.count("only")) {
    for (const auto& id : util::split(args.get("only", ""), ',')) {
      if (!id.empty()) options.only.push_back(id);
    }
  }
  options.out_dir = args.get("out", "");
  options.scale = args.number("scale", 1.0);
  options.seed = static_cast<std::uint64_t>(args.count("seed", 1991));
  options.threads = args.count("threads", 0);
  options.replications = args.count("replications", 3);
  options.verbose = args.boolean("verbose");

  const exp::HarnessSummary summary = exp::run_experiments(registry, options);
  return args.boolean("check") && summary.any_fail() ? 1 : 0;
}

int cmd_analyze(const Args& args) {
  args.require_known({});
  if (args.positional.empty()) return usage();
  const core::UsageLog log = core::UsageLog::parse(util::read_text_file(args.positional[0]));
  print_analysis(log);
  return 0;
}

int cmd_replay(const Args& args) {
  args.require_known({"model", "closed-loop", "scale"});
  if (args.positional.empty()) return usage();
  const core::UsageLog trace = core::UsageLog::parse(util::read_text_file(args.positional[0]));

  sim::Simulation simulation;
  auto model = make_model(args.get("model", "nfs"), simulation);
  core::TraceReplayer replayer(simulation, *model, trace);
  core::TraceReplayer::Options options;
  options.preserve_timing = !args.boolean("closed-loop");
  options.time_scale = args.number("scale", 1.0);
  const core::UsageLog replayed = replayer.run(options);

  std::cout << "replayed " << replayer.ops_replayed() << " ops ("
            << (options.preserve_timing ? "open" : "closed") << " loop) on " << model->name()
            << "\n\n";
  print_analysis(replayed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2, boolean_flags());
  try {
    if (command == "gds") return cmd_gds(args);
    if (command == "run") return cmd_run(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "experiments") return cmd_experiments(args);
  } catch (const std::exception& e) {
    std::cerr << "wlgen " << command << ": " << e.what() << "\n";
    return 1;
  }
  return usage();
}
