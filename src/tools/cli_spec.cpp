#include "tools/cli_spec.h"

#include <stdexcept>

namespace wlgen::cli {

const std::vector<util::CommandSpec>& command_specs() {
  static const std::vector<util::CommandSpec> specs = {
      {"gds",
       "<spec-file>",
       "parse a distribution spec file and report/plot its entries",
       {
           {"plot", "NAME", "ASCII-plot the named distribution's density"},
           {"cdf", "NAME", "print a CDF table for the named distribution"},
           {"points", "N", "CDF table resolution (default 64)"},
       }},
      {"run",
       "",
       "generate a synthetic workload and measure it on a file-system model",
       {
           {"users", "N", "simultaneous users (default 1)"},
           {"sessions", "M", "login sessions per user (default 50)"},
           {"model", "nfs|local|wholefile", "file-system model (default nfs)"},
           {"heavy", "F", "heavy-user fraction of the population (default 1.0)"},
           {"seed", "S", "root RNG seed (default 1991)"},
           {"markov", "P", "Markov work-item persistence in [0,1); negative = independent"},
           {"pattern", "seq|random|zipf", "block access pattern (default seq)"},
           {"windows", "W", "concurrent login sessions per user (default 1)"},
           {"spec", "FILE", "GDS file overriding think_time / access_size"},
           {"log", "OUT.tsv", "write the usage log (classic and sharded paths)"},
           {"shards", "K", "run through the sharded runner with K shards"},
           {"threads", "T", "worker threads (sharded/contended; 0 = hardware)"},
           {"verify-merge", "", "check the sharded merge-ordering contract"},
           {"spill", "", "stream the sharded log to sorted disk runs (bounded RSS)"},
           {"spool-dir", "DIR", "spill run/checkpoint directory (default .wlgen-spool/cli-run)"},
           {"checkpoint", "", "persist per-shard checkpoints (implies --spill)"},
           {"resume", "", "skip shards with valid checkpoints (implies --checkpoint)"},
           {"contended", "", "run the shared-machine sweep through the contended runner"},
           {"users-sweep", "A:B:STEP", "contended load points (default 1:6:1)"},
           {"replications", "R", "contended replications per load point (default 3)"},
           {"metrics", "OUT.json", "write an observability metrics report"},
           {"trace", "OUT.json", "write a Chrome-loadable span trace"},
           {"trace-events", "N", "trace ring budget in events (default 65536)"},
           {"progress", "", "live progress heartbeat on stderr"},
       }},
      {"analyze",
       "<log.tsv>",
       "per-op and summary statistics of a recorded usage log",
       {}},
      {"replay",
       "<log.tsv>",
       "replay a recorded trace against a file-system model",
       {
           {"model", "M", "target model (default nfs)"},
           {"closed-loop", "", "issue each op after the previous completes (default: open)"},
           {"scale", "X", "stretch (>1) or compress (<1) the trace clock"},
       }},
      {"experiments",
       "",
       "run the registered paper figure/table experiments",
       {
           {"only", "id[,id...]", "run only the named experiments"},
           {"check", "", "grade against paper expectations; exit 1 on FAIL"},
           {"list", "", "list registered experiments and exit"},
           {"out", "DIR", "artifact directory (default $WLGEN_OUT or ./artifacts)"},
           {"scale", "F", "session-count scale factor (default 1.0)"},
           {"seed", "S", "root RNG seed (default 1991)"},
           {"threads", "N", "harness worker threads (0 = hardware)"},
           {"replications", "R", "contended replications per load point (default 3)"},
           {"verbose", "", "print per-experiment progress"},
           {"progress", "", "live progress heartbeat on stderr"},
       }},
      {"scenario",
       "run <file.scn>...",
       "execute declarative scenario files (see docs/SCENARIOS.md)",
       {
           {"list", "", "list the scenario library and exit"},
           {"print", "FILE", "parse a scenario and print its resolved spec"},
           {"dir", "DIR", "scenario library directory for --list (default scenarios)"},
           {"threads", "N", "override every scenario's thread count (results unchanged)"},
           {"metrics", "OUT.json", "override/enable the obs.metrics report file"},
           {"trace", "OUT.json", "override/enable the obs.trace span trace file"},
           {"trace-events", "N", "override the obs.trace_events ring budget"},
           {"progress", "", "force the live progress heartbeat on"},
       }},
      {"lint",
       "",
       "run the determinism linter over the source tree (see DESIGN.md)",
       {
           {"root", "DIR", "source tree to lint (default src)"},
           {"rules", "", "print the rule table with rationales and exit"},
       }},
      {"version",
       "",
       "print build provenance (git SHA, build type, compiler)",
       {}},
  };
  return specs;
}

const util::CommandSpec& command_spec(const std::string& name) {
  for (const auto& spec : command_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown command '" + name + "'");
}

const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = [] {
    std::set<std::string> out;
    for (const auto& spec : command_specs()) {
      const auto booleans = spec.boolean_flag_names();
      out.insert(booleans.begin(), booleans.end());
    }
    return out;
  }();
  return flags;
}

}  // namespace wlgen::cli
