#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wlgen::fs {

/// Splits an absolute path into components, resolving "." and ".." lexically
/// ("/a/./b/../c" -> {"a","c"}).  Returns false for non-absolute or empty
/// paths; ".." above the root clamps at the root, as POSIX does.
bool split_path(std::string_view path, std::vector<std::string>& components);

/// Joins components back into a canonical absolute path ("/" for empty).
std::string join_path(const std::vector<std::string>& components);

/// Parent of a canonical absolute path ("/a/b" -> "/a", "/a" -> "/").
std::string parent_path(std::string_view path);

/// Final component ("/a/b" -> "b"); empty for "/".
std::string base_name(std::string_view path);

}  // namespace wlgen::fs
