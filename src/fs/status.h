#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace wlgen::fs {

/// errno-style outcome of a file-system operation.  Failures here are
/// *expected domain results* (a user may legitimately race an unlink), so per
/// the interface guidelines they travel in return values, not exceptions;
/// exceptions are reserved for caller contract violations.
enum class FsStatus {
  ok,
  not_found,           ///< ENOENT
  already_exists,      ///< EEXIST
  not_a_directory,     ///< ENOTDIR
  is_a_directory,      ///< EISDIR
  bad_descriptor,      ///< EBADF
  invalid_argument,    ///< EINVAL
  no_space,            ///< ENOSPC
  name_too_long,       ///< ENAMETOOLONG
  directory_not_empty, ///< ENOTEMPTY
  too_many_open_files, ///< EMFILE
  not_permitted,       ///< EPERM (e.g. writing a read-only open)
};

/// Human-readable status name ("ok", "not_found", ...).
const char* to_string(FsStatus status);

/// Expected-style result: either a value or an FsStatus error.
/// Accessing value() on an error throws std::logic_error (programmer error).
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(FsStatus error) : state_(error) {       // NOLINT(google-explicit-constructor)
    if (error == FsStatus::ok) {
      throw std::logic_error("Result: FsStatus::ok is not an error; construct with a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  FsStatus status() const { return ok() ? FsStatus::ok : std::get<FsStatus>(state_); }

  const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error(std::string("Result::value on error: ") +
                             to_string(std::get<FsStatus>(state_)));
    }
  }

  std::variant<T, FsStatus> state_;
};

}  // namespace wlgen::fs
