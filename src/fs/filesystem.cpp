#include "fs/filesystem.h"

#include <algorithm>
#include <stdexcept>

namespace wlgen::fs {

SimulatedFileSystem::SimulatedFileSystem() : SimulatedFileSystem(Options{}) {}

SimulatedFileSystem::SimulatedFileSystem(Options options) : options_(options) {
  Inode root;
  root.id = 1;
  root.kind = FileKind::directory;
  root.link_count = 1;
  inodes_.emplace(root.id, std::move(root));
}

void SimulatedFileSystem::set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

void SimulatedFileSystem::add_child(Inode& dir, const std::string& name, InodeId id) {
  dir.children.emplace(name, id);
  dir.size += 16 + name.size();  // UFS-style directory entry record
  dir.modified_at = now();
}

void SimulatedFileSystem::remove_child(Inode& dir, const std::string& name) {
  const auto it = dir.children.find(name);
  if (it == dir.children.end()) return;
  const std::uint64_t entry = 16 + name.size();
  dir.size -= std::min<std::uint64_t>(dir.size, entry);
  dir.children.erase(it);
  dir.modified_at = now();
}

SimulatedFileSystem::Inode& SimulatedFileSystem::inode_ref(InodeId id) {
  const auto it = inodes_.find(id);
  if (it == inodes_.end()) throw std::logic_error("SimulatedFileSystem: dangling inode id");
  return it->second;
}

const SimulatedFileSystem::Inode& SimulatedFileSystem::inode_ref(InodeId id) const {
  const auto it = inodes_.find(id);
  if (it == inodes_.end()) throw std::logic_error("SimulatedFileSystem: dangling inode id");
  return it->second;
}

Result<InodeId> SimulatedFileSystem::resolve(const std::string& path) const {
  std::vector<std::string> parts;
  if (!split_path(path, parts)) return FsStatus::invalid_argument;
  InodeId current = 1;
  for (const auto& piece : parts) {
    if (piece.size() > options_.max_name_length) return FsStatus::name_too_long;
    const Inode& node = inode_ref(current);
    if (node.kind != FileKind::directory) return FsStatus::not_a_directory;
    const auto it = node.children.find(piece);
    if (it == node.children.end()) return FsStatus::not_found;
    current = it->second;
  }
  return current;
}

Result<InodeId> SimulatedFileSystem::resolve_parent(const std::string& path,
                                                    std::string& leaf) const {
  std::vector<std::string> parts;
  if (!split_path(path, parts)) return FsStatus::invalid_argument;
  if (parts.empty()) return FsStatus::invalid_argument;  // root has no parent entry
  leaf = parts.back();
  if (leaf.size() > options_.max_name_length) return FsStatus::name_too_long;
  parts.pop_back();
  InodeId current = 1;
  for (const auto& piece : parts) {
    const Inode& node = inode_ref(current);
    if (node.kind != FileKind::directory) return FsStatus::not_a_directory;
    const auto it = node.children.find(piece);
    if (it == node.children.end()) return FsStatus::not_found;
    current = it->second;
  }
  if (inode_ref(current).kind != FileKind::directory) return FsStatus::not_a_directory;
  return current;
}

void SimulatedFileSystem::maybe_collect(InodeId id) {
  const auto it = inodes_.find(id);
  if (it == inodes_.end()) return;
  Inode& node = it->second;
  if (node.link_count == 0 && node.open_count == 0) {
    bytes_in_use_ -= std::min<std::uint64_t>(bytes_in_use_, node.size);
    inodes_.erase(it);
  }
}

FsStatus SimulatedFileSystem::grow_check(std::uint64_t extra) const {
  if (options_.capacity_bytes == 0) return FsStatus::ok;
  if (bytes_in_use_ + extra > options_.capacity_bytes) return FsStatus::no_space;
  return FsStatus::ok;
}

Result<SimulatedFileSystem::OpenFile*> SimulatedFileSystem::descriptor(Fd fd) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return FsStatus::bad_descriptor;
  return &it->second;
}

Result<const SimulatedFileSystem::OpenFile*> SimulatedFileSystem::descriptor(Fd fd) const {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return FsStatus::bad_descriptor;
  return &it->second;
}

Result<Fd> SimulatedFileSystem::open(const std::string& path, unsigned flags) {
  if ((flags & (kRead | kWrite)) == 0) return FsStatus::invalid_argument;
  if (open_files_.size() >= options_.max_open_files) return FsStatus::too_many_open_files;

  InodeId target = 0;
  const Result<InodeId> found = resolve(path);
  if (found.ok()) {
    target = found.value();
    const Inode& node = inode_ref(target);
    if (node.kind == FileKind::directory && (flags & (kWrite | kTruncate)) != 0) {
      return FsStatus::is_a_directory;
    }
  } else if (found.status() == FsStatus::not_found && (flags & kCreate) != 0) {
    std::string leaf;
    const Result<InodeId> parent = resolve_parent(path, leaf);
    if (!parent.ok()) return parent.status();
    Inode node;
    node.id = next_inode_++;
    node.kind = FileKind::regular;
    node.link_count = 1;
    node.created_at = node.modified_at = node.accessed_at = now();
    target = node.id;
    inodes_.emplace(node.id, std::move(node));
    add_child(inode_ref(parent.value()), leaf, target);
  } else {
    return found.status();
  }

  Inode& node = inode_ref(target);
  if ((flags & kTruncate) != 0 && node.kind == FileKind::regular) {
    bytes_in_use_ -= std::min<std::uint64_t>(bytes_in_use_, node.size);
    node.size = 0;
    node.data.clear();
    node.modified_at = now();
  }
  ++node.open_count;

  const Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{target, 0, flags});
  return fd;
}

Result<Fd> SimulatedFileSystem::creat(const std::string& path) {
  return open(path, kWrite | kCreate | kTruncate);
}

FsStatus SimulatedFileSystem::close(Fd fd) {
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return FsStatus::bad_descriptor;
  const InodeId inode = it->second.inode;
  open_files_.erase(it);
  Inode& node = inode_ref(inode);
  if (node.open_count == 0) throw std::logic_error("SimulatedFileSystem: open_count underflow");
  --node.open_count;
  maybe_collect(inode);
  return FsStatus::ok;
}

Result<std::uint64_t> SimulatedFileSystem::read(Fd fd, std::uint64_t count) {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  OpenFile& of = *d.value();
  if ((of.flags & kRead) == 0) return FsStatus::not_permitted;
  Inode& node = inode_ref(of.inode);
  // Directories are readable as special files (4.xBSD semantics; the size is
  // the directory's entry bytes).
  const std::uint64_t available = of.offset < node.size ? node.size - of.offset : 0;
  const std::uint64_t got = std::min(count, available);
  of.offset += got;
  ++node.read_ops;
  node.bytes_read += got;
  node.accessed_at = now();
  return got;
}

Result<std::vector<std::uint8_t>> SimulatedFileSystem::read_bytes(Fd fd, std::uint64_t count) {
  if (!options_.store_data) return FsStatus::invalid_argument;
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  if (inode_ref(d.value()->inode).kind == FileKind::directory) return FsStatus::is_a_directory;
  const std::uint64_t start = d.value()->offset;
  const Result<std::uint64_t> got = read(fd, count);
  if (!got.ok()) return got.status();
  const Inode& node = inode_ref(d.value()->inode);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(got.value()));
  for (std::uint64_t i = 0; i < got.value(); ++i) {
    out[static_cast<std::size_t>(i)] = node.data[static_cast<std::size_t>(start + i)];
  }
  return out;
}

Result<std::uint64_t> SimulatedFileSystem::write(Fd fd, std::uint64_t count) {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  OpenFile& of = *d.value();
  if ((of.flags & kWrite) == 0) return FsStatus::not_permitted;
  Inode& node = inode_ref(of.inode);
  if (node.kind == FileKind::directory) return FsStatus::is_a_directory;
  if ((of.flags & kAppend) != 0) of.offset = node.size;
  const std::uint64_t end = of.offset + count;
  if (end > node.size) {
    const FsStatus space = grow_check(end - node.size);
    if (space != FsStatus::ok) return space;
    bytes_in_use_ += end - node.size;
    node.size = end;
    if (options_.store_data) node.data.resize(static_cast<std::size_t>(end), 0);
  }
  if (options_.store_data) {
    for (std::uint64_t i = 0; i < count; ++i) {
      node.data[static_cast<std::size_t>(of.offset + i)] =
          static_cast<std::uint8_t>((of.offset + i) & 0xff);
    }
  }
  of.offset += count;
  ++node.write_ops;
  node.bytes_written += count;
  node.modified_at = now();
  return count;
}

Result<std::uint64_t> SimulatedFileSystem::write_bytes(Fd fd,
                                                       const std::vector<std::uint8_t>& data) {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  OpenFile& of = *d.value();
  if ((of.flags & kWrite) == 0) return FsStatus::not_permitted;
  Inode& node = inode_ref(of.inode);
  if (node.kind == FileKind::directory) return FsStatus::is_a_directory;
  if ((of.flags & kAppend) != 0) of.offset = node.size;
  const std::uint64_t count = data.size();
  const std::uint64_t end = of.offset + count;
  if (end > node.size) {
    const FsStatus space = grow_check(end - node.size);
    if (space != FsStatus::ok) return space;
    bytes_in_use_ += end - node.size;
    node.size = end;
    if (options_.store_data) node.data.resize(static_cast<std::size_t>(end), 0);
  }
  if (options_.store_data) {
    std::copy(data.begin(), data.end(), node.data.begin() + static_cast<std::ptrdiff_t>(of.offset));
  }
  of.offset += count;
  ++node.write_ops;
  node.bytes_written += count;
  node.modified_at = now();
  return count;
}

Result<std::uint64_t> SimulatedFileSystem::lseek(Fd fd, std::int64_t offset, Seek whence) {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  OpenFile& of = *d.value();
  const Inode& node = inode_ref(of.inode);
  std::int64_t base = 0;
  switch (whence) {
    case Seek::set: base = 0; break;
    case Seek::cur: base = static_cast<std::int64_t>(of.offset); break;
    case Seek::end: base = static_cast<std::int64_t>(node.size); break;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return FsStatus::invalid_argument;
  of.offset = static_cast<std::uint64_t>(target);
  return of.offset;
}

FsStatus SimulatedFileSystem::unlink(const std::string& path) {
  std::string leaf;
  const Result<InodeId> parent = resolve_parent(path, leaf);
  if (!parent.ok()) return parent.status();
  Inode& dir = inode_ref(parent.value());
  const auto it = dir.children.find(leaf);
  if (it == dir.children.end()) return FsStatus::not_found;
  Inode& node = inode_ref(it->second);
  if (node.kind == FileKind::directory) return FsStatus::is_a_directory;
  const InodeId id = it->second;
  remove_child(dir, leaf);
  if (node.link_count == 0) throw std::logic_error("SimulatedFileSystem: link_count underflow");
  --node.link_count;
  maybe_collect(id);
  return FsStatus::ok;
}

FsStatus SimulatedFileSystem::link(const std::string& existing, const std::string& link_path) {
  const Result<InodeId> found = resolve(existing);
  if (!found.ok()) return found.status();
  Inode& node = inode_ref(found.value());
  if (node.kind == FileKind::directory) return FsStatus::is_a_directory;  // as POSIX EPERM-ish
  std::string leaf;
  const Result<InodeId> parent = resolve_parent(link_path, leaf);
  if (!parent.ok()) return parent.status();
  Inode& dir = inode_ref(parent.value());
  if (dir.children.count(leaf) != 0) return FsStatus::already_exists;
  add_child(dir, leaf, node.id);
  ++node.link_count;
  return FsStatus::ok;
}

FsStatus SimulatedFileSystem::mkdir(const std::string& path) {
  std::string leaf;
  const Result<InodeId> parent = resolve_parent(path, leaf);
  if (!parent.ok()) return parent.status();
  Inode& dir = inode_ref(parent.value());
  if (dir.children.count(leaf) != 0) return FsStatus::already_exists;
  Inode node;
  node.id = next_inode_++;
  node.kind = FileKind::directory;
  node.link_count = 1;
  node.created_at = node.modified_at = node.accessed_at = now();
  const InodeId id = node.id;
  inodes_.emplace(id, std::move(node));
  add_child(dir, leaf, id);
  return FsStatus::ok;
}

FsStatus SimulatedFileSystem::mkdir_recursive(const std::string& path) {
  std::vector<std::string> parts;
  if (!split_path(path, parts)) return FsStatus::invalid_argument;
  std::string prefix;
  for (const auto& piece : parts) {
    prefix += '/';
    prefix += piece;
    const FsStatus st = mkdir(prefix);
    if (st == FsStatus::ok || st == FsStatus::already_exists) continue;
    return st;
  }
  return FsStatus::ok;
}

FsStatus SimulatedFileSystem::rmdir(const std::string& path) {
  std::string leaf;
  const Result<InodeId> parent = resolve_parent(path, leaf);
  if (!parent.ok()) return parent.status();
  Inode& dir = inode_ref(parent.value());
  const auto it = dir.children.find(leaf);
  if (it == dir.children.end()) return FsStatus::not_found;
  Inode& node = inode_ref(it->second);
  if (node.kind != FileKind::directory) return FsStatus::not_a_directory;
  if (!node.children.empty()) return FsStatus::directory_not_empty;
  const InodeId id = it->second;
  remove_child(dir, leaf);
  --node.link_count;
  maybe_collect(id);
  return FsStatus::ok;
}

FsStatus SimulatedFileSystem::rename(const std::string& from, const std::string& to) {
  std::string from_leaf;
  const Result<InodeId> from_parent = resolve_parent(from, from_leaf);
  if (!from_parent.ok()) return from_parent.status();
  const auto from_it = inode_ref(from_parent.value()).children.find(from_leaf);
  if (from_it == inode_ref(from_parent.value()).children.end()) return FsStatus::not_found;
  const InodeId moving = from_it->second;

  // A directory must not be moved into its own subtree.
  if (inode_ref(moving).kind == FileKind::directory) {
    std::vector<std::string> from_parts, to_parts;
    split_path(from, from_parts);
    split_path(to, to_parts);
    if (to_parts.size() >= from_parts.size() &&
        std::equal(from_parts.begin(), from_parts.end(), to_parts.begin())) {
      return FsStatus::invalid_argument;
    }
  }

  std::string to_leaf;
  const Result<InodeId> to_parent = resolve_parent(to, to_leaf);
  if (!to_parent.ok()) return to_parent.status();
  Inode& dest_dir = inode_ref(to_parent.value());
  const auto existing = dest_dir.children.find(to_leaf);
  if (existing != dest_dir.children.end()) {
    if (existing->second == moving) return FsStatus::ok;  // rename onto itself
    Inode& target = inode_ref(existing->second);
    if (target.kind == FileKind::directory) {
      if (!target.children.empty()) return FsStatus::directory_not_empty;
      if (inode_ref(moving).kind != FileKind::directory) return FsStatus::is_a_directory;
    } else if (inode_ref(moving).kind == FileKind::directory) {
      return FsStatus::not_a_directory;
    }
    const InodeId replaced = existing->second;
    remove_child(dest_dir, to_leaf);
    --inode_ref(replaced).link_count;
    maybe_collect(replaced);
  }
  remove_child(inode_ref(from_parent.value()), from_leaf);
  add_child(dest_dir, to_leaf, moving);
  return FsStatus::ok;
}

Result<FileStat> SimulatedFileSystem::stat(const std::string& path) const {
  const Result<InodeId> found = resolve(path);
  if (!found.ok()) return found.status();
  const Inode& node = inode_ref(found.value());
  FileStat st;
  st.inode = node.id;
  st.kind = node.kind;
  st.size = node.size;
  st.link_count = node.link_count;
  st.read_ops = node.read_ops;
  st.write_ops = node.write_ops;
  st.bytes_read = node.bytes_read;
  st.bytes_written = node.bytes_written;
  st.created_at = node.created_at;
  st.modified_at = node.modified_at;
  st.accessed_at = node.accessed_at;
  return st;
}

Result<FileStat> SimulatedFileSystem::fstat(Fd fd) const {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  const Inode& node = inode_ref(d.value()->inode);
  FileStat st;
  st.inode = node.id;
  st.kind = node.kind;
  st.size = node.size;
  st.link_count = node.link_count;
  st.read_ops = node.read_ops;
  st.write_ops = node.write_ops;
  st.bytes_read = node.bytes_read;
  st.bytes_written = node.bytes_written;
  st.created_at = node.created_at;
  st.modified_at = node.modified_at;
  st.accessed_at = node.accessed_at;
  return st;
}

FsStatus SimulatedFileSystem::truncate(const std::string& path, std::uint64_t size) {
  const Result<InodeId> found = resolve(path);
  if (!found.ok()) return found.status();
  Inode& node = inode_ref(found.value());
  if (node.kind == FileKind::directory) return FsStatus::is_a_directory;
  if (size > node.size) {
    const FsStatus space = grow_check(size - node.size);
    if (space != FsStatus::ok) return space;
    bytes_in_use_ += size - node.size;
  } else {
    bytes_in_use_ -= node.size - size;
  }
  node.size = size;
  if (options_.store_data) node.data.resize(static_cast<std::size_t>(size), 0);
  node.modified_at = now();
  return FsStatus::ok;
}

Result<std::vector<std::string>> SimulatedFileSystem::readdir(const std::string& path) const {
  const Result<InodeId> found = resolve(path);
  if (!found.ok()) return found.status();
  const Inode& node = inode_ref(found.value());
  if (node.kind != FileKind::directory) return FsStatus::not_a_directory;
  std::vector<std::string> names;
  names.reserve(node.children.size());
  for (const auto& [name, id] : node.children) names.push_back(name);
  return names;  // std::map keeps them sorted
}

bool SimulatedFileSystem::exists(const std::string& path) const { return resolve(path).ok(); }

Result<std::uint64_t> SimulatedFileSystem::tell(Fd fd) const {
  const auto d = descriptor(fd);
  if (!d.ok()) return d.status();
  return d.value()->offset;
}

std::size_t SimulatedFileSystem::regular_file_count() const {
  std::size_t n = 0;
  // Commutative count: the fold result is order-independent.
  for (const auto& [id, node] : inodes_) {  // wlgen-lint: allow(unordered-iter)
    if (node.kind == FileKind::regular && node.link_count > 0) ++n;
  }
  return n;
}

std::size_t SimulatedFileSystem::directory_count() const {
  std::size_t n = 0;
  // Commutative count: the fold result is order-independent.
  for (const auto& [id, node] : inodes_) {  // wlgen-lint: allow(unordered-iter)
    if (node.kind == FileKind::directory) ++n;
  }
  return n;
}

}  // namespace wlgen::fs
