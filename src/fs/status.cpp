#include "fs/status.h"

namespace wlgen::fs {

const char* to_string(FsStatus status) {
  switch (status) {
    case FsStatus::ok: return "ok";
    case FsStatus::not_found: return "not_found";
    case FsStatus::already_exists: return "already_exists";
    case FsStatus::not_a_directory: return "not_a_directory";
    case FsStatus::is_a_directory: return "is_a_directory";
    case FsStatus::bad_descriptor: return "bad_descriptor";
    case FsStatus::invalid_argument: return "invalid_argument";
    case FsStatus::no_space: return "no_space";
    case FsStatus::name_too_long: return "name_too_long";
    case FsStatus::directory_not_empty: return "directory_not_empty";
    case FsStatus::too_many_open_files: return "too_many_open_files";
    case FsStatus::not_permitted: return "not_permitted";
  }
  return "unknown";
}

}  // namespace wlgen::fs
