#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/path.h"
#include "fs/status.h"

namespace wlgen::fs {

/// Inode number; root is always inode 1.
using InodeId = std::uint64_t;

/// File descriptor handle (>= 0 when valid).
using Fd = int;

/// Kind of an inode.
enum class FileKind { regular, directory };

/// Open flags, OR-able.  Mirrors the UNIX open(2) surface the paper's USIM
/// drives ("the interface in UNIX systems appears in the form of system
/// calls, e.g., open, read" — section 3.1.2).
enum OpenFlags : unsigned {
  kRead = 1u << 0,      ///< allow read()
  kWrite = 1u << 1,     ///< allow write()
  kCreate = 1u << 2,    ///< create if missing
  kTruncate = 1u << 3,  ///< truncate to zero on open
  kAppend = 1u << 4,    ///< position at EOF before every write
};

/// stat(2)-style metadata snapshot.
struct FileStat {
  InodeId inode = 0;
  FileKind kind = FileKind::regular;
  std::uint64_t size = 0;
  std::uint32_t link_count = 0;
  std::uint64_t read_ops = 0;    ///< lifetime read() calls touching the inode
  std::uint64_t write_ops = 0;   ///< lifetime write() calls touching the inode
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double created_at = 0.0;       ///< simulated time, microseconds
  double modified_at = 0.0;
  double accessed_at = 0.0;
};

/// lseek whence.
enum class Seek { set, cur, end };

/// In-memory file system with UNIX semantics.
///
/// Period-accurate details the workload depends on: directories carry a real
/// size (the sum of their entry records, 16 bytes + name length each, as in
/// the old UFS on-disk format), and read(2) on a directory is permitted —
/// 4.xBSD, the system the paper's characterisation was measured on, allowed
/// exactly that, and the paper "treats directories as special files"
/// (section 4.1.2).
///
/// This substrate substitutes for the real file system the paper's generator
/// drives: "a new file system is created to which file I/O is directed"
/// (section 4.1) so existing files are never modified.  Here the *entire*
/// file system is the new one, held in memory.  Semantics kept faithfully:
/// byte-granular sizes, read truncation at EOF (the cause of Table 5.3's
/// measured mean access size < the 1024-byte input mean), open-before-read,
/// POSIX unlink-while-open lifetime, and directory tree behaviour.
///
/// Timing intentionally lives elsewhere (fsmodel): this class answers *what
/// happens*, the models answer *how long it takes*.
class SimulatedFileSystem {
 public:
  struct Options {
    /// When true, file contents are stored and verified (tests); when false
    /// only sizes are tracked, keeping big experiments cheap.
    bool store_data = false;
    /// Total byte capacity (0 = unlimited).
    std::uint64_t capacity_bytes = 0;
    /// Max simultaneously open descriptors.
    std::size_t max_open_files = 4096;
    /// Max length of a single path component.
    std::size_t max_name_length = 255;
  };

  SimulatedFileSystem();
  explicit SimulatedFileSystem(Options options);

  /// Supplies a simulated-clock source for inode timestamps (defaults to 0).
  void set_clock(std::function<double()> clock);

  // --- system-call surface -------------------------------------------------

  /// Opens a file.  kCreate creates missing regular files; opening a
  /// directory is allowed read-only (for readdir-style traversal).
  Result<Fd> open(const std::string& path, unsigned flags);

  /// creat(2): open with kWrite|kCreate|kTruncate.
  Result<Fd> creat(const std::string& path);

  /// Closes a descriptor.
  FsStatus close(Fd fd);

  /// Reads up to `count` bytes at the descriptor offset; returns the number
  /// actually read (truncated at EOF) and advances the offset.
  Result<std::uint64_t> read(Fd fd, std::uint64_t count);

  /// Reads and returns stored bytes (requires store_data).
  Result<std::vector<std::uint8_t>> read_bytes(Fd fd, std::uint64_t count);

  /// Writes `count` synthetic bytes at the offset, growing the file as
  /// needed; returns bytes written and advances the offset.
  Result<std::uint64_t> write(Fd fd, std::uint64_t count);

  /// Writes real bytes (stored when store_data is on).
  Result<std::uint64_t> write_bytes(Fd fd, const std::vector<std::uint8_t>& data);

  /// Repositions the descriptor offset; returns the new offset.
  Result<std::uint64_t> lseek(Fd fd, std::int64_t offset, Seek whence);

  /// Removes a directory entry; the inode survives while still open.
  FsStatus unlink(const std::string& path);

  /// link(2): creates a second directory entry for an existing regular file.
  FsStatus link(const std::string& existing, const std::string& link_path);

  /// Creates a directory (parents must exist).
  FsStatus mkdir(const std::string& path);

  /// Creates all missing ancestors then the directory itself.
  FsStatus mkdir_recursive(const std::string& path);

  /// Removes an empty directory.
  FsStatus rmdir(const std::string& path);

  /// Renames/moves a file or directory.  Refuses to move a directory into
  /// its own subtree.
  FsStatus rename(const std::string& from, const std::string& to);

  /// Metadata by path.
  Result<FileStat> stat(const std::string& path) const;

  /// Metadata by descriptor.
  Result<FileStat> fstat(Fd fd) const;

  /// Truncates (or zero-extends) a file to `size`.
  FsStatus truncate(const std::string& path, std::uint64_t size);

  /// Names in a directory, sorted.
  Result<std::vector<std::string>> readdir(const std::string& path) const;

  /// True when the path resolves.
  bool exists(const std::string& path) const;

  /// Current descriptor offset (for tests).
  Result<std::uint64_t> tell(Fd fd) const;

  // --- introspection -------------------------------------------------------

  std::uint64_t bytes_in_use() const { return bytes_in_use_; }
  std::size_t regular_file_count() const;
  std::size_t directory_count() const;
  std::size_t open_descriptor_count() const { return open_files_.size(); }
  std::size_t inode_count() const { return inodes_.size(); }
  const Options& options() const { return options_; }

 private:
  struct Inode {
    InodeId id = 0;
    FileKind kind = FileKind::regular;
    std::uint64_t size = 0;
    std::uint32_t link_count = 0;
    std::uint32_t open_count = 0;
    std::uint64_t read_ops = 0;
    std::uint64_t write_ops = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    double created_at = 0.0;
    double modified_at = 0.0;
    double accessed_at = 0.0;
    std::vector<std::uint8_t> data;           // only when store_data
    std::map<std::string, InodeId> children;  // only for directories
  };

  struct OpenFile {
    InodeId inode = 0;
    std::uint64_t offset = 0;
    unsigned flags = 0;
  };

  double now() const { return clock_ ? clock_() : 0.0; }
  void add_child(Inode& dir, const std::string& name, InodeId id);
  void remove_child(Inode& dir, const std::string& name);
  Inode& inode_ref(InodeId id);
  const Inode& inode_ref(InodeId id) const;
  Result<InodeId> resolve(const std::string& path) const;
  Result<InodeId> resolve_parent(const std::string& path, std::string& leaf) const;
  void maybe_collect(InodeId id);
  FsStatus grow_check(std::uint64_t extra) const;
  Result<OpenFile*> descriptor(Fd fd);
  Result<const OpenFile*> descriptor(Fd fd) const;

  Options options_;
  std::function<double()> clock_;
  std::unordered_map<InodeId, Inode> inodes_;
  std::unordered_map<Fd, OpenFile> open_files_;
  InodeId next_inode_ = 2;  // 1 is the root
  Fd next_fd_ = 3;          // mimic stdin/stdout/stderr being taken
  std::uint64_t bytes_in_use_ = 0;
};

}  // namespace wlgen::fs
