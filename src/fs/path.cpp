#include "fs/path.h"

namespace wlgen::fs {

bool split_path(std::string_view path, std::vector<std::string>& components) {
  components.clear();
  if (path.empty() || path.front() != '/') return false;
  std::size_t i = 1;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i == start) break;
    std::string_view piece = path.substr(start, i - start);
    if (piece == ".") continue;
    if (piece == "..") {
      if (!components.empty()) components.pop_back();
      continue;  // ".." at the root stays at the root
    }
    components.emplace_back(piece);
  }
  return true;
}

std::string join_path(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string parent_path(std::string_view path) {
  std::vector<std::string> parts;
  if (!split_path(path, parts) || parts.empty()) return "/";
  parts.pop_back();
  return join_path(parts);
}

std::string base_name(std::string_view path) {
  std::vector<std::string> parts;
  if (!split_path(path, parts) || parts.empty()) return "";
  return parts.back();
}

}  // namespace wlgen::fs
