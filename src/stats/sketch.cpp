#include "stats/sketch.h"

#include <algorithm>
#include <cmath>

namespace wlgen::stats {

namespace {

// log(kGamma) evaluated once; bucket index = 1 + floor(log(v / kMinValue) / log_gamma).
const double kLogGamma = std::log(QuantileSketch::kGamma);

std::size_t bucket_of(double value) {
  if (!(value > QuantileSketch::kMinValue)) return 0;  // also catches NaN
  const double index = std::floor(std::log(value / QuantileSketch::kMinValue) / kLogGamma);
  const auto clamped =
      std::min<double>(index, static_cast<double>(QuantileSketch::kBuckets - 2));
  return 1 + static_cast<std::size_t>(std::max(0.0, clamped));
}

}  // namespace

void QuantileSketch::add(double value) {
  counts_[bucket_of(value)] += 1;
  ++total_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double clamped_q = std::min(1.0, std::max(0.0, q));
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(clamped_q * total_));
  rank = std::min<std::uint64_t>(std::max<std::uint64_t>(rank, 1), total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i == 0) return kMinValue;
      return kMinValue * std::pow(kGamma, static_cast<double>(i));
    }
  }
  return kMinValue * std::pow(kGamma, static_cast<double>(kBuckets - 1));
}

}  // namespace wlgen::stats
