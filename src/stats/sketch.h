#pragma once

#include <array>
#include <cstdint>

namespace wlgen::stats {

/// Bounded-memory quantile sketch over nonnegative values (response times,
/// microseconds): fixed log-spaced buckets with integer counts, DDSketch
/// style.  Relative error per quantile is bounded by the bucket ratio
/// (kGamma - 1 ≈ 5%).
///
/// Where the exact per-user Histogram slots don't fit (the Histogram::merge
/// fold costs bins × 8 bytes × users), ONE sketch per shard replaces them:
/// merge() is an elementwise integer add — exact, associative and
/// commutative — so unlike the floating-point RunningSummary folds the
/// merged sketch is bit-identical for every shard/thread count without
/// per-entity slots or a fixed fold order.
class QuantileSketch {
 public:
  static constexpr double kGamma = 1.05;     ///< bucket ratio (~5% rel. error)
  static constexpr double kMinValue = 1e-3;  ///< values below land in bucket 0
  static constexpr std::size_t kBuckets = 768;  ///< covers kMinValue..~1e13

  void add(double value);
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return total_; }

  /// Upper edge of the bucket holding rank ceil(q * count); 0 when empty.
  /// Deterministic: a pure function of the integer bucket counts.
  double quantile(double q) const;

  /// Exact bucket-level equality — what "bit-identical across shard/thread
  /// counts and spill on/off" means in the tests.
  bool operator==(const QuantileSketch& other) const = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace wlgen::stats
