#pragma once

#include <cstddef>
#include <vector>

#include "stats/histogram.h"

namespace wlgen::stats {

/// Centred moving average with the given (odd) window; edges use a shrunken
/// window.  This is the "after smoothing" transform of paper Figures 5.3–5.5.
std::vector<double> moving_average(const std::vector<double>& values, std::size_t window);

/// Discrete Gaussian kernel smoothing with the given bandwidth in bins.
std::vector<double> gaussian_smooth(const std::vector<double>& values, double sigma_bins);

/// How histogram smoothing should be performed.
enum class SmoothingKind { moving_average, gaussian };

/// Returns a copy of the histogram with smoothed counts; total mass is
/// renormalised to the original count so "count" axes remain comparable.
Histogram smooth_histogram(const Histogram& h, SmoothingKind kind, double parameter);

}  // namespace wlgen::stats
