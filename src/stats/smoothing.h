#pragma once

#include <cstddef>
#include <vector>

#include "stats/histogram.h"

namespace wlgen::stats {

/// Centred moving average; edges use a shrunken window so no mass leaks off
/// the ends.  This is the "after smoothing" transform of paper Figures
/// 5.3–5.5.  The window must be an odd integer >= 1 (a centred window has no
/// meaning for even sizes); throws std::invalid_argument otherwise — it used
/// to round even windows up silently, which made `window` lie about the
/// kernel actually applied.
std::vector<double> moving_average(const std::vector<double>& values, std::size_t window);

/// Discrete Gaussian kernel smoothing with the given bandwidth in bins
/// (sigma_bins > 0; the kernel is renormalised at the edges so total mass is
/// preserved).
std::vector<double> gaussian_smooth(const std::vector<double>& values, double sigma_bins);

/// How histogram smoothing should be performed.
enum class SmoothingKind { moving_average, gaussian };

/// Returns a copy of the histogram with smoothed counts; total mass is
/// renormalised to the original count so "count" axes remain comparable.
///
/// Parameter contract: for moving_average it is the window in bins and must
/// be an odd integer >= 1 (fractional windows used to be truncated silently;
/// now they throw std::invalid_argument).  For gaussian it is the bandwidth
/// sigma in bins, any value > 0.
Histogram smooth_histogram(const Histogram& h, SmoothingKind kind, double parameter);

}  // namespace wlgen::stats
