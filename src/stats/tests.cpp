#include "stats/tests.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/numeric.h"

namespace wlgen::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Q(lambda) = 2 sum_{j>=1} (-1)^(j-1) exp(-2 j^2 lambda^2)
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double ks_statistic(std::vector<double> data, const dist::Distribution& reference) {
  if (data.empty()) throw std::invalid_argument("ks_statistic: empty data");
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  double d = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double f = reference.cdf(data[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  return d;
}

TestResult ks_test(std::vector<double> data, const dist::Distribution& reference) {
  const double n = static_cast<double>(data.size());
  TestResult r;
  r.statistic = ks_statistic(std::move(data), reference);
  const double sqrt_n = std::sqrt(n);
  // Stephens' small-sample correction.
  r.p_value = kolmogorov_q((sqrt_n + 0.12 + 0.11 / sqrt_n) * r.statistic);
  return r;
}

TestResult ks_test_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_test_two_sample: empty sample");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  TestResult r;
  r.statistic = d;
  const double ne = std::sqrt(na * nb / (na + nb));
  r.p_value = kolmogorov_q((ne + 0.12 + 0.11 / ne) * d);
  return r;
}

TestResult chi_square_test(const std::vector<double>& observed,
                           const std::vector<double>& expected, double min_expected) {
  if (observed.size() != expected.size() || observed.empty()) {
    throw std::invalid_argument("chi_square_test: need matching non-empty count vectors");
  }
  // Pool low-expectation bins left to right so the asymptotics hold.
  std::vector<double> obs_pooled, exp_pooled;
  double o_acc = 0.0, e_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    o_acc += observed[i];
    e_acc += expected[i];
    if (e_acc >= min_expected) {
      obs_pooled.push_back(o_acc);
      exp_pooled.push_back(e_acc);
      o_acc = e_acc = 0.0;
    }
  }
  if (e_acc > 0.0 || o_acc > 0.0) {
    if (!exp_pooled.empty()) {
      obs_pooled.back() += o_acc;
      exp_pooled.back() += e_acc;
    } else {
      obs_pooled.push_back(o_acc);
      exp_pooled.push_back(e_acc);
    }
  }
  if (exp_pooled.size() < 2) {
    throw std::invalid_argument("chi_square_test: too few usable bins after pooling");
  }

  double stat = 0.0;
  for (std::size_t i = 0; i < exp_pooled.size(); ++i) {
    if (exp_pooled[i] <= 0.0) continue;
    const double diff = obs_pooled[i] - exp_pooled[i];
    stat += diff * diff / exp_pooled[i];
  }
  const double dof = static_cast<double>(exp_pooled.size() - 1);
  TestResult r;
  r.statistic = stat;
  // p = 1 - P(dof/2, stat/2) via the regularised incomplete gamma.
  r.p_value = std::clamp(1.0 - util::regularized_gamma_p(dof / 2.0, stat / 2.0), 0.0, 1.0);
  return r;
}

}  // namespace wlgen::stats
