#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wlgen::stats {

/// Equal-width histogram over [lo, hi) with out-of-range clamping to the edge
/// bins.  This is the structure behind the paper's Figures 5.3–5.5 (count vs
/// value histograms of per-session usage measures).
class Histogram {
 public:
  /// bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning [min(data), max(data)] with the given bins.
  /// Degenerate all-equal data (max <= min, e.g. a constant distribution or a
  /// single sample) widens the range to [lo, lo + 1) instead of throwing, so
  /// every observation lands in bin 0 — pinned by stats_test.
  static Histogram from_data(const std::vector<double>& data, std::size_t bins);

  /// Adds one observation (clamped into the edge bins).
  void add(double x);

  /// Adds all observations.
  void add_all(const std::vector<double>& data);

  /// Merges another histogram with identical geometry (lo, hi, bin count)
  /// into this one by summing per-bin counts; throws std::invalid_argument
  /// on mismatch.  Bin counts are non-negative integers stored as doubles,
  /// so merging is exact and order-independent up to ~2^53 observations —
  /// the parallel-shard aggregation path relies on this.
  void merge(const Histogram& other);

  std::size_t bin_count() const { return counts_.size(); }
  double low() const { return lo_; }
  double high() const { return hi_; }
  double bin_width() const;
  std::size_t total() const { return total_; }

  /// Raw per-bin counts.
  const std::vector<double>& counts() const { return counts_; }

  /// Replaces the counts (used after smoothing); size must match.
  void set_counts(std::vector<double> counts);

  /// bins+1 bin edges.
  std::vector<double> edges() const;

  /// Bin centres.
  std::vector<double> centers() const;

  /// Density estimate: counts normalised so the histogram integrates to one.
  std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  std::size_t total_ = 0;
};

}  // namespace wlgen::stats
