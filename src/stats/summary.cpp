#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wlgen::stats {

void RunningSummary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningSummary::merge(const RunningSummary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningSummary::mean() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::mean: no observations");
  return mean_;
}

double RunningSummary::variance() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::variance: no observations");
  return m2_ / static_cast<double>(count_);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double RunningSummary::min() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::min: no observations");
  return min_;
}

double RunningSummary::max() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::max: no observations");
  return max_;
}

std::string RunningSummary::mean_std_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f(%.*f)", precision, mean(), precision, stddev());
  return buf;
}

RunningSummary summarize(const std::vector<double>& data) {
  RunningSummary s;
  for (double v : data) s.add(v);
  return s;
}

double percentile(std::vector<double> data, double p) {
  if (data.empty()) throw std::invalid_argument("percentile: empty data");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::sort(data.begin(), data.end());
  const double pos = p / 100.0 * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= data.size()) return data.back();
  const double t = pos - static_cast<double>(lo);
  return data[lo] + t * (data[lo + 1] - data[lo]);
}

}  // namespace wlgen::stats
