#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wlgen::stats {

void RunningSummary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningSummary::merge(const RunningSummary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningSummary::mean() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::mean: no observations");
  return mean_;
}

double RunningSummary::variance() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::variance: no observations");
  return m2_ / static_cast<double>(count_);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

double RunningSummary::min() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::min: no observations");
  return min_;
}

double RunningSummary::max() const {
  if (count_ == 0) throw std::logic_error("RunningSummary::max: no observations");
  return max_;
}

std::string RunningSummary::mean_std_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f(%.*f)", precision, mean(), precision, stddev());
  return buf;
}

RunningSummary summarize(const std::vector<double>& data) {
  RunningSummary s;
  for (double v : data) s.add(v);
  return s;
}

namespace {

/// Two-sided Student-t critical values t_{df, 1-alpha/2} for df 1..30, then
/// the normal-approximation value for larger df.  Standard published tables,
/// 3 decimals — tabulated rather than computed so the CI is an exact
/// deterministic function of the data (no special-function library drift).
constexpr double kT90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                           1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                           1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                           1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                           2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                           2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                           2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
                           3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
                           2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
                           2.787,  2.779, 2.771, 2.763, 2.756, 2.750};
constexpr std::size_t kTableDf = 30;

double t_critical(double confidence, std::size_t df) {
  const double* table = nullptr;
  double z = 0.0;
  if (confidence == 0.90) {
    table = kT90;
    z = 1.645;
  } else if (confidence == 0.95) {
    table = kT95;
    z = 1.960;
  } else if (confidence == 0.99) {
    table = kT99;
    z = 2.576;
  } else {
    throw std::invalid_argument(
        "mean_confidence_interval: supported confidence levels are 0.90, 0.95, 0.99");
  }
  return df <= kTableDf ? table[df - 1] : z;
}

}  // namespace

MeanCi mean_confidence_interval(const std::vector<double>& data, double confidence) {
  if (data.empty()) throw std::invalid_argument("mean_confidence_interval: empty data");
  MeanCi out;
  out.n = data.size();
  double sum = 0.0;
  for (double v : data) sum += v;
  out.mean = sum / static_cast<double>(out.n);
  if (out.n < 2) {
    t_critical(confidence, 1);  // still validate the confidence level
    return out;
  }
  double ss = 0.0;
  for (double v : data) ss += (v - out.mean) * (v - out.mean);
  const double sample_var = ss / static_cast<double>(out.n - 1);
  out.half_width = t_critical(confidence, out.n - 1) *
                   std::sqrt(sample_var / static_cast<double>(out.n));
  return out;
}

double percentile(std::vector<double> data, double p) {
  if (data.empty()) throw std::invalid_argument("percentile: empty data");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::sort(data.begin(), data.end());
  const double pos = p / 100.0 * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= data.size()) return data.back();
  const double t = pos - static_cast<double>(lo);
  return data[lo] + t * (data[lo + 1] - data[lo]);
}

}  // namespace wlgen::stats
