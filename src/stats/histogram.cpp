#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlgen::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0.0);
}

Histogram Histogram::from_data(const std::vector<double>& data, std::size_t bins) {
  if (data.empty()) throw std::invalid_argument("Histogram::from_data: empty data");
  const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  double lo = *mn;
  double hi = *mx;
  // All-equal data: widen to the documented [lo, lo + 1) fallback so the
  // constructor's hi > lo contract holds and everything lands in bin 0.
  if (hi <= lo) hi = lo + 1.0;
  Histogram h(lo, hi, bins);
  h.add_all(data);
  return h;
}

void Histogram::add(double x) {
  const double w = bin_width();
  long long idx = static_cast<long long>(std::floor((x - lo_) / w));
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += 1.0;
  ++total_;
}

void Histogram::add_all(const std::vector<double>& data) {
  for (double v : data) add(v);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: mismatched geometry");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }

void Histogram::set_counts(std::vector<double> counts) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::set_counts: size mismatch");
  }
  counts_ = std::move(counts);
}

std::vector<double> Histogram::edges() const {
  std::vector<double> out(counts_.size() + 1);
  const double w = bin_width();
  for (std::size_t i = 0; i <= counts_.size(); ++i) out[i] = lo_ + w * static_cast<double>(i);
  return out;
}

std::vector<double> Histogram::centers() const {
  std::vector<double> out(counts_.size());
  const double w = bin_width();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = lo_ + w * (static_cast<double>(i) + 0.5);
  }
  return out;
}

std::vector<double> Histogram::density() const {
  std::vector<double> out = counts_;
  double mass = 0.0;
  for (double c : out) mass += c;
  const double w = bin_width();
  if (mass <= 0.0 || w <= 0.0) return out;
  for (auto& c : out) c /= mass * w;
  return out;
}

}  // namespace wlgen::stats
