#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wlgen::stats {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
///
/// Used everywhere a paper table reports "mean(std)" — e.g. Table 5.3's
/// access size and response time columns — without buffering every sample.
class RunningSummary {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another summary into this one (parallel Welford combination).
  void merge(const RunningSummary& other);

  std::size_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double mean() const;
  /// Population variance (division by n).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// "mean(std)" with the given precision, matching the paper's table style.
  std::string mean_std_string(int precision = 2) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary of a whole vector.
RunningSummary summarize(const std::vector<double>& data);

/// p-th percentile (p in [0,100]) by order-statistic interpolation.
/// Throws on empty data.
double percentile(std::vector<double> data, double p);

}  // namespace wlgen::stats
