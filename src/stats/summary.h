#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wlgen::stats {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
///
/// Used everywhere a paper table reports "mean(std)" — e.g. Table 5.3's
/// access size and response time columns — without buffering every sample.
class RunningSummary {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another summary into this one (parallel Welford combination).
  void merge(const RunningSummary& other);

  std::size_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  double mean() const;
  /// Population variance (division by n).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// "mean(std)" with the given precision, matching the paper's table style.
  std::string mean_std_string(int precision = 2) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary of a whole vector.
RunningSummary summarize(const std::vector<double>& data);

/// A cross-replication point estimate: sample mean of n independent
/// replication results with a symmetric two-sided confidence half-width.
/// This is what the contended runner reports per sweep point (the response
/// curves of Figures 5.6–5.11 averaged over independent replications).
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;  ///< 0 when n < 2 (one sample carries no spread)
  std::size_t n = 0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

/// Mean and two-sided Student-t confidence interval of independent samples.
/// Supported confidence levels: 0.90, 0.95 (default), 0.99 — the critical
/// values are tabulated (exact to published 3-decimal tables for df <= 30,
/// normal-approximation beyond), so the result is a fixed deterministic
/// function of the data.  Uses the sample (n-1) variance, unlike
/// RunningSummary::variance which is the population form.  Throws
/// std::invalid_argument on empty data or an unsupported confidence level.
MeanCi mean_confidence_interval(const std::vector<double>& data, double confidence = 0.95);

/// p-th percentile (p in [0,100]) by order-statistic interpolation.
/// Throws on empty data.
double percentile(std::vector<double> data, double p);

}  // namespace wlgen::stats
