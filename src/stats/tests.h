#pragma once

#include <vector>

#include "dist/distribution.h"

namespace wlgen::stats {

/// Result of a goodness-of-fit test.
struct TestResult {
  double statistic = 0.0;  ///< KS D or chi-square statistic
  double p_value = 0.0;    ///< asymptotic p-value
};

/// One-sample Kolmogorov–Smirnov test of data against a reference
/// distribution.  This is the "statistical tests of similarity to the real
/// workload" facility the paper lists among its objectives (section 2.2).
TestResult ks_test(std::vector<double> data, const dist::Distribution& reference);

/// Two-sample Kolmogorov–Smirnov test.
TestResult ks_test_two_sample(std::vector<double> a, std::vector<double> b);

/// Kolmogorov–Smirnov D statistic only (one sample).
double ks_statistic(std::vector<double> data, const dist::Distribution& reference);

/// Asymptotic Kolmogorov survival function Q(lambda) = P(D > d).
double kolmogorov_q(double lambda);

/// Chi-square goodness-of-fit on binned counts vs expected counts.
/// Bins with expected < min_expected are pooled with their right neighbour.
TestResult chi_square_test(const std::vector<double>& observed,
                           const std::vector<double>& expected, double min_expected = 5.0);

}  // namespace wlgen::stats
