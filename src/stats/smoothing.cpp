#include "stats/smoothing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlgen::stats {

std::vector<double> moving_average(const std::vector<double>& values, std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_average: window must be >= 1");
  if (window % 2 == 0) {
    throw std::invalid_argument("moving_average: window must be odd (got " +
                                std::to_string(window) + "); a centred window has no even form");
  }
  const std::size_t half = window / 2;
  std::vector<double> out(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(values.size() - 1, i + half);
    double sum = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) sum += values[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> gaussian_smooth(const std::vector<double>& values, double sigma_bins) {
  if (sigma_bins <= 0.0) throw std::invalid_argument("gaussian_smooth: sigma must be > 0");
  const long long radius = std::max<long long>(1, static_cast<long long>(std::ceil(3.0 * sigma_bins)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double ksum = 0.0;
  for (long long k = -radius; k <= radius; ++k) {
    const double w = std::exp(-0.5 * (static_cast<double>(k) / sigma_bins) *
                              (static_cast<double>(k) / sigma_bins));
    kernel[static_cast<std::size_t>(k + radius)] = w;
    ksum += w;
  }
  for (auto& w : kernel) w /= ksum;

  std::vector<double> out(values.size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    double acc = 0.0;
    double used = 0.0;
    for (long long k = -radius; k <= radius; ++k) {
      const long long j = static_cast<long long>(i) + k;
      if (j < 0 || j >= static_cast<long long>(values.size())) continue;
      const double w = kernel[static_cast<std::size_t>(k + radius)];
      acc += w * values[static_cast<std::size_t>(j)];
      used += w;
    }
    out[i] = used > 0.0 ? acc / used : 0.0;
  }
  return out;
}

Histogram smooth_histogram(const Histogram& h, SmoothingKind kind, double parameter) {
  std::vector<double> smoothed;
  switch (kind) {
    case SmoothingKind::moving_average: {
      // The parameter is a bin count: reject fractional windows instead of
      // truncating them (3.7 used to become 3 silently).
      const double rounded = std::round(parameter);
      if (parameter < 1.0 || rounded != parameter) {
        throw std::invalid_argument(
            "smooth_histogram: moving-average window must be an odd integer >= 1 (got " +
            std::to_string(parameter) + ")");
      }
      smoothed = moving_average(h.counts(), static_cast<std::size_t>(rounded));
      break;
    }
    case SmoothingKind::gaussian:
      smoothed = gaussian_smooth(h.counts(), parameter);
      break;
  }
  // Renormalise so the smoothed histogram has the same total count.
  double before = 0.0, after = 0.0;
  for (double c : h.counts()) before += c;
  for (double c : smoothed) after += c;
  if (after > 0.0 && before > 0.0) {
    for (auto& c : smoothed) c *= before / after;
  }
  Histogram out(h.low(), h.high(), h.bin_count());
  out.set_counts(std::move(smoothed));
  return out;
}

}  // namespace wlgen::stats
