#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "fsmodel/disk.h"
#include "fsmodel/lru_cache.h"
#include "fsmodel/model.h"
#include "net/network.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace wlgen::fsmodel {

/// Tunables for WholeFileCacheModel.
struct WholeFileParams {
  std::size_t cache_files = 512;          ///< local whole-file cache entries
  double open_check_us = 120.0;           ///< callback validity check on hit
  double local_io_us = 55.0;              ///< per read/write once cached
  double byte_copy_us_per_kb = 10.0;      ///< memcpy per KiB moved
  double server_cpu_us = 300.0;           ///< per fetch/store RPC
  std::uint64_t rpc_request_bytes = 160;  ///< control message payload
  std::uint64_t max_transfer_bytes = 1u << 20;  ///< cap per fetch (sanity)
  net::NetworkParams network = {};
  DiskParams disk = {};
};

/// Performance model of an Andrew-style whole-file-caching distributed file
/// system — the comparator in Howard et al. (cited by the paper, section
/// 2.1): open() fetches the entire file to the local cache, reads and writes
/// are then local, and close() stores modified files back to the server.
///
/// Against NFS the expected contrast (bench/compare_fs) is expensive opens of
/// large cold files but near-local data operations — exactly the trade-off
/// the Andrew measurements report.
class WholeFileCacheModel final : public FileSystemModel {
 public:
  WholeFileCacheModel(sim::Simulation& sim, WholeFileParams params = {});

  std::string name() const override { return "wholefile"; }
  std::string stats_summary() const override;
  void reset_stats() override;
  void flush_caches() override;

  const LruCache& file_cache() const { return file_cache_; }
  const WholeFileParams& params() const { return params_; }
  std::uint64_t fetches() const { return fetches_; }
  std::uint64_t stores() const { return stores_; }

 protected:
  sim::StageChain plan_op(const FsOp& op) override;

 private:
  void append_transfer(sim::StageChain& chain, std::uint64_t bytes, bool to_client);

  sim::Simulation& sim_;
  WholeFileParams params_;
  net::Network network_;
  sim::Resource client_cpu_;
  sim::Resource server_cpu_;
  sim::Resource server_disk_;
  LruCache file_cache_;
  std::unordered_set<std::uint64_t> dirty_files_;
  std::unordered_map<std::uint64_t, std::uint64_t> cached_size_;
  std::uint64_t fetches_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace wlgen::fsmodel
