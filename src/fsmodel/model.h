#pragma once

#include <cstdint>
#include <string>

#include "sim/stages.h"

namespace wlgen::fsmodel {

/// File I/O system calls at the level the paper models workload: "we chose
/// kernel level (or system call level in UNIX systems) as the appropriate
/// level at which to model the workload" (section 3.1.2).
enum class FsOpType {
  open,
  close,
  read,
  write,
  creat,
  unlink,
  stat,
  lseek,
  mkdir,
  readdir,
};

/// Number of FsOpType values — sizes per-op tally arrays (obs::OpTally).
inline constexpr std::size_t kFsOpTypeCount = 10;

/// Name of an op type ("open", "read", ...).
const char* to_string(FsOpType type);

/// True for the calls that move file data (read/write); these are the calls
/// whose access size Table 5.3 characterises.
bool is_data_op(FsOpType type);

/// A system call as seen by a performance model.  The logical outcome (how
/// many bytes exist, whether the path resolves) is decided by
/// fs::SimulatedFileSystem; models only need the identifiers and sizes to
/// drive caches and to size transfers.
struct FsOp {
  FsOpType type = FsOpType::read;
  std::uint64_t file_id = 0;    ///< inode id; keys the caches
  std::uint64_t offset = 0;     ///< starting byte offset (read/write)
  std::uint64_t size = 0;       ///< bytes moved (read/write) or dir size hint
  std::uint64_t file_size = 0;  ///< current file size (whole-file transfers)
  std::uint32_t client = 0;     ///< issuing workstation (multi-client models)
};

/// A file-system performance model: compiles each system call into a chain
/// of delay/resource stages whose execution time is the call's response
/// time.  Implementations correspond to the systems the paper measures or
/// proposes comparing (section 5.3): SUN NFS, a local-disk UNIX file system,
/// and an Andrew-style whole-file-caching distributed file system.
///
/// Models mutate their cache state at plan time.  Two back-to-back plans of
/// the same block therefore see a warm cache even if the first fetch is
/// still in flight — a deliberate simplification (real clients block the
/// second reader on the in-flight fetch, with similar aggregate latency).
class FileSystemModel {
 public:
  virtual ~FileSystemModel() = default;

  /// Compiles one system call into a stage chain and updates model state.
  /// Applies the current service scale (fault-injection slowdown windows,
  /// src/traffic/faults.h) to every stage; at the default scale of 1 the
  /// chain is returned untouched, so fault-free runs stay bit-identical
  /// with pre-traffic builds.
  sim::StageChain plan(const FsOp& op) {
    sim::StageChain chain = plan_op(op);
    if (service_scale_ != 1.0) {
      for (sim::Stage& stage : chain) stage.duration *= service_scale_;
    }
    return chain;
  }

  /// Multiplier applied to every planned stage duration (1 = nominal).
  /// Fault slowdown windows toggle this from the DES timeline.
  void set_service_scale(double scale) { service_scale_ = scale; }
  double service_scale() const { return service_scale_; }

  /// Drops all cached state (client/server block, attribute and whole-file
  /// caches, dirty accounting, sequentiality tracking) — the cache-flush
  /// fault.  Statistics counters are kept.
  virtual void flush_caches() = 0;

  /// Model name for reports ("nfs", "local", "wholefile").
  virtual std::string name() const = 0;

  /// Multi-line human-readable statistics (cache ratios, utilisations).
  virtual std::string stats_summary() const = 0;

  /// Resets statistical counters (cache contents are kept).
  virtual void reset_stats() = 0;

 protected:
  /// Compiles one system call at nominal service times; the public plan()
  /// wrapper applies the slowdown scale.
  virtual sim::StageChain plan_op(const FsOp& op) = 0;

 private:
  double service_scale_ = 1.0;
};

}  // namespace wlgen::fsmodel
