#pragma once

#include <cstdint>
#include <string>

#include "sim/stages.h"

namespace wlgen::fsmodel {

/// File I/O system calls at the level the paper models workload: "we chose
/// kernel level (or system call level in UNIX systems) as the appropriate
/// level at which to model the workload" (section 3.1.2).
enum class FsOpType {
  open,
  close,
  read,
  write,
  creat,
  unlink,
  stat,
  lseek,
  mkdir,
  readdir,
};

/// Number of FsOpType values — sizes per-op tally arrays (obs::OpTally).
inline constexpr std::size_t kFsOpTypeCount = 10;

/// Name of an op type ("open", "read", ...).
const char* to_string(FsOpType type);

/// True for the calls that move file data (read/write); these are the calls
/// whose access size Table 5.3 characterises.
bool is_data_op(FsOpType type);

/// A system call as seen by a performance model.  The logical outcome (how
/// many bytes exist, whether the path resolves) is decided by
/// fs::SimulatedFileSystem; models only need the identifiers and sizes to
/// drive caches and to size transfers.
struct FsOp {
  FsOpType type = FsOpType::read;
  std::uint64_t file_id = 0;    ///< inode id; keys the caches
  std::uint64_t offset = 0;     ///< starting byte offset (read/write)
  std::uint64_t size = 0;       ///< bytes moved (read/write) or dir size hint
  std::uint64_t file_size = 0;  ///< current file size (whole-file transfers)
  std::uint32_t client = 0;     ///< issuing workstation (multi-client models)
};

/// A file-system performance model: compiles each system call into a chain
/// of delay/resource stages whose execution time is the call's response
/// time.  Implementations correspond to the systems the paper measures or
/// proposes comparing (section 5.3): SUN NFS, a local-disk UNIX file system,
/// and an Andrew-style whole-file-caching distributed file system.
///
/// Models mutate their cache state at plan time.  Two back-to-back plans of
/// the same block therefore see a warm cache even if the first fetch is
/// still in flight — a deliberate simplification (real clients block the
/// second reader on the in-flight fetch, with similar aggregate latency).
class FileSystemModel {
 public:
  virtual ~FileSystemModel() = default;

  /// Compiles one system call into a stage chain and updates model state.
  virtual sim::StageChain plan(const FsOp& op) = 0;

  /// Model name for reports ("nfs", "local", "wholefile").
  virtual std::string name() const = 0;

  /// Multi-line human-readable statistics (cache ratios, utilisations).
  virtual std::string stats_summary() const = 0;

  /// Resets statistical counters (cache contents are kept).
  virtual void reset_stats() = 0;
};

}  // namespace wlgen::fsmodel
