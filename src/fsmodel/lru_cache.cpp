#include "fsmodel/lru_cache.h"

namespace wlgen::fsmodel {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("LruCache: capacity must be >= 1");
}

bool LruCache::access(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

bool LruCache::contains(std::uint64_t key) const { return index_.count(key) != 0; }

bool LruCache::insert(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return false;
  }
  bool evicted = false;
  if (index_.size() >= capacity_) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    index_.erase(victim);
    evicted = true;
  }
  order_.push_front(key);
  index_.emplace(key, order_.begin());
  return evicted;
}

void LruCache::erase(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

void LruCache::clear() {
  order_.clear();
  index_.clear();
}

double LruCache::hit_ratio() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void LruCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace wlgen::fsmodel
