#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <stdexcept>
#include <unordered_map>

namespace wlgen::fsmodel {

/// Fixed-capacity LRU set keyed by 64-bit ids (block keys, inode numbers).
/// Used for the NFS client block/attribute caches and the server buffer
/// cache; the hit/miss counters feed the model statistics.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  /// Looks up `key`; a hit refreshes recency.  Counted in the statistics.
  bool access(std::uint64_t key);

  /// True when present, without updating recency or statistics.
  bool contains(std::uint64_t key) const;

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when at capacity.  Returns true when an eviction happened.
  bool insert(std::uint64_t key);

  /// Removes a key if present (e.g. invalidation after unlink).
  void erase(std::uint64_t key);

  /// Drops everything.
  void clear();

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// hits / (hits + misses); 0 when no accesses were made.
  double hit_ratio() const;

  void reset_stats();

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // most recent at front
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wlgen::fsmodel
