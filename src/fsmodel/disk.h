#pragma once

#include <cstdint>

namespace wlgen::fsmodel {

/// Service-time model of a late-1980s SCSI disk of the class behind the
/// paper's SUN 4/490 file server.  Service time = seek + rotation + transfer;
/// the values below give ~20 ms per 8 KiB block, consistent with the
/// hardware of the paper's testbed era.
struct DiskParams {
  double avg_seek_us = 12000.0;        ///< average seek
  double avg_rotation_us = 8300.0;     ///< half-revolution at 3600 rpm
  double transfer_bytes_per_us = 1.0;  ///< ~1 MB/s media rate
  double metadata_io_us = 6000.0;      ///< short inode/indirect-block I/O
};

/// Deterministic per-request service time; variability in observed response
/// times comes from queueing and cache hit/miss mixtures, not from the disk
/// itself, which keeps experiments reproducible.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params = {});

  /// Full seek + rotation + transfer for `bytes` of payload.
  double io_time_us(std::uint64_t bytes) const;

  /// Metadata (inode / directory block) service time.
  double metadata_time_us() const;

  /// Sequential follow-on transfer (no seek, half rotation) for readahead.
  double sequential_io_time_us(std::uint64_t bytes) const;

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
};

}  // namespace wlgen::fsmodel
