#include "fsmodel/model.h"

namespace wlgen::fsmodel {

const char* to_string(FsOpType type) {
  switch (type) {
    case FsOpType::open: return "open";
    case FsOpType::close: return "close";
    case FsOpType::read: return "read";
    case FsOpType::write: return "write";
    case FsOpType::creat: return "creat";
    case FsOpType::unlink: return "unlink";
    case FsOpType::stat: return "stat";
    case FsOpType::lseek: return "lseek";
    case FsOpType::mkdir: return "mkdir";
    case FsOpType::readdir: return "readdir";
  }
  return "unknown";
}

bool is_data_op(FsOpType type) { return type == FsOpType::read || type == FsOpType::write; }

}  // namespace wlgen::fsmodel
