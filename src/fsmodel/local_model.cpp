#include "fsmodel/local_model.h"

#include <sstream>

namespace wlgen::fsmodel {

namespace {
constexpr std::uint64_t kBlockKeyShift = 24;
}

LocalDiskModel::LocalDiskModel(sim::Simulation& sim, LocalParams params)
    : sim_(sim),
      params_(params),
      cpu_(sim, "local-cpu", 1),
      disk_(sim, "local-disk", 1),
      buffer_cache_(params.buffer_cache_blocks),
      inode_cache_(params.inode_cache_entries) {}

std::uint64_t LocalDiskModel::block_key(std::uint64_t file_id, std::uint64_t block_index) const {
  return (file_id << kBlockKeyShift) ^ block_index;
}

double LocalDiskModel::copy_cost_us(std::uint64_t bytes) const {
  return params_.byte_copy_us_per_kb * static_cast<double>(bytes) / 1024.0;
}

void LocalDiskModel::schedule_async_flush(std::uint64_t bytes) {
  DiskModel disk(params_.disk);
  sim::StageChain flush;
  flush.push_back(sim::Stage::make_use(disk_, disk.io_time_us(bytes)));
  ++async_flushes_;
  sim::execute_chain(sim_, std::move(flush), [](sim::SimTime) {});
}

sim::StageChain LocalDiskModel::plan_op(const FsOp& op) {
  DiskModel disk(params_.disk);
  sim::StageChain chain;
  switch (op.type) {
    case FsOpType::read: {
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us + copy_cost_us(op.size)));
      if (op.size == 0) break;
      const std::uint64_t first = op.offset / params_.block_size;
      const std::uint64_t last = (op.offset + op.size - 1) / params_.block_size;
      const bool sequential = last_end_[op.file_id] == op.offset;
      for (std::uint64_t b = first; b <= last; ++b) {
        const std::uint64_t key = block_key(op.file_id, b);
        if (buffer_cache_.access(key)) {
          chain.push_back(sim::Stage::make_use(cpu_, params_.cache_hit_us));
        } else {
          const double service = (sequential || b != first)
                                     ? disk.sequential_io_time_us(params_.block_size)
                                     : disk.io_time_us(params_.block_size);
          chain.push_back(sim::Stage::make_use(disk_, service));
          buffer_cache_.insert(key);
        }
      }
      last_end_[op.file_id] = op.offset + op.size;
      break;
    }
    case FsOpType::write: {
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us + copy_cost_us(op.size)));
      if (op.size == 0) break;
      const std::uint64_t first = op.offset / params_.block_size;
      const std::uint64_t last = (op.offset + op.size - 1) / params_.block_size;
      for (std::uint64_t b = first; b <= last; ++b) buffer_cache_.insert(block_key(op.file_id, b));
      last_end_[op.file_id] = op.offset + op.size;
      if (params_.async_writes) {
        std::uint64_t& dirty = dirty_bytes_[op.file_id];
        dirty += op.size;
        while (dirty >= params_.block_size) {
          dirty -= params_.block_size;
          schedule_async_flush(params_.block_size);
        }
      } else {
        chain.push_back(sim::Stage::make_use(disk_, disk.io_time_us(op.size)));
      }
      break;
    }
    case FsOpType::open:
    case FsOpType::stat:
    case FsOpType::readdir: {
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us));
      if (!inode_cache_.access(op.file_id)) {
        chain.push_back(sim::Stage::make_use(disk_, disk.metadata_time_us()));
        inode_cache_.insert(op.file_id);
      }
      break;
    }
    case FsOpType::creat:
    case FsOpType::unlink:
    case FsOpType::mkdir: {
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us));
      // UFS writes metadata synchronously for crash consistency.
      chain.push_back(sim::Stage::make_use(disk_, disk.metadata_time_us()));
      if (op.type == FsOpType::unlink) {
        inode_cache_.erase(op.file_id);
      } else {
        inode_cache_.insert(op.file_id);
      }
      break;
    }
    case FsOpType::close: {
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us * 0.5));
      // Delayed writes remain in the buffer cache past close (classic UNIX);
      // push whatever is left to the background flusher.
      const auto it = dirty_bytes_.find(op.file_id);
      if (it != dirty_bytes_.end() && it->second > 0) {
        schedule_async_flush(it->second);
        it->second = 0;
      }
      break;
    }
    case FsOpType::lseek:
      chain.push_back(sim::Stage::make_use(cpu_, params_.syscall_overhead_us * 0.5));
      break;
  }
  return chain;
}

std::string LocalDiskModel::stats_summary() const {
  std::ostringstream out;
  out << "local model: async_flushes=" << async_flushes_ << "\n";
  out << "  buffer cache: hits=" << buffer_cache_.hits() << " misses=" << buffer_cache_.misses()
      << " ratio=" << buffer_cache_.hit_ratio() << "\n";
  out << "  disk: completed=" << disk_.completed() << " utilization=" << disk_.utilization()
      << "\n";
  return out.str();
}

void LocalDiskModel::reset_stats() {
  cpu_.reset_stats();
  buffer_cache_.reset_stats();
  inode_cache_.reset_stats();
  disk_.reset_stats();
  async_flushes_ = 0;
}

void LocalDiskModel::flush_caches() {
  buffer_cache_.clear();
  inode_cache_.clear();
  dirty_bytes_.clear();
  last_end_.clear();
}

}  // namespace wlgen::fsmodel
