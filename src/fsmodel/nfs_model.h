#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fsmodel/disk.h"
#include "fsmodel/lru_cache.h"
#include "fsmodel/model.h"
#include "net/network.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace wlgen::fsmodel {

/// Tunables for NfsModel.  Defaults are calibrated so a single default user
/// (exp(1024)-byte accesses, exp(5000) µs think time) measures a mean
/// response in the low milliseconds with standard deviation several times
/// the mean — the regime of paper Table 5.3.
struct NfsParams {
  std::uint64_t block_size = 8192;          ///< NFS transfer block
  std::size_t client_cache_blocks = 384;    ///< ~3 MB client buffer cache
  std::size_t client_attr_entries = 256;    ///< client attribute cache
  std::size_t server_cache_blocks = 2048;   ///< ~16 MB server buffer cache
  std::size_t server_attr_entries = 4096;   ///< server inode cache
  double client_overhead_us = 220.0;        ///< syscall + VFS + cache lookup on a ~1.5 MIPS client
  double client_hit_us = 110.0;             ///< cache-hit copy per block
  double client_byte_copy_us_per_kb = 15.0; ///< memcpy cost per KiB moved
  double server_cpu_us = 250.0;             ///< RPC decode + FS code per call
  double server_cache_hit_us = 180.0;       ///< server buffer-cache copy
  std::uint64_t rpc_request_bytes = 128;    ///< NFS call message payload
  std::uint64_t rpc_reply_meta_bytes = 96;  ///< reply envelope sans data
  net::NetworkParams network = {};          ///< shared Ethernet segment
  DiskParams disk = {};                     ///< server disk
  bool async_writes = true;                 ///< client write-behind (biod)
  /// Client read-ahead depth in blocks — the read half of the biod daemons
  /// (SunOS prefetches on sequential reads just as it write-behinds).  After
  /// a sequential read the client fetches the next `readahead_blocks`
  /// uncached blocks in the background: the transfer consumes the network,
  /// server CPU/cache/disk (so contended capacity is still spent) but its
  /// latency is hidden from the issuing call, which is what keeps the
  /// per-byte floor of large sequential transfers near the copy cost
  /// (Figure 5.12's amortisation argument).  0 disables.
  std::size_t readahead_blocks = 1;
  /// Number of client workstations sharing the network and server.  The
  /// paper's testbed is one SUN 3/50 (num_clients = 1); larger values model
  /// the "distributed system, consisting of possible different types of
  /// machines" the paper's introduction targets — each client has its own
  /// CPU and caches, so moving users onto separate workstations removes the
  /// client bottleneck while keeping the shared server and Ethernet.
  std::size_t num_clients = 1;
};

/// Performance model of the paper's measurement target: SUN NFS with all
/// user files on a remote server (section 5.1: "all the files accessed were
/// stored in a SUN 4/490 file server").
///
/// Topology: `num_clients` client workstations (the paper: one SUN 3/50
/// shared by 1–6 users), one Ethernet segment, one server with a CPU and a
/// FCFS disk.  Client-side syscall work contends on the owning client's CPU
/// — with zero think time that is what makes response times grow
/// near-linearly with users (Figure 5.6) even when caches absorb most
/// accesses.  Per-client block + attribute caches and a server buffer cache
/// are real LRU structures driven by the actual op stream, so hit ratios
/// emerge from workload locality rather than being dialled in.
class NfsModel final : public FileSystemModel {
 public:
  NfsModel(sim::Simulation& sim, NfsParams params = {});

  std::string name() const override { return "nfs"; }
  std::string stats_summary() const override;
  void reset_stats() override;
  void flush_caches() override;

  const NfsParams& params() const { return params_; }
  std::size_t num_clients() const { return clients_.size(); }

  /// Client-0 views (the paper's single-workstation accessors) plus
  /// per-client variants.
  const LruCache& client_cache(std::size_t client = 0) const;
  const LruCache& client_attr_cache(std::size_t client = 0) const;
  sim::Resource& client_cpu(std::size_t client = 0);

  const LruCache& server_cache() const { return server_cache_; }
  sim::Resource& server_disk() { return server_disk_; }
  sim::Resource& server_cpu() { return server_cpu_; }
  net::Network& network() { return network_; }
  std::uint64_t rpc_count() const { return rpcs_; }
  std::uint64_t readahead_count() const { return readaheads_; }

 protected:
  sim::StageChain plan_op(const FsOp& op) override;

 private:
  /// Per-workstation state: its CPU and its caches.
  struct Client {
    Client(sim::Simulation& sim, const NfsParams& params, std::size_t index);

    sim::Resource cpu;
    LruCache cache;
    LruCache attr;
    std::unordered_map<std::uint64_t, std::uint64_t> dirty_bytes;  // file -> unflushed
    std::unordered_map<std::uint64_t, std::uint64_t> last_end;     // file -> last read end
  };

  Client& client_for(const FsOp& op);
  std::uint64_t block_key(std::uint64_t file_id, std::uint64_t block_index) const;
  void append_block_fetch(sim::StageChain& chain, std::uint64_t key, bool sequential);
  void plan_block_read(sim::StageChain& chain, Client& client, std::uint64_t file_id,
                       std::uint64_t block, bool sequential);
  void schedule_async_flush(std::uint64_t bytes);
  void schedule_readahead(Client& client, std::uint64_t file_id, std::uint64_t first_block,
                          std::uint64_t file_blocks);
  sim::StageChain plan_read(const FsOp& op);
  sim::StageChain plan_write(const FsOp& op);
  sim::StageChain plan_metadata(const FsOp& op, bool mutates);
  double copy_cost_us(std::uint64_t bytes) const;

  sim::Simulation& sim_;
  NfsParams params_;
  net::Network network_;
  sim::Resource server_cpu_;
  sim::Resource server_disk_;
  std::vector<std::unique_ptr<Client>> clients_;
  LruCache server_cache_;
  LruCache server_attr_;
  std::uint64_t rpcs_ = 0;
  std::uint64_t async_flushes_ = 0;
  std::uint64_t readaheads_ = 0;
};

}  // namespace wlgen::fsmodel
