#pragma once

#include <cstdint>
#include <unordered_map>

#include "fsmodel/disk.h"
#include "fsmodel/lru_cache.h"
#include "fsmodel/model.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace wlgen::fsmodel {

/// Tunables for LocalDiskModel.
struct LocalParams {
  std::uint64_t block_size = 4096;         ///< UFS block
  std::size_t buffer_cache_blocks = 1024;  ///< ~4 MB kernel buffer cache
  std::size_t inode_cache_entries = 512;   ///< in-core inode table
  double syscall_overhead_us = 120.0;      ///< trap + FS code (same-era CPU, no RPC layer)
  double cache_hit_us = 45.0;              ///< buffer-cache copy per block
  double byte_copy_us_per_kb = 10.0;       ///< memcpy per KiB moved
  DiskParams disk = {};                    ///< the local spindle
  bool async_writes = true;                ///< delayed-write buffer cache
};

/// Performance model of a conventional local UNIX file system (UFS-style
/// buffer cache over one local disk).  This is the "local disk" alternative
/// in the paper's file-system comparison procedure (section 5.3): same
/// client machine, no network, a private spindle.
class LocalDiskModel final : public FileSystemModel {
 public:
  LocalDiskModel(sim::Simulation& sim, LocalParams params = {});

  std::string name() const override { return "local"; }
  std::string stats_summary() const override;
  void reset_stats() override;
  void flush_caches() override;

  const LruCache& buffer_cache() const { return buffer_cache_; }
  sim::Resource& disk_resource() { return disk_; }
  sim::Resource& cpu_resource() { return cpu_; }
  const LocalParams& params() const { return params_; }

 protected:
  sim::StageChain plan_op(const FsOp& op) override;

 private:
  std::uint64_t block_key(std::uint64_t file_id, std::uint64_t block_index) const;
  void schedule_async_flush(std::uint64_t bytes);
  double copy_cost_us(std::uint64_t bytes) const;

  sim::Simulation& sim_;
  LocalParams params_;
  sim::Resource cpu_;
  sim::Resource disk_;
  LruCache buffer_cache_;
  LruCache inode_cache_;
  std::unordered_map<std::uint64_t, std::uint64_t> dirty_bytes_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_end_;
  std::uint64_t async_flushes_ = 0;
};

}  // namespace wlgen::fsmodel
