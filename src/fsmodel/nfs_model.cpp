#include "fsmodel/nfs_model.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wlgen::fsmodel {

namespace {
constexpr std::uint64_t kBlockKeyShift = 24;  // 16M blocks per file id
}

NfsModel::Client::Client(sim::Simulation& sim, const NfsParams& params, std::size_t index)
    : cpu(sim, "nfs-client-cpu-" + std::to_string(index), 1),
      cache(params.client_cache_blocks),
      attr(params.client_attr_entries) {}

NfsModel::NfsModel(sim::Simulation& sim, NfsParams params)
    : sim_(sim),
      params_(params),
      network_(sim, params.network, "nfs-net"),
      server_cpu_(sim, "nfs-server-cpu", 1),
      server_disk_(sim, "nfs-server-disk", 1),
      server_cache_(params.server_cache_blocks),
      server_attr_(params.server_attr_entries) {
  if (params_.num_clients == 0) throw std::invalid_argument("NfsModel: need >= 1 client");
  for (std::size_t i = 0; i < params_.num_clients; ++i) {
    clients_.push_back(std::make_unique<Client>(sim, params_, i));
  }
}

NfsModel::Client& NfsModel::client_for(const FsOp& op) {
  return *clients_[op.client % clients_.size()];
}

const LruCache& NfsModel::client_cache(std::size_t client) const {
  return clients_.at(client)->cache;
}

const LruCache& NfsModel::client_attr_cache(std::size_t client) const {
  return clients_.at(client)->attr;
}

sim::Resource& NfsModel::client_cpu(std::size_t client) { return clients_.at(client)->cpu; }

std::uint64_t NfsModel::block_key(std::uint64_t file_id, std::uint64_t block_index) const {
  return (file_id << kBlockKeyShift) ^ block_index;
}

double NfsModel::copy_cost_us(std::uint64_t bytes) const {
  return params_.client_byte_copy_us_per_kb * static_cast<double>(bytes) / 1024.0;
}

void NfsModel::append_block_fetch(sim::StageChain& chain, std::uint64_t key, bool sequential) {
  // One full-block READ RPC: request travels, server CPU demultiplexes, the
  // server buffer cache decides whether the disk is touched, the block
  // travels back.  Shared by foreground misses and background read-ahead so
  // the two kinds of traffic can never drift apart in cost.
  ++rpcs_;
  network_.append_message_stages(chain, params_.rpc_request_bytes);
  chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
  DiskModel disk(params_.disk);
  if (server_cache_.access(key)) {
    chain.push_back(sim::Stage::make_delay(params_.server_cache_hit_us));
  } else {
    const double service = sequential ? disk.sequential_io_time_us(params_.block_size)
                                      : disk.io_time_us(params_.block_size);
    chain.push_back(sim::Stage::make_use(server_disk_, service));
    server_cache_.insert(key);
  }
  network_.append_message_stages(chain, params_.block_size + params_.rpc_reply_meta_bytes);
}

void NfsModel::plan_block_read(sim::StageChain& chain, Client& client, std::uint64_t file_id,
                               std::uint64_t block, bool sequential) {
  const std::uint64_t key = block_key(file_id, block);
  if (client.cache.access(key)) {
    chain.push_back(sim::Stage::make_use(client.cpu, params_.client_hit_us));
    return;
  }
  append_block_fetch(chain, key, sequential);
  client.cache.insert(key);
}

void NfsModel::schedule_readahead(Client& client, std::uint64_t file_id,
                                  std::uint64_t first_block, std::uint64_t file_blocks) {
  // Background read-ahead (the read half of biod): the prefetched block's
  // journey occupies the same resources as a foreground miss — so it still
  // costs shared capacity under contention — but the issuing call does not
  // wait for it.  The block is inserted into the caches at plan time, the
  // same simplification every cache decision in this model already makes.
  // Bounded at EOF (`file_blocks`): the client holds the file's attributes
  // and never fetches past the last block, which matters here because the
  // DI86 file population averages barely over one 8 KiB block per file.
  for (std::size_t i = 0; i < params_.readahead_blocks; ++i) {
    if (first_block + i >= file_blocks) return;
    const std::uint64_t key = block_key(file_id, first_block + i);
    if (client.cache.contains(key)) continue;
    sim::StageChain fetch;
    ++readaheads_;
    append_block_fetch(fetch, key, /*sequential=*/true);
    sim::execute_chain(sim_, std::move(fetch), [](sim::SimTime) {});
    client.cache.insert(key);
  }
}

sim::StageChain NfsModel::plan_read(const FsOp& op) {
  Client& client = client_for(op);
  sim::StageChain chain;
  chain.push_back(
      sim::Stage::make_use(client.cpu, params_.client_overhead_us + copy_cost_us(op.size)));
  if (op.size == 0) return chain;
  const std::uint64_t first = op.offset / params_.block_size;
  const std::uint64_t last = (op.offset + op.size - 1) / params_.block_size;
  const bool sequential = client.last_end[op.file_id] == op.offset;
  for (std::uint64_t b = first; b <= last; ++b) {
    // The first block of a fresh (non-sequential) access pays a full seek;
    // follow-on blocks stream sequentially.
    plan_block_read(chain, client, op.file_id, b, sequential || b != first);
  }
  // A *proven* sequential stream — a continuation, not a file's first read —
  // prefetches ahead of the reader, up to EOF (SunOS arms read-ahead once
  // consecutive reads are observed, not on every cold first access).
  if (sequential && op.offset > 0 && params_.readahead_blocks > 0 && op.file_size > 0) {
    const std::uint64_t file_blocks =
        (op.file_size + params_.block_size - 1) / params_.block_size;
    schedule_readahead(client, op.file_id, last + 1, file_blocks);
  }
  client.last_end[op.file_id] = op.offset + op.size;
  return chain;
}

void NfsModel::schedule_async_flush(std::uint64_t bytes) {
  // Background write-behind: occupies server CPU + disk (adding the load
  // other users contend with) without charging the issuing call.
  sim::StageChain flush;
  network_.append_message_stages(flush, bytes + params_.rpc_request_bytes);
  flush.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
  DiskModel disk(params_.disk);
  flush.push_back(sim::Stage::make_use(server_disk_, disk.io_time_us(bytes)));
  ++async_flushes_;
  ++rpcs_;
  sim::execute_chain(sim_, std::move(flush), [](sim::SimTime) {});
}

sim::StageChain NfsModel::plan_write(const FsOp& op) {
  Client& client = client_for(op);
  sim::StageChain chain;
  chain.push_back(
      sim::Stage::make_use(client.cpu, params_.client_overhead_us + copy_cost_us(op.size)));
  if (op.size == 0) return chain;

  // Written blocks land in the issuing client's cache.
  const std::uint64_t first = op.offset / params_.block_size;
  const std::uint64_t last = (op.offset + op.size - 1) / params_.block_size;
  for (std::uint64_t b = first; b <= last; ++b) client.cache.insert(block_key(op.file_id, b));
  client.last_end[op.file_id] = op.offset + op.size;

  if (!params_.async_writes) {
    // Synchronous write-through (NFSv2 semantics without biod).
    DiskModel disk(params_.disk);
    network_.append_message_stages(chain, op.size + params_.rpc_request_bytes);
    chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
    chain.push_back(sim::Stage::make_use(server_disk_, disk.io_time_us(op.size)));
    network_.append_message_stages(chain, params_.rpc_reply_meta_bytes);
    ++rpcs_;
    return chain;
  }

  // Write-behind: accumulate dirty bytes; flush in block_size units in the
  // background, the way the client biod daemons do.
  std::uint64_t& dirty = client.dirty_bytes[op.file_id];
  dirty += op.size;
  while (dirty >= params_.block_size) {
    dirty -= params_.block_size;
    schedule_async_flush(params_.block_size);
  }
  return chain;
}

sim::StageChain NfsModel::plan_metadata(const FsOp& op, bool mutates) {
  Client& client = client_for(op);
  sim::StageChain chain;
  chain.push_back(sim::Stage::make_use(client.cpu, params_.client_overhead_us));
  DiskModel disk(params_.disk);

  if (!mutates) {
    // open / stat / readdir: attribute cache first.
    if (client.attr.access(op.file_id)) return chain;
    ++rpcs_;
    network_.append_message_stages(chain, params_.rpc_request_bytes);
    chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
    if (!server_attr_.access(op.file_id)) {
      chain.push_back(sim::Stage::make_use(server_disk_, disk.metadata_time_us()));
      server_attr_.insert(op.file_id);
    }
    network_.append_message_stages(chain, params_.rpc_reply_meta_bytes);
    client.attr.insert(op.file_id);
    return chain;
  }

  // creat / unlink / mkdir: synchronous metadata update on the server disk
  // (NFS requires durable metadata before the reply).
  ++rpcs_;
  network_.append_message_stages(chain, params_.rpc_request_bytes);
  chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
  chain.push_back(sim::Stage::make_use(server_disk_, disk.metadata_time_us()));
  network_.append_message_stages(chain, params_.rpc_reply_meta_bytes);
  if (op.type == FsOpType::unlink) {
    // Invalidate everywhere: every client workstation and the server.
    for (auto& c : clients_) c->attr.erase(op.file_id);
    server_attr_.erase(op.file_id);
  } else {
    client.attr.insert(op.file_id);
    server_attr_.insert(op.file_id);
  }
  return chain;
}

sim::StageChain NfsModel::plan_op(const FsOp& op) {
  switch (op.type) {
    case FsOpType::read:
      return plan_read(op);
    case FsOpType::write:
      return plan_write(op);
    case FsOpType::open:
    case FsOpType::stat:
    case FsOpType::readdir:
      return plan_metadata(op, /*mutates=*/false);
    case FsOpType::creat:
    case FsOpType::unlink:
    case FsOpType::mkdir:
      return plan_metadata(op, /*mutates=*/true);
    case FsOpType::close: {
      Client& client = client_for(op);
      sim::StageChain chain;
      chain.push_back(sim::Stage::make_use(client.cpu, params_.client_overhead_us));
      // Close-to-open consistency: flush remaining dirty bytes synchronously.
      const auto it = client.dirty_bytes.find(op.file_id);
      if (it != client.dirty_bytes.end() && it->second > 0) {
        DiskModel disk(params_.disk);
        network_.append_message_stages(chain, it->second + params_.rpc_request_bytes);
        chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
        chain.push_back(sim::Stage::make_use(server_disk_, disk.io_time_us(it->second)));
        network_.append_message_stages(chain, params_.rpc_reply_meta_bytes);
        ++rpcs_;
        it->second = 0;
      }
      return chain;
    }
    case FsOpType::lseek: {
      // Purely client-side bookkeeping (still burns the client's CPU).
      Client& client = client_for(op);
      sim::StageChain chain;
      chain.push_back(sim::Stage::make_use(client.cpu, params_.client_overhead_us * 0.5));
      return chain;
    }
  }
  return {};
}

std::string NfsModel::stats_summary() const {
  std::ostringstream out;
  out << "nfs model: clients=" << clients_.size() << " rpcs=" << rpcs_
      << " async_flushes=" << async_flushes_ << " readaheads=" << readaheads_ << "\n";
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const Client& c = *clients_[i];
    out << "  client " << i << ": block cache hits=" << c.cache.hits()
        << " misses=" << c.cache.misses() << " ratio=" << c.cache.hit_ratio()
        << " cpu util=" << c.cpu.utilization() << "\n";
  }
  out << "  server block cache: hits=" << server_cache_.hits()
      << " misses=" << server_cache_.misses() << " ratio=" << server_cache_.hit_ratio() << "\n";
  out << "  server disk: completed=" << server_disk_.completed()
      << " utilization=" << server_disk_.utilization() << "\n";
  out << "  network: messages=" << network_.messages_sent()
      << " utilization=" << network_.medium().utilization() << "\n";
  return out.str();
}

void NfsModel::reset_stats() {
  for (auto& c : clients_) {
    c->cpu.reset_stats();
    c->cache.reset_stats();
    c->attr.reset_stats();
  }
  server_cache_.reset_stats();
  server_attr_.reset_stats();
  server_cpu_.reset_stats();
  server_disk_.reset_stats();
  network_.medium().reset_stats();
  rpcs_ = 0;
  async_flushes_ = 0;
  readaheads_ = 0;
}

void NfsModel::flush_caches() {
  for (auto& c : clients_) {
    c->cache.clear();
    c->attr.clear();
    c->dirty_bytes.clear();
    c->last_end.clear();
  }
  server_cache_.clear();
  server_attr_.clear();
}

}  // namespace wlgen::fsmodel
