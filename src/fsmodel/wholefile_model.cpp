#include "fsmodel/wholefile_model.h"

#include <algorithm>
#include <sstream>

namespace wlgen::fsmodel {

WholeFileCacheModel::WholeFileCacheModel(sim::Simulation& sim, WholeFileParams params)
    : sim_(sim),
      params_(params),
      network_(sim, params.network, "afs-net"),
      client_cpu_(sim, "afs-client-cpu", 1),
      server_cpu_(sim, "afs-server-cpu", 1),
      server_disk_(sim, "afs-server-disk", 1),
      file_cache_(params.cache_files) {}

void WholeFileCacheModel::append_transfer(sim::StageChain& chain, std::uint64_t bytes,
                                          bool to_client) {
  DiskModel disk(params_.disk);
  const std::uint64_t capped = std::min<std::uint64_t>(
      std::max<std::uint64_t>(bytes, 1), params_.max_transfer_bytes);
  network_.append_message_stages(chain, params_.rpc_request_bytes);
  chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
  chain.push_back(sim::Stage::make_use(server_disk_, disk.io_time_us(capped)));
  if (to_client) {
    network_.append_message_stages(chain, capped);
  } else {
    network_.append_message_stages(chain, params_.rpc_request_bytes);
  }
}

sim::StageChain WholeFileCacheModel::plan_op(const FsOp& op) {
  sim::StageChain chain;
  switch (op.type) {
    case FsOpType::open: {
      if (file_cache_.access(op.file_id)) {
        // Callback promise still valid: open is a local namei.
        chain.push_back(sim::Stage::make_use(client_cpu_, params_.open_check_us));
      } else {
        ++fetches_;
        chain.push_back(sim::Stage::make_use(client_cpu_, params_.open_check_us));
        append_transfer(chain, op.file_size, /*to_client=*/true);
        file_cache_.insert(op.file_id);
        cached_size_[op.file_id] = op.file_size;
      }
      break;
    }
    case FsOpType::creat: {
      // New file exists only locally until close; server registers the name.
      chain.push_back(sim::Stage::make_use(client_cpu_, params_.open_check_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      file_cache_.insert(op.file_id);
      cached_size_[op.file_id] = 0;
      break;
    }
    case FsOpType::read:
    case FsOpType::write: {
      // Data ops are local once the file is cached.
      chain.push_back(sim::Stage::make_use(
          client_cpu_,
          params_.local_io_us +
          params_.byte_copy_us_per_kb * static_cast<double>(op.size) / 1024.0));
      if (op.type == FsOpType::write) {
        dirty_files_.insert(op.file_id);
        std::uint64_t& sz = cached_size_[op.file_id];
        sz = std::max(sz, op.offset + op.size);
      }
      break;
    }
    case FsOpType::close: {
      chain.push_back(sim::Stage::make_use(client_cpu_, params_.local_io_us));
      const auto it = dirty_files_.find(op.file_id);
      if (it != dirty_files_.end()) {
        ++stores_;
        const std::uint64_t bytes =
            std::max<std::uint64_t>(cached_size_[op.file_id], op.file_size);
        append_transfer(chain, bytes, /*to_client=*/false);
        dirty_files_.erase(it);
      }
      break;
    }
    case FsOpType::unlink: {
      chain.push_back(sim::Stage::make_use(client_cpu_, params_.local_io_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      file_cache_.erase(op.file_id);
      dirty_files_.erase(op.file_id);
      cached_size_.erase(op.file_id);
      break;
    }
    case FsOpType::stat:
    case FsOpType::readdir: {
      // Served from the local cache/callbacks once warm.
      if (file_cache_.contains(op.file_id)) {
        chain.push_back(sim::Stage::make_use(client_cpu_, params_.open_check_us));
      } else {
        chain.push_back(sim::Stage::make_use(client_cpu_, params_.open_check_us));
        network_.append_message_stages(chain, params_.rpc_request_bytes);
        chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
        network_.append_message_stages(chain, params_.rpc_request_bytes);
      }
      break;
    }
    case FsOpType::mkdir: {
      chain.push_back(sim::Stage::make_use(client_cpu_, params_.local_io_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      chain.push_back(sim::Stage::make_use(server_cpu_, params_.server_cpu_us));
      network_.append_message_stages(chain, params_.rpc_request_bytes);
      break;
    }
    case FsOpType::lseek:
      chain.push_back(sim::Stage::make_use(client_cpu_, params_.local_io_us * 0.5));
      break;
  }
  return chain;
}

std::string WholeFileCacheModel::stats_summary() const {
  std::ostringstream out;
  out << "wholefile model: fetches=" << fetches_ << " stores=" << stores_ << "\n";
  out << "  file cache: hits=" << file_cache_.hits() << " misses=" << file_cache_.misses()
      << " ratio=" << file_cache_.hit_ratio() << "\n";
  out << "  server disk: completed=" << server_disk_.completed()
      << " utilization=" << server_disk_.utilization() << "\n";
  return out.str();
}

void WholeFileCacheModel::reset_stats() {
  client_cpu_.reset_stats();
  file_cache_.reset_stats();
  server_cpu_.reset_stats();
  server_disk_.reset_stats();
  network_.medium().reset_stats();
  fetches_ = 0;
  stores_ = 0;
}

void WholeFileCacheModel::flush_caches() {
  file_cache_.clear();
  dirty_files_.clear();
  cached_size_.clear();
}

}  // namespace wlgen::fsmodel
