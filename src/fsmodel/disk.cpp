#include "fsmodel/disk.h"

#include <stdexcept>

namespace wlgen::fsmodel {

DiskModel::DiskModel(DiskParams params) : params_(params) {
  if (params_.transfer_bytes_per_us <= 0.0) {
    throw std::invalid_argument("DiskModel: transfer rate must be > 0");
  }
  if (params_.avg_seek_us < 0.0 || params_.avg_rotation_us < 0.0 || params_.metadata_io_us < 0.0) {
    throw std::invalid_argument("DiskModel: negative timing parameter");
  }
}

double DiskModel::io_time_us(std::uint64_t bytes) const {
  return params_.avg_seek_us + params_.avg_rotation_us +
         static_cast<double>(bytes) / params_.transfer_bytes_per_us;
}

double DiskModel::metadata_time_us() const { return params_.metadata_io_us; }

double DiskModel::sequential_io_time_us(std::uint64_t bytes) const {
  return 0.5 * params_.avg_rotation_us +
         static_cast<double>(bytes) / params_.transfer_bytes_per_us;
}

}  // namespace wlgen::fsmodel
