#include "sim/resource.h"

#include <stdexcept>
#include <utility>

namespace wlgen::sim {

Resource::Resource(Simulation& sim, std::string name, std::size_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("Resource: capacity must be >= 1");
  stats_start_ = last_change_ = sim_.now();
}

void Resource::integrate_to_now() {
  const SimTime dt = sim_.now() - last_change_;
  if (dt > 0.0) {
    busy_integral_ += dt * static_cast<double>(busy_);
    queue_integral_ += dt * static_cast<double>(waiting_.size());
    last_change_ = sim_.now();
  }
}

void Resource::use(SimTime service_time, std::function<void()> on_complete) {
  if (service_time < 0.0) throw std::invalid_argument("Resource::use: negative service time");
  if (!on_complete) throw std::invalid_argument("Resource::use: empty completion");
  integrate_to_now();
  if (busy_ < capacity_) {
    start_service(Pending{service_time, std::move(on_complete)});
  } else {
    waiting_.push_back(Pending{service_time, std::move(on_complete)});
  }
}

void Resource::start_service(Pending request) {
  ++busy_;
  auto cb = std::move(request.on_complete);
  sim_.schedule(request.service_time,
                [this, cb = std::move(cb)]() mutable { on_service_done(std::move(cb)); });
}

void Resource::on_service_done(std::function<void()> on_complete) {
  integrate_to_now();
  --busy_;
  ++completed_;
  if (!waiting_.empty()) {
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    start_service(std::move(next));
  }
  // Run the completion after dequeueing the successor so a completion that
  // immediately re-enters use() observes a consistent queue.
  on_complete();
}

double Resource::utilization() const {
  const SimTime elapsed = sim_.now() - stats_start_;
  if (elapsed <= 0.0) return 0.0;
  double integral = busy_integral_;
  integral += (sim_.now() - last_change_) * static_cast<double>(busy_);
  return integral / (elapsed * static_cast<double>(capacity_));
}

double Resource::mean_queue_length() const {
  const SimTime elapsed = sim_.now() - stats_start_;
  if (elapsed <= 0.0) return 0.0;
  double integral = queue_integral_;
  integral += (sim_.now() - last_change_) * static_cast<double>(waiting_.size());
  return integral / elapsed;
}

SimTime Resource::busy_time() const {
  return busy_integral_ + (sim_.now() - last_change_) * static_cast<double>(busy_);
}

void Resource::reset_stats() {
  completed_ = 0;
  busy_integral_ = 0.0;
  queue_integral_ = 0.0;
  stats_start_ = last_change_ = sim_.now();
}

}  // namespace wlgen::sim
