#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

namespace wlgen::sim {

void Simulation::schedule(SimTime delay, std::function<void()> action) {
  if (delay < 0.0) throw std::invalid_argument("Simulation::schedule: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void Simulation::schedule_at(SimTime when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  if (!action) throw std::invalid_argument("Simulation::schedule_at: empty action");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

void Simulation::run(std::size_t max_events) {
  while (!queue_.empty()) {
    if (max_events != 0 && processed_ >= max_events) {
      throw std::runtime_error("Simulation::run: event budget exhausted (possible livelock)");
    }
    // priority_queue::top returns const&; move out via const_cast-free copy of
    // the small struct members and pop before running so the action can
    // schedule freely.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.action();
  }
}

void Simulation::run_until(SimTime t) {
  if (t < now_) throw std::invalid_argument("Simulation::run_until: time in the past");
  while (!queue_.empty() && queue_.top().when <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.action();
  }
  now_ = t;
}

}  // namespace wlgen::sim
