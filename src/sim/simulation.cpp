#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace wlgen::sim {

namespace {
constexpr std::size_t kArity = 4;
}

void Simulation::schedule(SimTime delay, EventFn action) {
  if (delay < 0.0) throw std::invalid_argument("Simulation::schedule: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void Simulation::schedule_at(SimTime when, EventFn action) {
  if (when < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  if (!action) throw std::invalid_argument("Simulation::schedule_at: empty action");

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(action);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(action));
  }
  heap_keys_.push_back(HeapKey{when, next_seq_++});
  heap_slots_.push_back(slot);
  sift_up(heap_keys_.size() - 1);
}

void Simulation::reset() {
  heap_keys_.clear();
  heap_slots_.clear();
  // clear() destroys the pooled callbacks but keeps the vector capacity, so
  // the next run repopulates slots in place without reallocating.
  slots_.clear();
  free_slots_.clear();
  now_ = 0.0;
  next_seq_ = 0;
  processed_ = 0;
}

void Simulation::sift_up(std::size_t i) {
  const HeapKey key = heap_keys_[i];
  const std::uint32_t slot = heap_slots_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(key, heap_keys_[parent])) break;
    heap_keys_[i] = heap_keys_[parent];
    heap_slots_[i] = heap_slots_[parent];
    i = parent;
  }
  heap_keys_[i] = key;
  heap_slots_[i] = slot;
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_keys_.size();
  const HeapKey key = heap_keys_[i];
  const std::uint32_t slot = heap_slots_[i];
  while (true) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_keys_[c], heap_keys_[best])) best = c;
    }
    if (!before(heap_keys_[best], key)) break;
    heap_keys_[i] = heap_keys_[best];
    heap_slots_[i] = heap_slots_[best];
    i = best;
  }
  heap_keys_[i] = key;
  heap_slots_[i] = slot;
}

void Simulation::dispatch_top() {
  const HeapKey top = heap_keys_.front();
  const std::uint32_t top_slot = heap_slots_.front();
  heap_keys_.front() = heap_keys_.back();
  heap_slots_.front() = heap_slots_.back();
  heap_keys_.pop_back();
  heap_slots_.pop_back();
  if (!heap_keys_.empty()) sift_down(0);

  // Move the callback out and recycle its slot *before* invoking, so the
  // action can schedule new events (possibly reusing this very slot).
  EventFn action = std::move(slots_[top_slot]);
  free_slots_.push_back(top_slot);
  now_ = top.when;
  ++processed_;
  action();
}

void Simulation::run(std::size_t max_events) {
  while (!heap_keys_.empty()) {
    if (max_events != 0 && processed_ >= max_events) {
      throw std::runtime_error("Simulation::run: event budget exhausted (possible livelock)");
    }
    dispatch_top();
  }
}

void Simulation::run_until(SimTime t) {
  if (t < now_) throw std::invalid_argument("Simulation::run_until: time in the past");
  while (!heap_keys_.empty() && heap_keys_.front().when <= t) dispatch_top();
  // The clock advances to t even when no event was pending — callers use
  // run_until to model idle wall-clock periods.
  now_ = t;
}

}  // namespace wlgen::sim
