#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulation.h"

namespace wlgen::sim {

/// A FCFS multi-server queueing resource (disk arm, server CPU, network
/// medium).  Requests that find all servers busy wait in arrival order.
///
/// The contention this produces is the entire mechanism behind the paper's
/// Figures 5.6–5.11: with zero think time every simulated user keeps a
/// request outstanding at the server disk, so response time grows linearly
/// with the number of users.
class Resource {
 public:
  /// capacity = number of parallel servers (>= 1).
  Resource(Simulation& sim, std::string name, std::size_t capacity = 1);
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Requests `service_time` microseconds of service; `on_complete` runs when
  /// the request finishes (after any queueing delay).
  void use(SimTime service_time, std::function<void()> on_complete);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Requests completed so far.
  std::uint64_t completed() const { return completed_; }

  /// Requests currently waiting (not in service).
  std::size_t queue_length() const { return waiting_.size(); }

  /// Requests currently in service.
  std::size_t in_service() const { return busy_; }

  /// Time-averaged utilisation in [0, 1]: busy-server integral over
  /// capacity * elapsed.  Zero before any time elapses.
  double utilization() const;

  /// Time-averaged number of waiting requests.
  double mean_queue_length() const;

  /// Total accumulated service time (busy-server time integral).
  SimTime busy_time() const;

  /// Resets counters and time integrals (state in service is kept).
  void reset_stats();

 private:
  struct Pending {
    SimTime service_time;
    std::function<void()> on_complete;
  };

  void integrate_to_now();
  void start_service(Pending request);
  void on_service_done(std::function<void()> on_complete);

  Simulation& sim_;
  std::string name_;
  std::size_t capacity_;
  std::size_t busy_ = 0;
  std::deque<Pending> waiting_;
  std::uint64_t completed_ = 0;

  SimTime stats_start_ = 0.0;
  SimTime last_change_ = 0.0;
  double busy_integral_ = 0.0;
  double queue_integral_ = 0.0;
};

}  // namespace wlgen::sim
