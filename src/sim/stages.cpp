#include "sim/stages.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace wlgen::sim {

Stage Stage::make_delay(SimTime duration) {
  if (duration < 0.0) throw std::invalid_argument("Stage::make_delay: negative duration");
  return Stage{Kind::delay, nullptr, duration};
}

Stage Stage::make_use(Resource& resource, SimTime service_time) {
  if (service_time < 0.0) throw std::invalid_argument("Stage::make_use: negative service time");
  return Stage{Kind::use, &resource, service_time};
}

SimTime chain_service_demand(const StageChain& chain) {
  SimTime total = 0.0;
  for (const auto& s : chain) total += s.duration;
  return total;
}

namespace {

struct ChainState {
  Simulation& sim;
  StageChain chain;
  std::function<void(SimTime)> done;
  SimTime start;
};

// Template keeps the continuation's concrete type: delay stages hand the raw
// lambda to Simulation::schedule (inline in EventFn, allocation-free), just
// as before the trace hook existed.
template <typename Fn>
void dispatch_stage(const std::shared_ptr<ChainState>& state, const Stage& stage,
                    Fn&& continuation) {
  switch (stage.kind) {
    case Stage::Kind::delay:
      state->sim.schedule(stage.duration, std::forward<Fn>(continuation));
      break;
    case Stage::Kind::use:
      if (stage.resource == nullptr) {
        throw std::logic_error("execute_chain: use stage without resource");
      }
      stage.resource->use(stage.duration, std::forward<Fn>(continuation));
      break;
  }
}

void run_stage(const std::shared_ptr<ChainState>& state, std::size_t index) {
  if (index >= state->chain.size()) {
    state->done(state->sim.now() - state->start);
    return;
  }
  const Stage& stage = state->chain[index];
  // One thread-local load + predictable branch when tracing is off; the
  // traced continuation schedules the same events at the same times, so the
  // simulated outcome — and every stats digest — is identical either way.
  obs::TraceRing* ring = obs::stage_trace_slot();
  if (ring == nullptr) {
    dispatch_stage(state, stage, [state, index]() { run_stage(state, index + 1); });
    return;
  }
  const SimTime t0 = state->sim.now();
  const std::uint32_t name_id = ring->intern(
      stage.kind == Stage::Kind::use && stage.resource != nullptr ? stage.resource->name()
                                                                  : "delay");
  dispatch_stage(state, stage, [state, index, ring, name_id, t0]() {
    obs::TraceEvent event;
    event.ts_us = t0;
    event.dur_us = state->sim.now() - t0;
    event.name_id = name_id;
    event.track = name_id;  // one virtual-time track per resource name
    ring->push(event);
    run_stage(state, index + 1);
  });
}

}  // namespace

void execute_chain(Simulation& sim, StageChain chain, std::function<void(SimTime)> done) {
  if (!done) throw std::invalid_argument("execute_chain: empty completion");
  auto state = std::make_shared<ChainState>(ChainState{sim, std::move(chain), std::move(done), sim.now()});
  run_stage(state, 0);
}

}  // namespace wlgen::sim
