#include "sim/stages.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace wlgen::sim {

Stage Stage::make_delay(SimTime duration) {
  if (duration < 0.0) throw std::invalid_argument("Stage::make_delay: negative duration");
  return Stage{Kind::delay, nullptr, duration};
}

Stage Stage::make_use(Resource& resource, SimTime service_time) {
  if (service_time < 0.0) throw std::invalid_argument("Stage::make_use: negative service time");
  return Stage{Kind::use, &resource, service_time};
}

SimTime chain_service_demand(const StageChain& chain) {
  SimTime total = 0.0;
  for (const auto& s : chain) total += s.duration;
  return total;
}

namespace {

struct ChainState {
  Simulation& sim;
  StageChain chain;
  std::function<void(SimTime)> done;
  SimTime start;
};

void run_stage(const std::shared_ptr<ChainState>& state, std::size_t index) {
  if (index >= state->chain.size()) {
    state->done(state->sim.now() - state->start);
    return;
  }
  const Stage& stage = state->chain[index];
  auto continuation = [state, index]() { run_stage(state, index + 1); };
  switch (stage.kind) {
    case Stage::Kind::delay:
      state->sim.schedule(stage.duration, std::move(continuation));
      break;
    case Stage::Kind::use:
      if (stage.resource == nullptr) {
        throw std::logic_error("execute_chain: use stage without resource");
      }
      stage.resource->use(stage.duration, std::move(continuation));
      break;
  }
}

}  // namespace

void execute_chain(Simulation& sim, StageChain chain, std::function<void(SimTime)> done) {
  if (!done) throw std::invalid_argument("execute_chain: empty completion");
  auto state = std::make_shared<ChainState>(ChainState{sim, std::move(chain), std::move(done), sim.now()});
  run_stage(state, 0);
}

}  // namespace wlgen::sim
