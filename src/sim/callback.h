#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace wlgen::sim {

/// Move-only type-erased `void()` callable with a small-buffer optimisation.
///
/// Captures up to kInlineCapacity bytes are stored inline — constructing,
/// moving and destroying such a callback never touches the heap, which is
/// what makes scheduling a simulation event allocation-free.  Larger
/// captures (rare: stage-chain continuations with big state) fall back to a
/// single heap cell.
///
/// Replaces std::function<void()> in the event queue: std::function's
/// small-buffer is both smaller and unspecified, and its copyability forces
/// capture-by-shared-state idioms the DES kernel does not need.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    // An empty std::function (or null function pointer) wraps to an empty
    // EventFn, so Simulation's schedule-time validation still rejects it
    // instead of crashing at dispatch time.
    if constexpr (requires { fn == nullptr; }) {
      if (fn == nullptr) return;
    }
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static inline const Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static inline const Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity]{};
  const Ops* ops_ = nullptr;
};

}  // namespace wlgen::sim
