#pragma once

#include <functional>
#include <vector>

#include "sim/resource.h"
#include "sim/simulation.h"

namespace wlgen::sim {

/// One step of a modelled operation: either a pure delay (no contention, e.g.
/// network propagation or a cache-hit copy) or the use of a contended
/// resource (disk, CPU, shared network medium).
struct Stage {
  enum class Kind { delay, use };

  Kind kind = Kind::delay;
  Resource* resource = nullptr;  ///< required when kind == use
  SimTime duration = 0.0;        ///< delay length or service demand, in µs

  static Stage make_delay(SimTime duration);
  static Stage make_use(Resource& resource, SimTime service_time);
};

/// A compiled operation: an ordered chain of stages.  File-system models
/// (fsmodel) compile each system call into one of these; the executor walks
/// the chain and reports the total elapsed (queueing + service) time, which
/// is exactly the paper's per-syscall response time.
using StageChain = std::vector<Stage>;

/// Total service demand of a chain (ignores queueing).
SimTime chain_service_demand(const StageChain& chain);

/// Executes the chain starting now; calls `done(elapsed_us)` when the last
/// stage finishes.  Many chains may be in flight concurrently.
void execute_chain(Simulation& sim, StageChain chain, std::function<void(SimTime)> done);

}  // namespace wlgen::sim
