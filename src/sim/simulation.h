#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wlgen::sim {

/// Simulated time in microseconds.  The paper reports every latency in
/// microseconds (Table 5.3, Figures 5.6–5.12), so the kernel adopts the same
/// unit.
using SimTime = double;

/// Discrete-event simulation kernel.
///
/// This replaces the wall clock of the paper's SUN 3/50 testbed: the USIM
/// "measures the response time of each file I/O system call by getting the
/// difference of before and after calling a system call" (section 5.1); here
/// the difference is taken on the simulated clock, which makes every
/// experiment deterministic and hardware-independent.
///
/// Events scheduled for the same instant fire in scheduling order (stable
/// FIFO tie-break), which the tests rely on.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` microseconds from now (delay >= 0).
  void schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute time `when` (>= now()).
  void schedule_at(SimTime when, std::function<void()> action);

  /// Runs until the event queue drains.  `max_events` guards against
  /// runaway self-scheduling loops (0 = unlimited).
  void run(std::size_t max_events = 0);

  /// Runs events with timestamp <= t, then sets now() = t.
  void run_until(SimTime t);

  /// Number of events executed so far.
  std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace wlgen::sim
