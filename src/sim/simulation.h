#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.h"

namespace wlgen::sim {

/// Simulated time in microseconds.  The paper reports every latency in
/// microseconds (Table 5.3, Figures 5.6–5.12), so the kernel adopts the same
/// unit.
using SimTime = double;

/// Discrete-event simulation kernel.
///
/// This replaces the wall clock of the paper's SUN 3/50 testbed: the USIM
/// "measures the response time of each file I/O system call by getting the
/// difference of before and after calling a system call" (section 5.1); here
/// the difference is taken on the simulated clock, which makes every
/// experiment deterministic and hardware-independent.
///
/// Events scheduled for the same instant fire in scheduling order (stable
/// FIFO tie-break), which the tests rely on.
///
/// Engineering (see DESIGN.md "Event core"): the pending set is an intrusive
/// 4-ary min-heap over a pooled arena of EventFn callbacks, stored SoA — a
/// hot (when, seq) key array the sifts compare against and a parallel
/// payload array of arena slots that only moves alongside it.  Sifts touch
/// ~2/3 of the bytes the former 24-byte AoS entries cost per level, which
/// is what the comparison-heavy sift_down path is bound by once the heap
/// outgrows L1.  Scheduling an event with a capture of up to
/// EventFn::kInlineCapacity bytes performs zero heap allocations once the
/// arena is warm — the std::function-per-event design this replaces paid one
/// malloc/free pair per simulated system call.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (microseconds since simulation start).
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` microseconds from now (delay >= 0).
  /// Accepts any void() callable; captures <= EventFn::kInlineCapacity bytes
  /// are stored inline (no allocation).
  void schedule(SimTime delay, EventFn action);

  /// Schedules `action` at absolute time `when` (>= now()).
  void schedule_at(SimTime when, EventFn action);

  /// Runs until the event queue drains.  `max_events` guards against
  /// runaway self-scheduling loops (0 = unlimited).
  void run(std::size_t max_events = 0);

  /// Runs events with timestamp <= t, then sets now() = t — also when the
  /// queue is already empty, so idle periods still advance the clock.
  void run_until(SimTime t);

  /// Rewinds the clock to 0 and discards any pending events, keeping the
  /// arena and heap storage warm.  This is the shard-runner reuse path (see
  /// DESIGN.md "Sharded runner"): one worker simulates many independent
  /// user timelines back to back on the same Simulation without paying the
  /// arena's allocation ramp-up again.
  void reset();

  /// Number of events executed so far.
  std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return heap_keys_.size(); }

  /// High-water mark of concurrently-pending events since the last reset().
  /// The arena only grows a slot when every existing slot is live, so its
  /// size IS the maximum simultaneous event count — a pure accessor, no
  /// hot-path bookkeeping.  reset() clears the slots (keeping capacity), so
  /// on the shard runner's reuse path this reports the current user's own
  /// peak, deterministic per user.
  std::size_t arena_high_water() const { return slots_.size(); }

 private:
  /// Hot half of a heap entry: everything the sift comparisons read.  The
  /// arena slot rides in the parallel heap_slots_ array (the callback
  /// itself never moves — it stays put in its arena slot until dispatch).
  struct HeapKey {
    SimTime when;
    std::uint64_t seq;
  };

  static bool before(const HeapKey& a, const HeapKey& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Pops the earliest event and runs it (advancing now_ and processed_).
  void dispatch_top();

  std::vector<HeapKey> heap_keys_;       ///< 4-ary min-heap, key half (SoA)
  std::vector<std::uint32_t> heap_slots_;  ///< payload half, parallel to heap_keys_
  std::vector<EventFn> slots_;           ///< pooled callback arena
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace wlgen::sim
