#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wlgen::util {

namespace {

[[noreturn]] void kind_error(const char* expected) {
  throw std::runtime_error(std::string("JsonValue: not a ") + expected);
}

/// Shortest round-trip double formatting via std::to_chars — compact, exact
/// and locale-independent (snprintf %g would emit "0,5" under a
/// comma-decimal LC_NUMERIC and corrupt the document).
std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, ptr) : "null";
}

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue();
    return parse_number();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    double v = 0.0;
    // from_chars: locale-independent, unlike strtod.
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("malformed number '" + std::string(token) + "'");
    }
    return JsonValue(v);
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a valid document pairs it with \uDC00-\uDFFF;
            // decoding the halves independently would emit invalid UTF-8.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          // Encode the code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::object;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::boolean) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::number) kind_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::string) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::array) kind_error("array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::object) kind_error("object");
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::array) kind_error("array");
  array_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::object) kind_error("object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::object) kind_error("object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("JsonValue: missing key '" + key + "'");
  return *v;
}

void JsonValue::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::null: out += "null"; break;
    case Kind::boolean: out += bool_ ? "true" : "false"; break;
    case Kind::number: out += format_number(number_); break;
    case Kind::string: escape_into(out, string_); break;
    case Kind::array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      // Scalar-only arrays (the xs/ys series payloads) render on one line.
      bool flat = true;
      for (const auto& v : array_) {
        if (v.kind_ == Kind::array || v.kind_ == Kind::object) flat = false;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (!flat) {
          out += '\n';
          out += pad_in;
        } else if (i != 0) {
          out += ' ';
        }
        array_[i].dump_to(out, indent + 1);
        if (i + 1 < array_.size()) out += ',';
      }
      if (!flat) {
        out += '\n';
        out += pad;
      }
      out += ']';
      break;
    }
    case Kind::object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += '\n';
        out += pad_in;
        escape_into(out, object_[i].first);
        out += ": ";
        object_[i].second.dump_to(out, indent + 1);
        if (i + 1 < object_.size()) out += ',';
      }
      out += '\n';
      out += pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace wlgen::util
