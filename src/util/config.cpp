#include "util/config.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace wlgen::util {

namespace {

[[noreturn]] void parse_fail(const std::string& origin, int line, const std::string& message) {
  throw std::invalid_argument(origin + ":" + std::to_string(line) + ": " + message);
}

bool valid_key(std::string_view key) {
  if (key.empty() || key.front() == '.' || key.back() == '.') return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// Parses the text after '=': either a quoted string (escapes honoured,
/// nothing but a comment may follow the closing quote) or a bare value cut
/// at the first # or ; and trimmed.
std::string parse_value(const std::string& origin, int line, std::string_view raw) {
  std::string_view text = raw;
  // Leading whitespace.
  std::size_t start = 0;
  while (start < text.size() && (text[start] == ' ' || text[start] == '\t')) ++start;
  text.remove_prefix(start);

  if (!text.empty() && text.front() == '"') {
    std::string value;
    std::size_t i = 1;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\\') {
        if (i + 1 >= text.size()) parse_fail(origin, line, "dangling backslash in quoted value");
        const char e = text[++i];
        if (e == '"') value += '"';
        else if (e == '\\') value += '\\';
        else if (e == 'n') value += '\n';
        else if (e == 't') value += '\t';
        else parse_fail(origin, line, std::string("unknown escape '\\") + e + "' in quoted value");
        continue;
      }
      if (c == '"') break;
      value += c;
    }
    if (i >= text.size()) parse_fail(origin, line, "unterminated quoted value");
    const std::string rest = trim(text.substr(i + 1));
    if (!rest.empty() && rest.front() != '#' && rest.front() != ';') {
      parse_fail(origin, line, "unexpected text after closing quote: '" + rest + "'");
    }
    return value;
  }

  // Bare value: cut at comment, trim.
  const std::size_t hash = text.find_first_of("#;");
  if (hash != std::string_view::npos) text = text.substr(0, hash);
  return trim(text);
}

}  // namespace

Config Config::parse_text(const std::string& text, const std::string& origin) {
  Config config;
  config.origin_ = origin;

  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string stripped = trim(raw);
    if (stripped.empty() || stripped.front() == '#' || stripped.front() == ';') continue;

    if (stripped.front() == '[') {
      const std::size_t close = stripped.find(']');
      if (close == std::string::npos) parse_fail(origin, line, "unterminated section header");
      const std::string rest = trim(stripped.substr(close + 1));
      if (!rest.empty() && rest.front() != '#' && rest.front() != ';') {
        parse_fail(origin, line, "unexpected text after section header: '" + rest + "'");
      }
      section = trim(stripped.substr(1, close - 1));
      if (!valid_key(section)) {
        parse_fail(origin, line, "invalid section name '" + section + "'");
      }
      continue;
    }

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      parse_fail(origin, line, "expected 'key = value', got '" + stripped + "'");
    }
    const std::string key_part = trim(stripped.substr(0, eq));
    if (!valid_key(key_part)) {
      parse_fail(origin, line, "invalid key '" + key_part + "'");
    }
    const std::string key = section.empty() ? key_part : section + "." + key_part;
    const auto existing = config.entries_.find(key);
    if (existing != config.entries_.end()) {
      parse_fail(origin, line,
                 "duplicate key '" + key + "' (first defined on line " +
                     std::to_string(existing->second.line) + ")");
    }
    config.entries_[key] = {parse_value(origin, line, stripped.substr(eq + 1)), line};
    config.order_.push_back(key);
  }
  return config;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument(path + ": cannot open config file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_text(buffer.str(), path);
}

bool Config::has(const std::string& key) const { return entries_.count(key) != 0; }

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second.value;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const auto v = parse_int(it->second.value);
  if (!v) fail(key, "expects an integer, got '" + it->second.value + "'");
  return *v;
}

std::size_t Config::get_size(const std::string& key, std::size_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const auto v = parse_int(it->second.value);
  if (!v || *v < 0) fail(key, "expects a non-negative integer, got '" + it->second.value + "'");
  return static_cast<std::size_t>(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const auto v = parse_double(it->second.value);
  if (!v) fail(key, "expects a number, got '" + it->second.value + "'");
  return *v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string v = to_lower(it->second.value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  fail(key, "expects a boolean (true/false, yes/no, on/off, 1/0), got '" + it->second.value +
                "'");
}

std::vector<std::string> Config::get_list(const std::string& key) const {
  std::vector<std::string> pieces;
  for (const auto& piece : split(get_string(key), ',')) {
    const std::string trimmed = trim(piece);
    if (!trimmed.empty()) pieces.push_back(trimmed);
  }
  return pieces;
}

std::vector<std::string> Config::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& key : order_) {
    if (starts_with(key, prefix)) out.push_back(key);
  }
  return out;
}

int Config::line_of(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.line;
}

void Config::require_known(const std::set<std::string>& known,
                           const std::vector<std::string>& known_prefixes) const {
  for (const auto& key : order_) {
    if (known.count(key) != 0) continue;
    bool matched = false;
    for (const auto& prefix : known_prefixes) {
      if (starts_with(key, prefix)) {
        matched = true;
        break;
      }
    }
    if (!matched) fail(key, "is not a recognised key");
  }
}

void Config::fail(const std::string& key, const std::string& message) const {
  parse_fail(origin_, line_of(key), "key '" + key + "' " + message);
}

}  // namespace wlgen::util
