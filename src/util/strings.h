#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wlgen::util {

/// Splits text on a delimiter character; adjacent delimiters yield empty
/// pieces (exactly like the classic strsep behaviour).
std::vector<std::string> split(std::string_view text, char delim);

/// Splits on arbitrary whitespace, discarding empty pieces.
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string trim(std::string_view text);

/// Parses a double; returns nullopt for malformed input.
std::optional<double> parse_double(std::string_view text);

/// Parses a non-negative integer; returns nullopt for malformed input.
std::optional<long long> parse_int(std::string_view text);

/// True when `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lowercases ASCII text.
std::string to_lower(std::string_view text);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Lowercases ASCII alphanumerics and collapses every other run of
/// characters into a single underscore ("Figure 5.6" -> "figure_5_6").
/// Leading/trailing separators are trimmed; empty input yields "artifact".
std::string slugify(std::string_view text);

/// Slugifies a file name while preserving a short alphanumeric extension:
/// "Figure 5.6.svg" -> "figure_5_6.svg".
std::string slugify_filename(std::string_view name);

}  // namespace wlgen::util
