#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wlgen::util {

/// Tiny CLI argument parser: positional arguments plus --key flags.
///
/// Accepted flag forms:
///   --key value     (value may be anything that is not itself a known form,
///                    including negatives like "-1" — range checks happen in
///                    the typed getters)
///   --key=value     (always unambiguous; the only way to give a value that
///                    starts with "--")
///   --key           (boolean; stored as "true")
///
/// Flags named in `boolean_flags` never consume the next token, so
/// `wlgen experiments --check fig5_1` keeps "fig5_1" positional instead of
/// silently swallowing it as --check's value — the historical parser bug.
/// A boolean flag given an explicit `--key=value` is rejected.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  /// Parses argv[start..argc).  Throws std::invalid_argument on
  /// `--bool-flag=value`.
  static Args parse(int argc, char** argv, int start,
                    const std::set<std::string>& boolean_flags = {});

  /// Same, over a token vector (the testable entry point).
  static Args parse(const std::vector<std::string>& tokens,
                    const std::set<std::string>& boolean_flags = {});

  /// Raw string value, or `fallback` when the flag is absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Floating-point value; throws std::invalid_argument on a malformed
  /// number.
  double number(const std::string& key, double fallback) const;

  /// Non-negative integral count (--users, --sessions, --shards, ...).
  /// Strict integer parse: throws std::invalid_argument on malformed,
  /// negative, fractional or out-of-long-long-range values — the historical
  /// parser static_cast a double straight to std::size_t, so `--users -1`
  /// (or an overflowing magnitude) was undefined behaviour.
  std::size_t count(const std::string& key, std::size_t fallback) const;

  /// True when the flag was given (with any value).
  bool boolean(const std::string& key) const { return flags.count(key) != 0; }

  /// Throws std::invalid_argument naming the first flag not in `known` —
  /// without this a misspelled flag (`--chek fig5_1`) parses as an unknown
  /// key that silently swallows the next token and is never read.
  void require_known(const std::set<std::string>& known) const;
};

}  // namespace wlgen::util
