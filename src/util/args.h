#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wlgen::util {

/// Tiny CLI argument parser: positional arguments plus --key flags.
///
/// Accepted flag forms:
///   --key value     (value may be anything that is not itself a known form,
///                    including negatives like "-1" — range checks happen in
///                    the typed getters)
///   --key=value     (always unambiguous; the only way to give a value that
///                    starts with "--")
///   --key           (boolean; stored as "true")
///
/// Flags named in `boolean_flags` never consume the next token, so
/// `wlgen experiments --check fig5_1` keeps "fig5_1" positional instead of
/// silently swallowing it as --check's value — the historical parser bug.
/// A boolean flag given an explicit `--key=value` is rejected.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  /// Parses argv[start..argc).  Throws std::invalid_argument on
  /// `--bool-flag=value`.
  static Args parse(int argc, char** argv, int start,
                    const std::set<std::string>& boolean_flags = {});

  /// Same, over a token vector (the testable entry point).
  static Args parse(const std::vector<std::string>& tokens,
                    const std::set<std::string>& boolean_flags = {});

  /// Raw string value, or `fallback` when the flag is absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Floating-point value; throws std::invalid_argument on a malformed
  /// number.
  double number(const std::string& key, double fallback) const;

  /// Non-negative integral count (--users, --sessions, --shards, ...).
  /// Strict integer parse: throws std::invalid_argument on malformed,
  /// negative, fractional or out-of-long-long-range values — the historical
  /// parser static_cast a double straight to std::size_t, so `--users -1`
  /// (or an overflowing magnitude) was undefined behaviour.
  std::size_t count(const std::string& key, std::size_t fallback) const;

  /// True when the flag was given (with any value).
  bool boolean(const std::string& key) const { return flags.count(key) != 0; }

  /// Throws std::invalid_argument naming the first flag not in `known` —
  /// without this a misspelled flag (`--chek fig5_1`) parses as an unknown
  /// key that silently swallows the next token and is never read.
  void require_known(const std::set<std::string>& known) const;
};

/// Declaration of one --flag: the single source of truth from which both
/// the parser contract (known flags, boolean set) and the help text are
/// derived, so usage strings can never drift from what the parser accepts.
struct FlagSpec {
  std::string name;   ///< without the leading "--"
  std::string value;  ///< metavar ("N", "FILE", ...); empty = boolean flag
  std::string help;   ///< one-line description

  bool is_boolean() const { return value.empty(); }
};

/// Declaration of one subcommand: its positional shape, summary and flags.
/// Every command implicitly accepts a boolean --help flag; flag_names() and
/// boolean_flag_names() include it so dispatchers need no special casing.
struct CommandSpec {
  std::string name;         ///< "run", "experiments", ...
  std::string positionals;  ///< "<spec-file>" or "" when flags-only
  std::string summary;      ///< one-line description
  std::vector<FlagSpec> flags;

  /// Every accepted flag name (declared + "help") — feed to
  /// Args::require_known.
  std::set<std::string> flag_names() const;

  /// Names of the flags that never consume a following token (declared
  /// booleans + "help") — feed to Args::parse.
  std::set<std::string> boolean_flag_names() const;

  /// "program name <positionals> [--flag VALUE] [--bool]" wrapped to
  /// `width` columns with aligned continuation lines.
  std::string usage_line(const std::string& program, std::size_t width = 78) const;
};

/// The multi-command "usage:" block (one usage_line per command).
std::string render_usage(const std::string& program,
                         const std::vector<CommandSpec>& commands);

/// Detailed per-command help: summary, usage line, and one aligned
/// "--flag VALUE  help" row per flag (plus the implicit --help).
std::string render_command_help(const std::string& program, const CommandSpec& command);

}  // namespace wlgen::util
