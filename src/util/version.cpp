#include "util/version.h"

// CMake defines these on this translation unit only (so editing a source
// file never recompiles the world just to refresh the SHA).
#ifndef WLGEN_GIT_SHA
#define WLGEN_GIT_SHA "unknown"
#endif
#ifndef WLGEN_GIT_DIRTY
#define WLGEN_GIT_DIRTY 0
#endif

namespace wlgen::util {

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = WLGEN_GIT_SHA;
    b.git_dirty = WLGEN_GIT_DIRTY != 0;
#ifdef NDEBUG
    b.build_type = "Release";
#else
    b.build_type = "Debug";
#endif
#if defined(__clang_version__)
    b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
    b.compiler = std::string("gcc ") + __VERSION__;
#else
    b.compiler = "unknown";
#endif
    return b;
  }();
  return info;
}

std::string version_line() {
  const BuildInfo& b = build_info();
  std::string line = "wlgen ";
  line += b.git_sha;
  if (b.git_dirty) line += "-dirty";
  line += " (" + b.build_type + ", " + b.compiler + ")";
  return line;
}

}  // namespace wlgen::util
