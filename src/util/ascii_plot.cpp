#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wlgen::util {

namespace {

std::string format_number(double v) {
  char buf[32];
  if (std::fabs(v) >= 1e5 || (v != 0.0 && std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string ascii_curve(const std::vector<double>& xs, const std::vector<double>& ys,
                        const PlotOptions& options) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("ascii_curve: xs and ys must be non-empty and equal-sized");
  }
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  double xmin = xs.front(), xmax = xs.front();
  double ymin = ys.front(), ymax = ys.front();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xmin = std::min(xmin, xs[i]);
    xmax = std::max(xmax, xs[i]);
    ymin = std::min(ymin, ys[i]);
    ymax = std::max(ymax, ys[i]);
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const int col = static_cast<int>(std::lround((xs[i] - xmin) / (xmax - xmin) * (w - 1)));
    const int row = static_cast<int>(std::lround((ys[i] - ymin) / (ymax - ymin) * (h - 1)));
    const int r = h - 1 - std::clamp(row, 0, h - 1);
    const int c = std::clamp(col, 0, w - 1);
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = options.mark;
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  if (!options.y_label.empty()) out << "  [" << options.y_label << "]\n";
  out << format_number(ymax) << "\n";
  for (const auto& line : grid) out << "  |" << line << "\n";
  out << format_number(ymin) << " +" << std::string(static_cast<std::size_t>(w), '-') << "\n";
  out << "   " << format_number(xmin);
  const std::string right = format_number(xmax);
  const int pad = w - static_cast<int>(format_number(xmin).size()) - static_cast<int>(right.size());
  out << std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') << right << "\n";
  if (!options.x_label.empty()) out << "   [" << options.x_label << "]\n";
  return out.str();
}

std::string ascii_function(const std::function<double(double)>& f, double lo, double hi,
                           std::size_t samples, const PlotOptions& options) {
  if (samples < 2) samples = 2;
  std::vector<double> xs(samples), ys(samples);
  const double step = (hi - lo) / static_cast<double>(samples - 1);
  for (std::size_t i = 0; i < samples; ++i) {
    xs[i] = lo + step * static_cast<double>(i);
    ys[i] = f(xs[i]);
  }
  return ascii_curve(xs, ys, options);
}

std::string ascii_histogram(const std::vector<double>& edges, const std::vector<double>& counts,
                            const PlotOptions& options) {
  if (edges.size() != counts.size() + 1 || counts.empty()) {
    throw std::invalid_argument("ascii_histogram: edges must have counts.size()+1 entries");
  }
  const int w = std::max(8, options.width);
  double max_count = 0.0;
  for (double c : counts) max_count = std::max(max_count, c);
  if (max_count <= 0.0) max_count = 1.0;

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int bar = static_cast<int>(std::lround(counts[i] / max_count * w));
    char label[64];
    std::snprintf(label, sizeof label, "[%10.4g, %10.4g)", edges[i], edges[i + 1]);
    out << label << " |" << std::string(static_cast<std::size_t>(std::max(0, bar)), '#');
    out << " " << format_number(counts[i]) << "\n";
  }
  return out.str();
}

}  // namespace wlgen::util
