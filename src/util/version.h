#pragma once

#include <string>

namespace wlgen::util {

/// Build provenance compiled into the binary: `wlgen version` prints it, and
/// obs metrics reports / trace files embed it so artifacts are attributable
/// to a commit.  The git fields come from configure-time -D defines on
/// version.cpp (see CMakeLists.txt); a tarball build reports "unknown".
struct BuildInfo {
  std::string git_sha;      ///< short commit hash, or "unknown"
  bool git_dirty = false;   ///< uncommitted changes at configure time
  std::string build_type;   ///< "Release" / "Debug" (keyed off NDEBUG)
  std::string compiler;     ///< compiler identification string
};

const BuildInfo& build_info();

/// One-line summary: "wlgen <sha>[-dirty] (<build_type>, <compiler>)".
std::string version_line();

}  // namespace wlgen::util
