#pragma once

#include <array>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace wlgen::util {

/// Deterministic seeded random stream.
///
/// Every simulated entity (user, server, model) owns a private stream derived
/// from a root seed plus a stream identifier, so adding a user or reordering
/// events never perturbs another entity's draws.  Identical (seed, id) pairs
/// always reproduce identical sequences, which the test suite relies on.
///
/// uniform01() — the draw behind every distribution's inverse transform —
/// is served from a block of kBlock uniforms filled in one tight loop over
/// the mt19937_64, amortising the per-call dispatch of the engine in the
/// sampling hot loops (see DESIGN.md "Batched RNG").  The sequence is a pure
/// function of (seed, id) and the call history, exactly as before; methods
/// that draw from engine() directly interleave with the block refills at
/// deterministic points.
class RngStream {
 public:
  /// Uniforms buffered per engine dispatch (1 KiB per stream).
  static constexpr std::size_t kBlock = 128;

  /// Creates a stream from a root seed and a numeric stream id.
  RngStream(std::uint64_t root_seed, std::uint64_t stream_id);

  /// Creates a stream whose id is hashed from a label such as "user/3".
  RngStream(std::uint64_t root_seed, std::string_view label);

  /// Uniform double in [0, 1); 53-bit resolution, served from the block.
  double uniform01() {
    if (block_pos_ == block_.size()) refill_block();
    return block_[block_pos_++];
  }

  /// Fills out[0..n) with the next n uniform01() draws.  Bit-identical to n
  /// sequential uniform01() calls — the block refills at the same points —
  /// but served by bulk copies out of the block, so batch samplers
  /// (Distribution::sample_n) pay the refill check once per copied span
  /// instead of once per draw.
  void fill_uniform01(double* out, std::size_t n);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Gamma variate with shape alpha and scale theta.
  double gamma(double alpha, double theta);

  /// Standard normal variate.
  double normal(double mean, double stddev);

  /// Bernoulli trial that succeeds with probability p.
  bool bernoulli(double p);

  /// Selects an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalised; all must be >= 0 and not all zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// uniform01()-path draws consumed so far (uniform01 + fill_uniform01;
  /// direct engine() draws are not counted).  Costs one counter increment
  /// per kBlock-draw refill — nothing on the draw path itself — which is
  /// what lets the obs metrics report RNG volume for free.
  std::uint64_t uniform_draws() const {
    return refills_ == 0 ? 0 : (refills_ - 1) * kBlock + block_pos_;
  }

  /// Derives a child stream; children of distinct labels are independent.
  /// The child starts with an empty block; the parent's buffer is untouched.
  RngStream fork(std::string_view label) const;

  /// Underlying engine, for std distributions that need one.  Direct engine
  /// draws bypass the uniform block (they do not consume buffered values),
  /// which keeps mixed call sequences deterministic.
  std::mt19937_64& engine() { return engine_; }

 private:
  void refill_block();

  std::uint64_t root_seed_;
  std::uint64_t stream_id_;
  std::mt19937_64 engine_;
  std::array<double, kBlock> block_;
  std::size_t block_pos_ = kBlock;  ///< == size: refill before next draw
  std::uint64_t refills_ = 0;       ///< blocks filled; see uniform_draws()
};

/// SplitMix64 step; used for seed derivation.  Exposed for tests.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a label.  Exposed for tests.
std::uint64_t hash_label(std::string_view label);

}  // namespace wlgen::util
