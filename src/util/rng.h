#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace wlgen::util {

/// Deterministic seeded random stream.
///
/// Every simulated entity (user, server, model) owns a private stream derived
/// from a root seed plus a stream identifier, so adding a user or reordering
/// events never perturbs another entity's draws.  Identical (seed, id) pairs
/// always reproduce identical sequences, which the test suite relies on.
class RngStream {
 public:
  /// Creates a stream from a root seed and a numeric stream id.
  RngStream(std::uint64_t root_seed, std::uint64_t stream_id);

  /// Creates a stream whose id is hashed from a label such as "user/3".
  RngStream(std::uint64_t root_seed, std::string_view label);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Gamma variate with shape alpha and scale theta.
  double gamma(double alpha, double theta);

  /// Standard normal variate.
  double normal(double mean, double stddev);

  /// Bernoulli trial that succeeds with probability p.
  bool bernoulli(double p);

  /// Selects an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalised; all must be >= 0 and not all zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derives a child stream; children of distinct labels are independent.
  RngStream fork(std::string_view label) const;

  /// Underlying engine, for std distributions that need one.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t root_seed_;
  std::uint64_t stream_id_;
  std::mt19937_64 engine_;
};

/// SplitMix64 step; used for seed derivation.  Exposed for tests.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a label.  Exposed for tests.
std::uint64_t hash_label(std::string_view label);

}  // namespace wlgen::util
