#include "util/numeric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wlgen::util {

double simpson(const std::function<double(double)>& f, double a, double b, std::size_t n) {
  if (b < a) throw std::invalid_argument("simpson: b < a");
  if (a == b) return 0.0;
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  const double h = (b - a) / static_cast<double>(n);
  double sum = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    const double x = a + h * static_cast<double>(i);
    sum += f(x) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

double simpson_tabulated(const std::vector<double>& values, double dx) {
  if (values.size() < 2) return 0.0;
  if (dx <= 0.0) throw std::invalid_argument("simpson_tabulated: dx must be > 0");
  const std::size_t n = values.size();
  // Composite Simpson needs an odd number of points; if even, integrate the
  // last interval with the trapezoid rule.
  std::size_t simpson_points = (n % 2 == 1) ? n : n - 1;
  double sum = 0.0;
  if (simpson_points >= 3) {
    sum += values.front() + values[simpson_points - 1];
    for (std::size_t i = 1; i + 1 < simpson_points; ++i) {
      sum += values[i] * (i % 2 == 0 ? 2.0 : 4.0);
    }
    sum *= dx / 3.0;
  } else {
    simpson_points = 1;
  }
  if (simpson_points < n) {
    sum += 0.5 * dx * (values[n - 2] + values[n - 1]);
  }
  return sum;
}

double log_gamma(double x) {
  if (x <= 0.0) throw std::invalid_argument("log_gamma: x must be > 0");
  return std::lgamma(x);
}

namespace {

// Series expansion of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  const int max_iter = 500;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < max_iter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction evaluation of Q(a, x); good for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const int max_iter = 500;
  const double fpmin = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / fpmin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= max_iter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < fpmin) d = fpmin;
    c = b + an / c;
    if (std::fabs(c) < fpmin) c = fpmin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("regularized_gamma_p: a must be > 0");
  if (x < 0.0) throw std::invalid_argument("regularized_gamma_p: x must be >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys, double x) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("interp_linear: need matching tables of size >= 2");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  if (span <= 0.0) return ys[lo];
  const double t = (x - xs[lo]) / span;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

double interp_inverse(const std::vector<double>& xs, const std::vector<double>& ys, double y) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("interp_inverse: need matching tables of size >= 2");
  }
  if (y <= ys.front()) return xs.front();
  if (y >= ys.back()) return xs.back();
  // ys is non-decreasing; find the first index with ys[i] >= y.
  const auto it = std::lower_bound(ys.begin(), ys.end(), y);
  std::size_t hi = static_cast<std::size_t>(it - ys.begin());
  if (hi == 0) return xs.front();
  const std::size_t lo = hi - 1;
  const double span = ys[hi] - ys[lo];
  if (span <= 0.0) return xs[hi];
  const double t = (y - ys[lo]) / span;
  return xs[lo] + t * (xs[hi] - xs[lo]);
}

std::vector<double> linspace(double a, double b, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> out(n);
  const double step = (b - a) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = a + step * static_cast<double>(i);
  out.back() = b;
  return out;
}

bool approx_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace wlgen::util
