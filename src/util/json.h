#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wlgen::util {

/// Minimal JSON document model for the experiment-harness artifacts: null,
/// bool, number (double), string, array, object.  Objects preserve insertion
/// order so serialized artifacts are byte-stable across runs — the
/// determinism tests diff the emitted text directly.
class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::boolean), bool_(b) {}
  JsonValue(double n) : kind_(Kind::number), number_(n) {}
  JsonValue(int n) : kind_(Kind::number), number_(n) {}
  JsonValue(std::size_t n) : kind_(Kind::number), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : kind_(Kind::string), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::string), string_(std::move(s)) {}

  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Array append (value must be an array).
  void push_back(JsonValue v);

  /// Object insert/overwrite, preserving first-insertion order.
  void set(const std::string& key, JsonValue v);

  /// Object lookup; returns nullptr when absent (value must be an object).
  const JsonValue* find(const std::string& key) const;

  /// Object lookup; throws std::runtime_error when the key is absent.
  const JsonValue& at(const std::string& key) const;

  /// Serializes with 2-space indentation and a trailing newline at depth 0.
  /// JSON has no NaN/Inf literal, so non-finite numbers serialize as null;
  /// readers that can tolerate them map null back to NaN (see
  /// ExperimentResult::from_json).
  std::string dump() const;

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a JSON document; throws std::runtime_error with an offset on
/// malformed input.  Accepts exactly the subset dump() produces (standard
/// JSON without exponent-free restrictions; numbers parse as double).
JsonValue parse_json(std::string_view text);

}  // namespace wlgen::util
