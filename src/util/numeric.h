#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace wlgen::util {

/// Composite Simpson integration of f over [a, b] with n subintervals
/// (n is rounded up to the next even number; n >= 2).
///
/// This is the paper's "Sympson's method" used by the GDS to turn PDF tables
/// into CDF tables (paper section 4.1.1).
double simpson(const std::function<double(double)>& f, double a, double b, std::size_t n);

/// Integrates a tabulated function given at equally spaced points using the
/// composite Simpson rule (odd point counts) with a trapezoid correction for
/// the final interval when the point count is even.
double simpson_tabulated(const std::vector<double>& values, double dx);

/// Regularised lower incomplete gamma function P(a, x) = gamma(a, x) / Gamma(a).
/// Uses the series expansion for x < a + 1 and the continued fraction
/// otherwise; accurate to ~1e-12 for a in (0, 1e6).
double regularized_gamma_p(double a, double x);

/// log Gamma(x) for x > 0 (Lanczos approximation).
double log_gamma(double x);

/// Linear interpolation of y(x) on the tabulated grid xs -> ys.
/// xs must be strictly increasing; values outside the grid are clamped.
double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys, double x);

/// Inverse interpolation: given a non-decreasing table ys over grid xs,
/// returns the x with y(x) ~= y (clamped to the table range).
double interp_inverse(const std::vector<double>& xs, const std::vector<double>& ys, double y);

/// Returns n equally spaced points covering [a, b] inclusive (n >= 2).
std::vector<double> linspace(double a, double b, std::size_t n);

/// True when |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace wlgen::util
