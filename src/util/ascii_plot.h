#pragma once

#include <functional>
#include <string>
#include <vector>

namespace wlgen::util {

/// Options controlling ASCII rendering of curves and histograms.
///
/// The paper's GDS displays densities in an X11 window; in this library the
/// same role is played by terminal plots (and SVG files, see svg.h), which is
/// the degradation path the paper itself describes for hosts without X11.
struct PlotOptions {
  int width = 72;        ///< plot area width in characters
  int height = 16;       ///< plot area height in characters
  std::string title;     ///< printed above the plot when non-empty
  std::string x_label;   ///< printed below the x axis when non-empty
  std::string y_label;   ///< printed beside the y axis when non-empty
  char mark = '*';       ///< glyph used for curve points
};

/// Renders y(x) sampled on a grid as a multi-line ASCII plot.
std::string ascii_curve(const std::vector<double>& xs, const std::vector<double>& ys,
                        const PlotOptions& options = {});

/// Renders a function by sampling it at `samples` points over [lo, hi].
std::string ascii_function(const std::function<double(double)>& f, double lo, double hi,
                           std::size_t samples, const PlotOptions& options = {});

/// Renders bin counts as a horizontal bar histogram, one bin per line.
/// `edges` has bins+1 entries.
std::string ascii_histogram(const std::vector<double>& edges, const std::vector<double>& counts,
                            const PlotOptions& options = {});

}  // namespace wlgen::util
