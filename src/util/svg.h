#pragma once

#include <string>
#include <vector>

namespace wlgen::util {

/// A single polyline series for SVG export.
struct SvgSeries {
  std::vector<double> xs;
  std::vector<double> ys;
  std::string label;
  std::string color = "#1f77b4";
};

/// Options for svg_plot.
struct SvgOptions {
  int width = 640;
  int height = 400;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series as a self-contained SVG document string.
/// Used by examples and benches to export paper-figure lookalikes; the role
/// played by the X11 display in the original GDS.
std::string svg_plot(const std::vector<SvgSeries>& series, const SvgOptions& options = {});

/// Writes text to a file, creating parent directories when needed.
/// Throws std::runtime_error when the file cannot be written.
void write_text_file(const std::string& path, const std::string& content);

/// Reads a whole text file; throws std::runtime_error when unreadable.
std::string read_text_file(const std::string& path);

}  // namespace wlgen::util
