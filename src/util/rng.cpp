#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace wlgen::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t id) {
  std::uint64_t state = root ^ (id * 0x9e3779b97f4a7c15ULL);
  std::uint64_t a = splitmix64(state);
  std::uint64_t b = splitmix64(state);
  return a ^ (b << 1);
}

}  // namespace

RngStream::RngStream(std::uint64_t root_seed, std::uint64_t stream_id)
    : root_seed_(root_seed),
      stream_id_(stream_id),
      engine_(derive_seed(root_seed, stream_id)) {}

RngStream::RngStream(std::uint64_t root_seed, std::string_view label)
    : RngStream(root_seed, hash_label(label)) {}

void RngStream::fill_uniform01(double* out, std::size_t n) {
  while (n > 0) {
    if (block_pos_ == block_.size()) refill_block();
    const std::size_t take = std::min(n, block_.size() - block_pos_);
    std::copy_n(block_.begin() + block_pos_, take, out);
    block_pos_ += take;
    out += take;
    n -= take;
  }
}

void RngStream::refill_block() {
  // One tight pass over the engine: 53-bit mantissa scaling, the standard
  // (x >> 11) * 2^-53 mapping, gives uniforms in [0, 1 - 2^-53].
  for (double& u : block_) {
    u = static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }
  block_pos_ = 0;
  ++refills_;
}

double RngStream::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("RngStream::uniform: hi < lo");
  double v = lo + (hi - lo) * uniform01();
  // Scaling can round up to hi when hi - lo is large; keep the half-open
  // contract.
  if (v >= hi && hi > lo) v = std::nextafter(hi, lo);
  return v;
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("RngStream::uniform_int: hi < lo");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RngStream::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("RngStream::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double RngStream::gamma(double alpha, double theta) {
  if (alpha <= 0.0 || theta <= 0.0) {
    throw std::invalid_argument("RngStream::gamma: alpha and theta must be > 0");
  }
  return std::gamma_distribution<double>(alpha, theta)(engine_);
}

double RngStream::normal(double mean, double stddev) {
  if (stddev < 0.0) throw std::invalid_argument("RngStream::normal: stddev must be >= 0");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool RngStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t RngStream::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("RngStream::categorical: negative weight");
    total += w;
  }
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("RngStream::categorical: weights must contain positive mass");
  }
  double u = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

RngStream RngStream::fork(std::string_view label) const {
  return RngStream(root_seed_, stream_id_ ^ (hash_label(label) * 0x2545f4914f6cdd1dULL));
}

}  // namespace wlgen::util
