#pragma once

#include <string>
#include <vector>

namespace wlgen::util {

/// Fixed-column text table used by the bench binaries to print paper-style
/// tables (e.g. Table 5.3 "mean(std) of access size and response time").
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Formats the paper's "mean(std)" cell style.
  static std::string mean_std(double mean, double std, int precision = 2);

  /// Renders the table with a header separator line.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wlgen::util
