#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace wlgen::util {

/// Minimal INI/TOML-subset configuration parser — the file format behind the
/// scenario subsystem (`*.scn`, see docs/SCENARIOS.md) and reusable by any
/// future declarative surface.
///
/// Grammar (line oriented):
///
///   # full-line comment        ; also a comment
///   [section]                  # keys below are stored as "section.key"
///   key = value                # bare value: trimmed, cut at # or ; comment
///   key = "quoted value"       # may contain #, ;, leading/trailing spaces;
///                              # escapes: \" \\ \n \t
///   other.key = 3              # dotted keys allowed (model overrides)
///
/// Values are kept as raw strings and parsed by the typed getters, so a type
/// error can name the file, the line, and the offending text.  Duplicate
/// keys, unterminated quotes, text after a closing quote, and lines without
/// '=' are all parse errors.  Every error is a std::invalid_argument whose
/// message starts with "origin:line:".
class Config {
 public:
  /// Parses configuration text.  `origin` names the source in error
  /// messages (a file path, or "<string>" for inline text).
  static Config parse_text(const std::string& text, const std::string& origin = "<string>");

  /// Reads and parses a file; a missing/unreadable file is a
  /// std::invalid_argument naming the path.
  static Config parse_file(const std::string& path);

  /// True when `key` ("section.key" for sectioned entries) is present.
  bool has(const std::string& key) const;

  /// Raw string value, or `fallback` when absent.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;

  /// Integer value; throws std::invalid_argument (with line number) on a
  /// malformed or fractional value.
  long long get_int(const std::string& key, long long fallback) const;

  /// Non-negative integer (sizes, counts); rejects negatives.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// Floating-point value.
  double get_double(const std::string& key, double fallback) const;

  /// Boolean: true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list; pieces are trimmed, empties dropped.
  std::vector<std::string> get_list(const std::string& key) const;

  /// All keys in file order.
  const std::vector<std::string>& keys() const { return order_; }

  /// Keys starting with `prefix`, in file order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// 1-based line a key was defined on (0 when absent).
  int line_of(const std::string& key) const;

  /// Throws std::invalid_argument naming the first key (with its line) that
  /// is neither in `known` nor under one of `known_prefixes` — the
  /// misspelled-key guard every Config consumer should call.
  void require_known(const std::set<std::string>& known,
                     const std::vector<std::string>& known_prefixes = {}) const;

  const std::string& origin() const { return origin_; }

 private:
  struct Entry {
    std::string value;
    int line = 0;
  };

  [[noreturn]] void fail(const std::string& key, const std::string& message) const;

  std::string origin_;
  std::vector<std::string> order_;
  std::map<std::string, Entry> entries_;
};

}  // namespace wlgen::util
