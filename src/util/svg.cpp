#include "util/svg.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wlgen::util {

std::string svg_plot(const std::vector<SvgSeries>& series, const SvgOptions& options) {
  const double margin = 56.0;
  const double w = static_cast<double>(std::max(160, options.width));
  const double h = static_cast<double>(std::max(120, options.height));
  double xmin = 0.0, xmax = 1.0, ymin = 0.0, ymax = 1.0;
  bool first = true;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.xs.size(), s.ys.size()); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      if (first) {
        xmin = xmax = s.xs[i];
        ymin = ymax = s.ys[i];
        first = false;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i]);
        ymax = std::max(ymax, s.ys[i]);
      }
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const auto sx = [&](double x) { return margin + (x - xmin) / (xmax - xmin) * (w - 2 * margin); };
  const auto sy = [&](double y) { return h - margin - (y - ymin) / (ymax - ymin) * (h - 2 * margin); };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << " " << h << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  // axes
  out << "<line x1=\"" << margin << "\" y1=\"" << h - margin << "\" x2=\"" << w - margin
      << "\" y2=\"" << h - margin << "\" stroke=\"black\"/>\n";
  out << "<line x1=\"" << margin << "\" y1=\"" << margin << "\" x2=\"" << margin << "\" y2=\""
      << h - margin << "\" stroke=\"black\"/>\n";
  if (!options.title.empty()) {
    out << "<text x=\"" << w / 2 << "\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">"
        << options.title << "</text>\n";
  }
  if (!options.x_label.empty()) {
    out << "<text x=\"" << w / 2 << "\" y=\"" << h - 12
        << "\" text-anchor=\"middle\" font-size=\"12\">" << options.x_label << "</text>\n";
  }
  if (!options.y_label.empty()) {
    out << "<text x=\"14\" y=\"" << h / 2 << "\" text-anchor=\"middle\" font-size=\"12\" "
        << "transform=\"rotate(-90 14 " << h / 2 << ")\">" << options.y_label << "</text>\n";
  }
  // tick labels (min/max only; enough for eyeballing figure shapes)
  out << "<text x=\"" << margin << "\" y=\"" << h - margin + 16
      << "\" font-size=\"10\" text-anchor=\"middle\">" << xmin << "</text>\n";
  out << "<text x=\"" << w - margin << "\" y=\"" << h - margin + 16
      << "\" font-size=\"10\" text-anchor=\"middle\">" << xmax << "</text>\n";
  out << "<text x=\"" << margin - 6 << "\" y=\"" << h - margin
      << "\" font-size=\"10\" text-anchor=\"end\">" << ymin << "</text>\n";
  out << "<text x=\"" << margin - 6 << "\" y=\"" << margin
      << "\" font-size=\"10\" text-anchor=\"end\">" << ymax << "</text>\n";

  int legend_row = 0;
  for (const auto& s : series) {
    out << "<polyline fill=\"none\" stroke=\"" << s.color << "\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < std::min(s.xs.size(), s.ys.size()); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      out << sx(s.xs[i]) << "," << sy(s.ys[i]) << " ";
    }
    out << "\"/>\n";
    if (!s.label.empty()) {
      const double ly = margin + 14.0 * legend_row++;
      out << "<line x1=\"" << w - margin - 90 << "\" y1=\"" << ly << "\" x2=\"" << w - margin - 70
          << "\" y2=\"" << ly << "\" stroke=\"" << s.color << "\" stroke-width=\"2\"/>\n";
      out << "<text x=\"" << w - margin - 64 << "\" y=\"" << ly + 4 << "\" font-size=\"11\">"
          << s.label << "</text>\n";
    }
  }
  out << "</svg>\n";
  return out.str();
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_text_file: cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_text_file: cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("write_text_file: write failed for " + path);
}

}  // namespace wlgen::util
