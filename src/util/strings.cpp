#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace wlgen::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::optional<double> parse_double(std::string_view text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(std::string_view text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) return std::nullopt;
  return v;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string slugify(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_sep = false;
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(c));
    } else {
      pending_sep = true;
    }
  }
  return out.empty() ? "artifact" : out;
}

std::string slugify_filename(std::string_view name) {
  const std::size_t dot = name.rfind('.');
  if (dot != std::string_view::npos && dot + 1 < name.size()) {
    const std::string_view ext = name.substr(dot + 1);
    const bool alnum_ext = ext.size() <= 5 &&
                           std::all_of(ext.begin(), ext.end(), [](unsigned char c) {
                             return std::isalnum(c) != 0;
                           });
    if (alnum_ext) return slugify(name.substr(0, dot)) + "." + to_lower(ext);
  }
  return slugify(name);
}

}  // namespace wlgen::util
