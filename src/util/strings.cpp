#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace wlgen::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::optional<double> parse_double(std::string_view text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(std::string_view text) {
  const std::string t = trim(text);
  if (t.empty()) return std::nullopt;
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) return std::nullopt;
  return v;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace wlgen::util
