#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wlgen::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count does not match header count");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::mean_std(double mean, double std, int precision) {
  return num(mean, precision) + "(" + num(std, precision) + ")";
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "  " << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace wlgen::util
