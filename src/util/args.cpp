#include "util/args.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace wlgen::util {

Args Args::parse(int argc, char** argv, int start, const std::set<std::string>& boolean_flags) {
  std::vector<std::string> tokens;
  for (int i = start; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens, boolean_flags);
}

Args Args::parse(const std::vector<std::string>& tokens,
                 const std::set<std::string>& boolean_flags) {
  Args out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& arg = tokens[i];
    if (!starts_with(arg, "--")) {
      out.positional.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string key = body.substr(0, eq);
      if (boolean_flags.count(key) != 0) {
        throw std::invalid_argument("flag --" + key + " is boolean and takes no value");
      }
      out.flags[key] = body.substr(eq + 1);
      continue;
    }
    if (boolean_flags.count(body) != 0) {
      out.flags[body] = "true";
      continue;
    }
    if (i + 1 < tokens.size() && !starts_with(tokens[i + 1], "--")) {
      out.flags[body] = tokens[++i];
    } else {
      out.flags[body] = "true";  // trailing / value-less flag
    }
  }
  return out;
}

void Args::require_known(const std::set<std::string>& known) const {
  for (const auto& [key, value] : flags) {
    if (known.count(key) == 0) {
      throw std::invalid_argument("unknown flag --" + key);
    }
  }
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

double Args::number(const std::string& key, double fallback) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const auto v = parse_double(it->second);
  if (!v) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" + it->second +
                                "'");
  }
  return *v;
}

std::size_t Args::count(const std::string& key, std::size_t fallback) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  // Strict integer parse (no doubles): "-1", "1.5", "1e20" and values past
  // the long long range are all rejected with one clear error, instead of
  // the old float-to-size_t cast whose out-of-range behaviour was undefined.
  const auto v = parse_int(it->second);
  if (!v || *v < 0) {
    throw std::invalid_argument("flag --" + key + " expects a non-negative integer, got '" +
                                it->second + "'");
  }
  return static_cast<std::size_t>(*v);
}

namespace {

const FlagSpec kHelpFlag{"help", "", "print this help text"};

std::string flag_token(const FlagSpec& flag) {
  return flag.is_boolean() ? "[--" + flag.name + "]"
                           : "[--" + flag.name + " " + flag.value + "]";
}

}  // namespace

std::set<std::string> CommandSpec::flag_names() const {
  std::set<std::string> names{kHelpFlag.name};
  for (const auto& flag : flags) names.insert(flag.name);
  return names;
}

std::set<std::string> CommandSpec::boolean_flag_names() const {
  std::set<std::string> names{kHelpFlag.name};
  for (const auto& flag : flags) {
    if (flag.is_boolean()) names.insert(flag.name);
  }
  return names;
}

std::string CommandSpec::usage_line(const std::string& program, std::size_t width) const {
  const std::string head = program + " " + name;
  std::string line = head;
  if (!positionals.empty()) line += " " + positionals;
  const std::string indent(head.size() + 1, ' ');

  std::string out;
  for (const auto& flag : flags) {
    const std::string token = flag_token(flag);
    if (line.size() + 1 + token.size() > width) {
      out += line + "\n";
      line = indent + token;
    } else {
      line += " " + token;
    }
  }
  out += line;
  return out;
}

std::string render_usage(const std::string& program,
                         const std::vector<CommandSpec>& commands) {
  std::string out = "usage:\n";
  for (const auto& command : commands) {
    // Two-space margin on every line of the wrapped usage.
    for (const auto& line : split(command.usage_line(program, 76), '\n')) {
      out += "  " + line + "\n";
    }
  }
  out += "run '" + program + " <command> --help' for per-flag detail\n";
  return out;
}

std::string render_command_help(const std::string& program, const CommandSpec& command) {
  std::string out = program + " " + command.name + " — " + command.summary + "\n\n";
  for (const auto& line : split(command.usage_line(program, 76), '\n')) {
    out += "  " + line + "\n";
  }

  std::vector<FlagSpec> all = command.flags;
  all.push_back(kHelpFlag);
  std::size_t label_width = 0;
  std::vector<std::string> labels;
  for (const auto& flag : all) {
    std::string label = "--" + flag.name;
    if (!flag.is_boolean()) label += " " + flag.value;
    label_width = std::max(label_width, label.size());
    labels.push_back(std::move(label));
  }
  if (!all.empty()) out += "\nflags:\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += "  " + labels[i] + std::string(label_width - labels[i].size() + 2, ' ') +
           all[i].help + "\n";
  }
  return out;
}

}  // namespace wlgen::util
