#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/pool.h"

namespace wlgen::obs {

/// Observability switches carried by runner configs and scenario specs.
/// Everything defaults off; the runners only take instrumented paths when
/// the corresponding switch is on, so a default config is exactly the
/// pre-obs hot path.
struct ObsConfig {
  std::string metrics_file;  ///< write a metrics JSON report here ("" = off)
  std::string trace_file;    ///< write a Chrome trace JSON here ("" = off)

  /// Total trace-ring budget (events) for the whole run, divided across
  /// shards/jobs and event kinds; the ring keeps the trailing window.
  std::size_t trace_events = 65536;

  bool progress = false;          ///< heartbeat lines on stderr
  int progress_interval_ms = 1000;

  /// Collect pool busy/idle accounting (RunnerResult::pool) without paying
  /// for metrics or tracing — what the benches use for utilization columns.
  bool pool = false;

  std::string label;  ///< run label for reports/heartbeats ("" = derived)

  bool metrics() const { return !metrics_file.empty(); }
  bool trace() const { return !trace_file.empty(); }

  /// True when per-op/per-shard samples must be collected at all.
  bool collect() const { return metrics() || trace(); }

  /// True when anything observability-related is on.
  bool any() const { return collect() || progress || pool; }
};

/// Per-entity (user or replication) observability sample.  Lives in the
/// same per-entity result slot as RunnerStats and folds in the same fixed
/// entity order, which is what makes the merged metrics — including the
/// floating-point service-time sums — bit-identical for every shard and
/// thread count.
struct SimSample {
  OpTally ops;
  std::uint64_t sim_events = 0;
  std::uint64_t heap_high_water = 0;  ///< max concurrently-pending events
  std::uint64_t rng_draws = 0;        ///< uniform01-path draws
  std::uint64_t sessions = 0;

  void merge(const SimSample& other);

  /// Emits "sim.events", "sim.heap_high_water", "sim.sessions",
  /// "rng.uniform_draws" and the per-op "ops.*" family (all stable).
  void export_into(Registry& registry) const;
};

/// The three trace tracks a run produces; each serializes as one Chrome
/// "process" (see trace.h).
struct RunTrace {
  TraceRing ops;     ///< file ops on virtual-time user tracks (+ sessions)
  TraceRing stages;  ///< model stages on virtual-time resource tracks
  TraceRing pool;    ///< pool jobs on wall-time worker tracks

  bool enabled() const { return ops.capacity() + stages.capacity() + pool.capacity() > 0; }
};

/// Per-part slice of a total ring budget: total/parts, at least 1 when the
/// total is non-zero.  Fixed integer division — independent of scheduling.
std::size_t ring_share(std::size_t total, std::size_t parts);

/// Records one completed file op as a duration event on the owning user's
/// virtual-time track.
void record_op(TraceRing& ring, const core::OpRecord& record);

/// Folds pool accounting into the registry as *unstable* (wall-clock)
/// metrics: pool.workers, pool.jobs, pool.busy_ns, pool.idle_ns.
void export_pool(const runner::PoolObs& pool, Registry& registry);

/// Converts recorded job spans into wall-time trace events ("job <i>" on
/// "worker <w>" tracks).
void pool_spans_into(const runner::PoolObs& pool, TraceRing& ring);

/// Starts a metrics report document: schema tag, label, build provenance
/// (util::build_info()), wall_ms, and an empty "groups" array.
util::JsonValue metrics_document(const std::string& label, double wall_ms);

/// Appends one {"label", "metrics", "timing"} group to the document.
void add_metrics_group(util::JsonValue& doc, const std::string& label,
                       const Registry& registry);

/// Standard trace groups of one labelled run (skipping empty rings).
std::vector<TraceGroup> run_trace_groups(const std::string& label, const RunTrace& trace);

}  // namespace wlgen::obs
