#include "obs/obs.h"

#include "fsmodel/model.h"
#include "util/version.h"

namespace wlgen::obs {

void SimSample::merge(const SimSample& other) {
  ops.merge(other.ops);
  sim_events += other.sim_events;
  if (other.heap_high_water > heap_high_water) heap_high_water = other.heap_high_water;
  rng_draws += other.rng_draws;
  sessions += other.sessions;
}

void SimSample::export_into(Registry& registry) const {
  registry.add_counter("sim.events", sim_events);
  registry.add_gauge_max("sim.heap_high_water", heap_high_water);
  registry.add_counter("sim.sessions", sessions);
  registry.add_counter("rng.uniform_draws", rng_draws);
  ops.export_into(registry);
}

std::size_t ring_share(std::size_t total, std::size_t parts) {
  if (total == 0) return 0;
  if (parts == 0) parts = 1;
  const std::size_t share = total / parts;
  return share == 0 ? 1 : share;
}

void record_op(TraceRing& ring, const core::OpRecord& record) {
  TraceEvent event;
  event.ts_us = record.issue_time_us;
  event.dur_us = record.response_us;
  event.name_id = ring.intern(fsmodel::to_string(record.op));
  event.track = record.user;
  event.user = record.user;
  event.session = record.session;
  ring.push(event);
}

void export_pool(const runner::PoolObs& pool, Registry& registry) {
  registry.add_counter("pool.workers", pool.workers.size(), /*stable=*/false);
  registry.add_counter("pool.jobs", pool.jobs(), /*stable=*/false);
  registry.add_counter("pool.busy_ns", pool.busy_ns(), /*stable=*/false);
  registry.add_counter("pool.idle_ns", pool.idle_ns(), /*stable=*/false);
}

void pool_spans_into(const runner::PoolObs& pool, TraceRing& ring) {
  for (const runner::PoolJobSpan& span : pool.spans) {
    TraceEvent event;
    event.ts_us = span.start_us;
    event.dur_us = span.dur_us;
    event.name_id = ring.intern("job " + std::to_string(span.job));
    event.track = span.worker;
    ring.push(event);
  }
}

util::JsonValue metrics_document(const std::string& label, double wall_ms) {
  const util::BuildInfo& info = util::build_info();
  util::JsonValue build = util::JsonValue::make_object();
  build.set("git_sha", util::JsonValue(info.git_sha));
  build.set("git_dirty", util::JsonValue(info.git_dirty));
  build.set("build_type", util::JsonValue(info.build_type));
  build.set("compiler", util::JsonValue(info.compiler));

  util::JsonValue doc = util::JsonValue::make_object();
  doc.set("schema", util::JsonValue("wlgen-metrics-v1"));
  doc.set("label", util::JsonValue(label));
  doc.set("build", std::move(build));
  doc.set("wall_ms", util::JsonValue(wall_ms));
  doc.set("groups", util::JsonValue::make_array());
  return doc;
}

void add_metrics_group(util::JsonValue& doc, const std::string& label,
                       const Registry& registry) {
  util::JsonValue sections = registry.to_json();
  util::JsonValue group = util::JsonValue::make_object();
  group.set("label", util::JsonValue(label));
  group.set("metrics", sections.at("metrics"));
  group.set("timing", sections.at("timing"));
  // Objects preserve insertion order, so "groups" was created by
  // metrics_document; re-set to push onto the array.
  util::JsonValue groups = doc.at("groups");
  groups.push_back(std::move(group));
  doc.set("groups", std::move(groups));
}

std::vector<TraceGroup> run_trace_groups(const std::string& label, const RunTrace& trace) {
  std::vector<TraceGroup> groups;
  if (trace.ops.size() > 0) {
    TraceGroup group;
    group.label = label + " · sessions & ops";
    group.ring = &trace.ops;
    group.virtual_time = true;
    group.by_session = true;
    groups.push_back(std::move(group));
  }
  if (trace.stages.size() > 0) {
    TraceGroup group;
    group.label = label + " · model stages";
    group.ring = &trace.stages;
    group.virtual_time = true;
    groups.push_back(std::move(group));
  }
  if (trace.pool.size() > 0) {
    TraceGroup group;
    group.label = label + " · pool workers";
    group.ring = &trace.pool;
    group.virtual_time = false;
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace wlgen::obs
