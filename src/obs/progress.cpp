#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>

namespace wlgen::obs {

namespace {

// "1.25M" / "532k" / "87" — compact counts for a one-line heartbeat.
std::string compact(double value) {
  char buffer[32];
  if (value >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2fG", value / 1e9);
  } else if (value >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fM", value / 1e6);
  } else if (value >= 1e4) {
    std::snprintf(buffer, sizeof(buffer), "%.0fk", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  }
  return buffer;
}

}  // namespace

ProgressReporter::ProgressReporter(Options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { loop(); });
  }
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::advance(std::size_t units, std::uint64_t events, double sim_us) {
  if (units != 0) units_.fetch_add(units, std::memory_order_relaxed);
  if (events != 0) events_.fetch_add(events, std::memory_order_relaxed);
  if (sim_us > 0.0) {
    sim_us_.fetch_add(static_cast<std::uint64_t>(sim_us), std::memory_order_relaxed);
  }
}

void ProgressReporter::note_sim_time(double sim_us) {
  if (sim_us <= 0.0) return;
  const auto value = static_cast<std::uint64_t>(sim_us);
  std::uint64_t seen = sim_us_max_.load(std::memory_order_relaxed);
  while (seen < value &&
         !sim_us_max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    done_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit(true);
}

void ProgressReporter::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!done_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (done_) break;
    lock.unlock();
    emit(false);
    lock.lock();
  }
}

void ProgressReporter::emit(bool final_line) {
  const auto wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  const std::size_t units = units_.load(std::memory_order_relaxed);
  const auto events = events_.load(std::memory_order_relaxed);
  const double sim_us =
      static_cast<double>(sim_us_.load(std::memory_order_relaxed)) +
      static_cast<double>(sim_us_max_.load(std::memory_order_relaxed));

  std::string line = "[wlgen] ";
  line += options_.label.empty() ? "run" : options_.label;
  line += final_line ? " done: " : ": ";
  line += std::to_string(units);
  if (options_.total_units > 0) {
    line += "/" + std::to_string(options_.total_units);
  }
  line += " " + options_.unit;
  if (options_.total_units > 0 && units <= options_.total_units) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), " (%.0f%%)",
                  100.0 * static_cast<double>(units) /
                      static_cast<double>(options_.total_units));
    line += buffer;
  }
  line += " | " + compact(static_cast<double>(events)) + " events";
  if (wall > 0.0) {
    line += " | " + compact(static_cast<double>(events) / wall) + " events/s";
    if (sim_us > 0.0) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), " | sim/wall %.0fx",
                    sim_us / 1e6 / wall);
      line += buffer;
    }
  }
  if (!final_line && options_.total_units > 0 && units > 0 &&
      units < options_.total_units) {
    const double eta = wall * static_cast<double>(options_.total_units - units) /
                       static_cast<double>(units);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " | eta %.0fs", eta);
    line += buffer;
  }
  if (final_line) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), " | %.1fs wall", wall);
    line += buffer;
  }
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace wlgen::obs
