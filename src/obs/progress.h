#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace wlgen::obs {

/// Live heartbeat on stderr for long runs: a background thread wakes every
/// `interval_ms` and prints work-unit progress, events/s, the sim-time vs
/// wall-time ratio, and an ETA.  The simulating workers only touch relaxed
/// atomics (advance()), so progress never perturbs results — digests are
/// identical with the reporter on or off.
///
/// Construct only when progress is requested; destruction (or stop()) joins
/// the thread and prints a final summary line.
class ProgressReporter {
 public:
  struct Options {
    std::string label;            ///< run name shown on every line
    std::string unit = "units";   ///< what a work unit is ("users", "jobs", ...)
    std::size_t total_units = 0;  ///< 0 = unknown (no percentage/ETA)
    int interval_ms = 1000;
  };

  explicit ProgressReporter(Options options);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Records completed work: `units` finished work units, `events` simulator
  /// events dispatched, `sim_us` of simulated time covered.  Relaxed atomic
  /// adds — callable from any worker.
  void advance(std::size_t units, std::uint64_t events, double sim_us);

  /// Raises the simulated-clock high-water (shared-clock runs where sim time
  /// is a max across observers rather than a per-unit sum).
  void note_sim_time(double sim_us);

  /// Joins the heartbeat thread and prints the final line (idempotent).
  void stop();

 private:
  void loop();
  void emit(bool final_line);

  Options options_;
  std::atomic<std::size_t> units_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> sim_us_{0};      ///< summed simulated µs
  std::atomic<std::uint64_t> sim_us_max_{0};  ///< high-water simulated µs
  std::chrono::steady_clock::time_point start_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace wlgen::obs
