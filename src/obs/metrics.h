#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/usage_log.h"
#include "util/json.h"

namespace wlgen::obs {

/// Merge rule of one metric (the registry's per-shard fold contract):
///
/// * counter   — unsigned event count; merge = integer sum.  Grouping a sum
///               of integers differently never changes it, so counters are
///               invariant across shard AND thread counts.
/// * gauge_max — high-water mark; merge = max (also grouping-invariant).
/// * sum       — double accumulation (service-time sums).  Floating-point
///               addition is NOT associative, so sums are only invariant
///               when the fold visits the underlying per-entity slots in a
///               fixed order — the runners therefore tally sums per *user*
///               (or per replication) and fold in ascending entity order,
///               exactly the RunnerStats merge contract.
enum class MetricKind { counter, gauge_max, sum };

const char* to_string(MetricKind kind);

/// One named metric.  `stable == true` marks values that are bit-identical
/// for every shard/thread count (the determinism tests pin them exactly);
/// wall-clock derived metrics (pool busy/idle) are marked unstable and
/// serialize into a separate "timing" section.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::counter;
  bool stable = true;
  std::uint64_t count = 0;  ///< counter / gauge_max payload
  double value = 0.0;       ///< sum payload
};

/// Ordered, name-addressed metric set.  Registries are built per shard (or
/// per runner) from plain private counters — no atomics, no locks: each
/// shard's counters are touched by exactly one worker, which is what makes
/// them lock-free — and merged in fixed shard order, so the merged registry
/// inherits the runners' bit-identical determinism guarantee.
///
/// Registry calls are cold-path (end of a user/replication, end of a run);
/// the hot path increments plain struct fields (see OpTally) and exports
/// here once.
class Registry {
 public:
  /// counter += delta.
  void add_counter(std::string_view name, std::uint64_t delta, bool stable = true);

  /// gauge_max = max(gauge_max, value).
  void add_gauge_max(std::string_view name, std::uint64_t value, bool stable = true);

  /// sum += delta (callers are responsible for a fixed fold order).
  void add_sum(std::string_view name, double delta, bool stable = true);

  /// Folds `other` into this by (name, kind); unseen metrics append in
  /// `other`'s order, so merging in fixed shard order is deterministic.
  /// Throws std::invalid_argument when a name is reused with another kind.
  void merge(const Registry& other);

  bool empty() const { return metrics_.empty(); }
  const std::vector<Metric>& metrics() const { return metrics_; }

  /// Exact text of every *stable* metric, one per line ("name value", sums
  /// as %.17g: equal bits => equal text).  The determinism tests compare
  /// this across shard/thread counts with EXPECT_EQ.
  std::string stable_text() const;

  /// {"metrics": {stable...}, "timing": {unstable...}} — insertion order
  /// preserved, numbers exact for counters (< 2^53) and %.17g for sums.
  util::JsonValue to_json() const;

 private:
  Metric& slot(std::string_view name, MetricKind kind, bool stable);

  std::vector<Metric> metrics_;
};

/// Per-op-type tally — the hot-path accumulator behind the "per-model op
/// counts and service-time sums" metrics.  A plain struct of arrays: adding
/// a record is three indexed increments, no hashing, no branches beyond the
/// caller's single "is obs enabled" check.  One OpTally lives per user (or
/// per contended replication) so the double sums fold in the same fixed
/// entity order as RunnerStats.
struct OpTally {
  static constexpr std::size_t kOps = fsmodel::kFsOpTypeCount;

  std::array<std::uint64_t, kOps> count{};
  std::array<double, kOps> response_sum_us{};
  std::array<std::uint64_t, kOps> bytes{};

  void add(const core::OpRecord& record) {
    const auto op = static_cast<std::size_t>(record.op);
    count[op] += 1;
    response_sum_us[op] += record.response_us;
    bytes[op] += record.actual_bytes;
  }

  /// Fixed-order fold (sums + sums + sums).
  void merge(const OpTally& other);

  std::uint64_t total_ops() const;

  /// Exports "ops.<name>.count|response_sum_us|bytes" for every op type
  /// that occurred (all stable).
  void export_into(Registry& registry) const;
};

}  // namespace wlgen::obs
