#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "fsmodel/model.h"

namespace wlgen::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge_max: return "gauge_max";
    case MetricKind::sum: return "sum";
  }
  return "?";
}

namespace {

// Exact decimal text for a double: %.17g round-trips every finite value, so
// equal bits produce equal text (the property stable_text() relies on).
std::string exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Metric& Registry::slot(std::string_view name, MetricKind kind, bool stable) {
  for (auto& metric : metrics_) {
    if (metric.name == name) {
      if (metric.kind != kind) {
        throw std::invalid_argument("obs metric '" + metric.name +
                                    "' reused with kind " + to_string(kind) +
                                    " (registered as " + to_string(metric.kind) + ")");
      }
      return metric;
    }
  }
  Metric metric;
  metric.name = std::string(name);
  metric.kind = kind;
  metric.stable = stable;
  metrics_.push_back(std::move(metric));
  return metrics_.back();
}

void Registry::add_counter(std::string_view name, std::uint64_t delta, bool stable) {
  slot(name, MetricKind::counter, stable).count += delta;
}

void Registry::add_gauge_max(std::string_view name, std::uint64_t value, bool stable) {
  Metric& metric = slot(name, MetricKind::gauge_max, stable);
  if (value > metric.count) metric.count = value;
}

void Registry::add_sum(std::string_view name, double delta, bool stable) {
  slot(name, MetricKind::sum, stable).value += delta;
}

void Registry::merge(const Registry& other) {
  for (const auto& metric : other.metrics_) {
    Metric& mine = slot(metric.name, metric.kind, metric.stable);
    switch (metric.kind) {
      case MetricKind::counter:
        mine.count += metric.count;
        break;
      case MetricKind::gauge_max:
        if (metric.count > mine.count) mine.count = metric.count;
        break;
      case MetricKind::sum:
        mine.value += metric.value;
        break;
    }
  }
}

std::string Registry::stable_text() const {
  std::string text;
  for (const auto& metric : metrics_) {
    if (!metric.stable) continue;
    text += metric.name;
    text += ' ';
    if (metric.kind == MetricKind::sum) {
      text += exact(metric.value);
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%" PRIu64, metric.count);
      text += buffer;
    }
    text += '\n';
  }
  return text;
}

util::JsonValue Registry::to_json() const {
  util::JsonValue stable = util::JsonValue::make_object();
  util::JsonValue timing = util::JsonValue::make_object();
  for (const auto& metric : metrics_) {
    util::JsonValue& section = metric.stable ? stable : timing;
    if (metric.kind == MetricKind::sum) {
      section.set(metric.name, util::JsonValue(metric.value));
    } else {
      // Counters stay < 2^53 in practice; double holds them exactly.
      section.set(metric.name, util::JsonValue(static_cast<double>(metric.count)));
    }
  }
  util::JsonValue out = util::JsonValue::make_object();
  out.set("metrics", std::move(stable));
  out.set("timing", std::move(timing));
  return out;
}

void OpTally::merge(const OpTally& other) {
  for (std::size_t op = 0; op < kOps; ++op) {
    count[op] += other.count[op];
    response_sum_us[op] += other.response_sum_us[op];
    bytes[op] += other.bytes[op];
  }
}

std::uint64_t OpTally::total_ops() const {
  std::uint64_t total = 0;
  for (std::size_t op = 0; op < kOps; ++op) total += count[op];
  return total;
}

void OpTally::export_into(Registry& registry) const {
  for (std::size_t op = 0; op < kOps; ++op) {
    if (count[op] == 0) continue;
    const std::string prefix =
        std::string("ops.") + fsmodel::to_string(static_cast<fsmodel::FsOpType>(op));
    registry.add_counter(prefix + ".count", count[op]);
    registry.add_sum(prefix + ".response_sum_us", response_sum_us[op]);
    registry.add_counter(prefix + ".bytes", bytes[op]);
  }
}

}  // namespace wlgen::obs
