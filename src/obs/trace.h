#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wlgen::obs {

/// One duration event destined for a Chrome trace-event JSON ("ph":"X").
/// Names are interned into the owning TraceRing (see TraceRing::intern) so
/// events never dangle on resources/models that die before serialization.
struct TraceEvent {
  double ts_us = 0.0;   ///< start (virtual µs for sim tracks, wall µs for pool)
  double dur_us = 0.0;  ///< duration
  std::uint32_t name_id = 0;  ///< index into TraceRing::names()
  std::uint32_t track = 0;    ///< tid within the track group (user id, worker id, ...)
  std::uint32_t user = 0;     ///< owning user (session grouping); 0 when n/a
  std::uint32_t session = 0;  ///< owning session within user; 0 when n/a
};

/// Bounded event sink: a ring over the LAST `capacity` events pushed, so a
/// million-user run traces a sampled (trailing) window in O(capacity)
/// memory.  Each shard/job gets its own ring (its slice of the global
/// `obs.trace_events` budget) touched by exactly one worker — no locks; the
/// runner appends the rings in fixed shard order afterwards.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 0) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  /// Registers (or finds) a name; the returned id is stable for this ring.
  std::uint32_t intern(std::string_view name);

  /// Records one event, evicting the oldest when full.
  void push(const TraceEvent& event);

  /// Events pushed but evicted (reported so a truncated trace says so).
  std::uint64_t dropped() const { return dropped_; }

  /// Total events ever pushed.
  std::uint64_t pushed() const { return pushed_; }

  std::size_t size() const { return events_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Events in push order (oldest first).
  std::vector<TraceEvent> ordered() const;

  /// Folds `other` in: capacity grows by other's capacity (the per-shard
  /// budgets sum back to the run budget, so merging never evicts events a
  /// shard chose to keep), names re-interned, events appended in order.
  void append(const TraceRing& other);

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< next eviction slot once events_ is full
  std::uint64_t pushed_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> names_;
};

/// Thread-local slot the stage executor checks: when a runner worker is
/// simulating with tracing on, it points this at the shard's ring (via
/// ScopedStageTrace) and sim::run_stage records one duration event per
/// resource/delay stage.  Null — the default everywhere — means the stage
/// path costs one predictable not-taken branch.
TraceRing*& stage_trace_slot();

/// RAII install/restore for stage_trace_slot(); save/restore semantics keep
/// nested pools (scenario outer pool -> runner inner pool) correct.
class ScopedStageTrace {
 public:
  explicit ScopedStageTrace(TraceRing* ring) : saved_(stage_trace_slot()) {
    stage_trace_slot() = ring;
  }
  ~ScopedStageTrace() { stage_trace_slot() = saved_; }

  ScopedStageTrace(const ScopedStageTrace&) = delete;
  ScopedStageTrace& operator=(const ScopedStageTrace&) = delete;

 private:
  TraceRing* saved_;
};

/// One named track group in the emitted trace (one Chrome "process"):
/// e.g. "nfs · sessions & ops (virtual µs)".  `by_session == true` adds
/// synthesized session duration events spanning each (user, session)'s ops.
struct TraceGroup {
  std::string label;
  const TraceRing* ring = nullptr;
  bool virtual_time = true;  ///< tracks are virtual-time (vs wall-time)
  bool by_session = false;   ///< synthesize session spans; tracks keyed by user
};

/// Serializes groups as a Chrome trace-event / Perfetto-loadable JSON
/// document ({"traceEvents": [...], "displayTimeUnit": "ms"}).  Each group
/// becomes one pid with process_name metadata; tracks become tids with
/// thread_name metadata.
std::string chrome_trace_json(const std::vector<TraceGroup>& groups);

}  // namespace wlgen::obs
