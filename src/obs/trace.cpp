#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace wlgen::obs {

std::uint32_t TraceRing::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void TraceRing::push(const TraceEvent& event) {
  ++pushed_;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  events_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::ordered() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void TraceRing::append(const TraceRing& other) {
  // Rebuild in push order first so appended events land after existing ones.
  std::vector<TraceEvent> mine = ordered();
  events_ = std::move(mine);
  head_ = 0;
  capacity_ += other.capacity_;
  pushed_ += other.pushed_;
  dropped_ += other.dropped_;
  std::vector<std::uint32_t> remap(other.names_.size());
  for (std::size_t i = 0; i < other.names_.size(); ++i) {
    remap[i] = intern(other.names_[i]);
  }
  for (const TraceEvent& event : other.ordered()) {
    TraceEvent copy = event;
    copy.name_id = copy.name_id < remap.size() ? remap[copy.name_id] : 0;
    if (events_.size() < capacity_) {
      events_.push_back(copy);
    }
  }
}

TraceRing*& stage_trace_slot() {
  thread_local TraceRing* slot = nullptr;
  return slot;
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string number(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

// One "ph":"M" metadata line naming a pid (process_name) or tid (thread_name).
void append_meta(std::string& out, const char* what, int pid, int tid,
                 std::string_view name, bool* first) {
  if (!*first) out += ",\n";
  *first = false;
  out += "  {\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += what;
  out += "\",\"args\":{\"name\":";
  append_escaped(out, name);
  out += "}}";
}

void append_span(std::string& out, int pid, std::uint32_t tid,
                 std::string_view name, double ts, double dur, bool* first) {
  if (!*first) out += ",\n";
  *first = false;
  out += "  {\"ph\":\"X\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += number(ts);
  out += ",\"dur\":";
  out += number(dur);
  out += ",\"name\":";
  append_escaped(out, name);
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceGroup>& groups) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const TraceGroup& group = groups[g];
    if (group.ring == nullptr) continue;
    const int pid = static_cast<int>(g) + 1;
    std::string label = group.label;
    label += group.virtual_time ? " (virtual us)" : " (wall us)";
    if (group.ring->dropped() > 0) {
      label += " [ring dropped " + std::to_string(group.ring->dropped()) + "]";
    }
    append_meta(out, "process_name", pid, 0, label, &first);

    const std::vector<TraceEvent> events = group.ring->ordered();
    const std::vector<std::string>& names = group.ring->names();

    // Track (tid) names.  Ops/session tracks are keyed by user; stage tracks
    // by resource name id; pool tracks by worker index.
    std::map<std::uint32_t, std::string> tracks;
    for (const TraceEvent& event : events) {
      if (tracks.count(event.track)) continue;
      std::string name;
      if (group.by_session) {
        name = "user " + std::to_string(event.track);
      } else if (event.track < names.size() && group.virtual_time) {
        name = names[event.track];
      } else {
        name = "worker " + std::to_string(event.track);
      }
      tracks.emplace(event.track, std::move(name));
    }
    for (const auto& [tid, name] : tracks) {
      append_meta(out, "thread_name", pid, static_cast<int>(tid), name, &first);
    }

    if (group.by_session) {
      // Synthesize session spans covering each (user, session)'s ops.
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<double, double>> spans;
      for (const TraceEvent& event : events) {
        const auto key = std::make_pair(event.user, event.session);
        auto [it, inserted] = spans.emplace(
            key, std::make_pair(event.ts_us, event.ts_us + event.dur_us));
        if (!inserted) {
          if (event.ts_us < it->second.first) it->second.first = event.ts_us;
          if (event.ts_us + event.dur_us > it->second.second) {
            it->second.second = event.ts_us + event.dur_us;
          }
        }
      }
      for (const auto& [key, range] : spans) {
        append_span(out, pid, key.first,
                    "session " + std::to_string(key.second), range.first,
                    range.second - range.first, &first);
      }
    }

    for (const TraceEvent& event : events) {
      const std::string& name =
          event.name_id < names.size() ? names[event.name_id] : "?";
      append_span(out, pid, event.track, name, event.ts_us, event.dur_us, &first);
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace wlgen::obs
