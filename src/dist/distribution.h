#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace wlgen::util {
class RngStream;
}

namespace wlgen::dist {

class Distribution;

/// Owning handle to a distribution.  core::DistRef wraps the same objects as
/// shared-immutable; DistributionPtr is the unique-ownership flavour used by
/// parsers, fitters and factories.
using DistributionPtr = std::unique_ptr<Distribution>;

/// A univariate continuous distribution: the sampling contract every fitted
/// family of the paper's GDS (section 4.1.1) satisfies, so the workload
/// generator can draw file sizes, accesses-per-byte, think times and
/// inter-session gaps without knowing the family.
///
/// All methods are const and reentrant; sampling state lives in the caller's
/// RngStream, never in the distribution, so one object can be shared by
/// millions of simulated users.  Implementations precompute whatever makes
/// sample() cheap (cumulative phase weights, -theta factors, log-normalisers)
/// at construction time — sample() is the hot path of every experiment.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one variate using (and advancing) `rng`.
  virtual double sample(util::RngStream& rng) const = 0;

  /// Draws n variates into out[0..n), advancing `rng` exactly as n
  /// sequential sample() calls would — overrides must reproduce the scalar
  /// draw sequence bit-for-bit (dist_test pins this), so callers can batch
  /// freely without perturbing any downstream draw.  The base
  /// implementation is the scalar loop; the hot families override it with
  /// kernels that hoist the virtual dispatch out of the loop and resolve
  /// whole uniform blocks at once (see DESIGN.md "Batched sampling").
  virtual void sample_n(util::RngStream& rng, double* out, std::size_t n) const;

  /// Density f(x); 0 outside the support.
  virtual double pdf(double x) const = 0;

  /// Cumulative F(x) = P(X <= x), in [0, 1] and non-decreasing.
  virtual double cdf(double x) const = 0;

  /// Inverse CDF.  p must be in [0, 1]; p == 0 / 1 map to the support
  /// bounds (which may be infinite).  The default implementation inverts
  /// cdf() by bracketed bisection; families with closed forms override it.
  virtual double quantile(double p) const;

  virtual double mean() const = 0;
  virtual double variance() const = 0;
  double stddev() const;

  /// Infimum of the support (often 0 or the smallest phase offset).
  virtual double lower_bound() const = 0;

  /// Supremum of the support (+infinity for the parametric families).
  virtual double upper_bound() const = 0;

  /// Short human-readable summary, stable across clone().
  virtual std::string describe() const = 0;

  /// Deep copy.
  virtual DistributionPtr clone() const = 0;

 protected:
  Distribution() = default;
  Distribution(const Distribution&) = default;
  Distribution& operator=(const Distribution&) = default;
};

}  // namespace wlgen::dist
