#include "dist/multistage_gamma.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/numeric.h"
#include "util/rng.h"

namespace wlgen::dist {

MultiStageGamma::MultiStageGamma(std::vector<GammaStage> stages) : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("MultiStageGamma: at least one stage required");
  }
  double total = 0.0;
  for (const auto& st : stages_) {
    if (!(std::isfinite(st.weight) && st.weight > 0.0)) {
      throw std::invalid_argument("MultiStageGamma: weights must be > 0");
    }
    if (!(std::isfinite(st.alpha) && st.alpha > 0.0)) {
      throw std::invalid_argument("MultiStageGamma: alpha must be > 0");
    }
    if (!(std::isfinite(st.theta) && st.theta > 0.0)) {
      throw std::invalid_argument("MultiStageGamma: theta must be > 0");
    }
    if (!std::isfinite(st.offset)) {
      throw std::invalid_argument("MultiStageGamma: offset must be finite");
    }
    total += st.weight;
  }

  cum_weights_.reserve(stages_.size());
  log_norm_.reserve(stages_.size());
  inv_theta_.reserve(stages_.size());
  double cum = 0.0;
  double m2 = 0.0;
  lower_ = std::numeric_limits<double>::infinity();
  for (auto& st : stages_) {
    st.weight /= total;
    cum += st.weight;
    cum_weights_.push_back(cum);
    log_norm_.push_back(util::log_gamma(st.alpha) + st.alpha * std::log(st.theta));
    inv_theta_.push_back(1.0 / st.theta);
    const double stage_mean = st.offset + st.alpha * st.theta;
    const double stage_var = st.alpha * st.theta * st.theta;
    mean_ += st.weight * stage_mean;
    m2 += st.weight * (stage_var + stage_mean * stage_mean);
    lower_ = std::min(lower_, st.offset);
  }
  cum_weights_.back() = 1.0;
  variance_ = m2 - mean_ * mean_;
}

MultiStageGamma MultiStageGamma::paper_example_a() {
  return MultiStageGamma({{1.0, 1.4, 12.4, 0.0}});
}

MultiStageGamma MultiStageGamma::paper_example_b() {
  return MultiStageGamma({{1.0, 1.5, 25.4, 12.0}});
}

MultiStageGamma MultiStageGamma::paper_example_c() {
  return MultiStageGamma(
      {{0.7, 1.4, 12.4, 0.0}, {0.2, 1.5, 12.4, 23.0}, {0.1, 1.5, 12.3, 41.0}});
}

double MultiStageGamma::sample(util::RngStream& rng) const {
  const double u = rng.uniform01();
  std::size_t k = 0;
  const std::size_t last = cum_weights_.size() - 1;
  for (std::size_t j = 0; j < last; ++j) {
    k += static_cast<std::size_t>(u >= cum_weights_[j]);
  }
  const GammaStage& st = stages_[k];
  return st.offset + rng.gamma(st.alpha, st.theta);
}

void MultiStageGamma::sample_n(util::RngStream& rng, double* out, std::size_t n) const {
  const std::size_t last = cum_weights_.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    std::size_t k = 0;
    for (std::size_t j = 0; j < last; ++j) {
      k += static_cast<std::size_t>(u >= cum_weights_[j]);
    }
    const GammaStage& st = stages_[k];
    out[i] = st.offset + rng.gamma(st.alpha, st.theta);
  }
}

double MultiStageGamma::pdf(double x) const {
  double f = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const double y = x - stages_[i].offset;
    if (y <= 0.0) continue;
    const double a = stages_[i].alpha;
    f += stages_[i].weight *
         std::exp((a - 1.0) * std::log(y) - y * inv_theta_[i] - log_norm_[i]);
  }
  return f;
}

double MultiStageGamma::cdf(double x) const {
  double c = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const double y = x - stages_[i].offset;
    if (y > 0.0) {
      c += stages_[i].weight * util::regularized_gamma_p(stages_[i].alpha, y * inv_theta_[i]);
    }
  }
  return std::min(c, 1.0);
}

double MultiStageGamma::upper_bound() const { return std::numeric_limits<double>::infinity(); }

std::string MultiStageGamma::describe() const {
  std::ostringstream out;
  out.precision(12);
  out << "gamma(";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out << ", ";
    out << "(w=" << stages_[i].weight << ", alpha=" << stages_[i].alpha
        << ", theta=" << stages_[i].theta << ", s=" << stages_[i].offset << ")";
  }
  out << ")";
  return out.str();
}

DistributionPtr MultiStageGamma::clone() const {
  return std::make_unique<MultiStageGamma>(*this);
}

}  // namespace wlgen::dist
