#include "dist/phase_exponential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace wlgen::dist {

PhaseTypeExponential::PhaseTypeExponential(std::vector<ExpPhase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("PhaseTypeExponential: at least one phase required");
  }
  double total = 0.0;
  for (const auto& ph : phases_) {
    if (!(std::isfinite(ph.weight) && ph.weight > 0.0)) {
      throw std::invalid_argument("PhaseTypeExponential: weights must be > 0");
    }
    if (!(std::isfinite(ph.theta) && ph.theta > 0.0)) {
      throw std::invalid_argument("PhaseTypeExponential: theta must be > 0");
    }
    if (!std::isfinite(ph.offset)) {
      throw std::invalid_argument("PhaseTypeExponential: offset must be finite");
    }
    total += ph.weight;
  }

  cum_weights_.reserve(phases_.size());
  inv_theta_.reserve(phases_.size());
  double cum = 0.0;
  lower_ = std::numeric_limits<double>::infinity();
  double m2 = 0.0;
  for (auto& ph : phases_) {
    ph.weight /= total;
    cum += ph.weight;
    cum_weights_.push_back(cum);
    inv_theta_.push_back(1.0 / ph.theta);
    const double phase_mean = ph.offset + ph.theta;
    mean_ += ph.weight * phase_mean;
    m2 += ph.weight * (ph.theta * ph.theta + phase_mean * phase_mean);
    lower_ = std::min(lower_, ph.offset);
  }
  cum_weights_.back() = 1.0;  // exact, independent of rounding
  variance_ = m2 - mean_ * mean_;
}

PhaseTypeExponential PhaseTypeExponential::paper_example_a() {
  return PhaseTypeExponential({{1.0, 22.1, 0.0}});
}

PhaseTypeExponential PhaseTypeExponential::paper_example_b() {
  return PhaseTypeExponential({{0.4, 12.7, 0.0}, {0.6, 18.2, 18.0}});
}

PhaseTypeExponential PhaseTypeExponential::paper_example_c() {
  return PhaseTypeExponential({{0.4, 12.7, 0.0}, {0.3, 18.2, 18.0}, {0.3, 15.0, 40.0}});
}

double PhaseTypeExponential::sample(util::RngStream& rng) const {
  const double u = rng.uniform01();
  // Branchless cumulative search: k = #{ thresholds <= u }.
  std::size_t k = 0;
  const std::size_t last = cum_weights_.size() - 1;
  for (std::size_t j = 0; j < last; ++j) {
    k += static_cast<std::size_t>(u >= cum_weights_[j]);
  }
  // Rescale the remainder of u into a fresh uniform for the inverse
  // transform; exact in real arithmetic, so no second RNG draw is needed.
  const double lo = k == 0 ? 0.0 : cum_weights_[k - 1];
  const double span = cum_weights_[k] - lo;
  double v = (u - lo) / span;
  v = std::min(v, 1.0 - 1e-16);  // keep log1p argument > -1
  const ExpPhase& ph = phases_[k];
  return ph.offset - ph.theta * std::log1p(-v);
}

void PhaseTypeExponential::sample_n(util::RngStream& rng, double* out, std::size_t n) const {
  // Each draw consumes exactly one uniform, so pulling the whole block up
  // front leaves the stream in the same state as n scalar calls; the
  // resolve loop then runs without the per-draw refill check or virtual
  // dispatch.
  rng.fill_uniform01(out, n);
  const std::size_t last = cum_weights_.size() - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = out[i];
    std::size_t k = 0;
    for (std::size_t j = 0; j < last; ++j) {
      k += static_cast<std::size_t>(u >= cum_weights_[j]);
    }
    const double lo = k == 0 ? 0.0 : cum_weights_[k - 1];
    const double span = cum_weights_[k] - lo;
    double v = (u - lo) / span;
    v = std::min(v, 1.0 - 1e-16);
    const ExpPhase& ph = phases_[k];
    out[i] = ph.offset - ph.theta * std::log1p(-v);
  }
}

double PhaseTypeExponential::pdf(double x) const {
  double f = 0.0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const double y = x - phases_[i].offset;
    if (y >= 0.0) f += phases_[i].weight * inv_theta_[i] * std::exp(-y * inv_theta_[i]);
  }
  return f;
}

double PhaseTypeExponential::cdf(double x) const {
  double c = 0.0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const double y = x - phases_[i].offset;
    if (y > 0.0) c += phases_[i].weight * -std::expm1(-y * inv_theta_[i]);
  }
  return std::min(c, 1.0);
}

double PhaseTypeExponential::upper_bound() const {
  return std::numeric_limits<double>::infinity();
}

std::string PhaseTypeExponential::describe() const {
  std::ostringstream out;
  out.precision(12);
  out << "phase_exp(";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i != 0) out << ", ";
    out << "(w=" << phases_[i].weight << ", theta=" << phases_[i].theta
        << ", s=" << phases_[i].offset << ")";
  }
  out << ")";
  return out.str();
}

DistributionPtr PhaseTypeExponential::clone() const {
  return std::make_unique<PhaseTypeExponential>(*this);
}

}  // namespace wlgen::dist
