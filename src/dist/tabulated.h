#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::dist {

/// Distribution given by PDF values at knots — the GDS's "enter the PDF
/// values directly" input mode (section 4.1.1).  The density is the
/// piecewise-linear interpolation of the knots, normalised to unit mass;
/// cdf/quantile/moments are the exact closed forms of that polyline.
class TabulatedPdf : public Distribution {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing with
  /// >= 2 knots, all fs >= 0 and the total mass is positive.
  TabulatedPdf(std::vector<double> xs, std::vector<double> fs);

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double lower_bound() const override { return xs_.front(); }
  double upper_bound() const override { return xs_.back(); }
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  std::vector<double> xs_;
  std::vector<double> fs_;   ///< normalised density at the knots
  std::vector<double> cum_;  ///< CDF at the knots (cum_.back() == 1)
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Distribution given by CDF values at knots — the GDS's "enter the CDF
/// values directly" input mode.  F values are rescaled to span [0, 1]; the
/// density is piecewise-constant between knots.
class TabulatedCdf : public Distribution {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing with
  /// >= 2 knots and Fs is non-decreasing with Fs.front() < Fs.back().
  TabulatedCdf(std::vector<double> xs, std::vector<double> Fs);

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double lower_bound() const override { return xs_.front(); }
  double upper_bound() const override { return xs_.back(); }
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  std::vector<double> xs_;
  std::vector<double> fs_;  ///< rescaled CDF at the knots
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Distribution of a measured sample — what the paper fits its families to.
/// Quantiles linearly interpolate the order statistics; the CDF is the exact
/// inverse of that interpolation and the PDF is a boundary-clipped
/// finite-difference estimate of the CDF.  Moments are the data moments.
class EmpiricalDistribution : public Distribution {
 public:
  /// Throws std::invalid_argument when data is empty or non-finite.
  explicit EmpiricalDistribution(std::vector<double> data);

  std::size_t count() const { return sorted_.size(); }

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double lower_bound() const override { return sorted_.front(); }
  double upper_bound() const override { return sorted_.back(); }
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  double fd_window_ = 0.0;  ///< half-width of the pdf finite-difference step
};

}  // namespace wlgen::dist
