#include "dist/basic.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "dist/format.h"
#include "util/rng.h"

namespace wlgen::dist {

// ---------------------------------------------------------------------------
// ConstantDistribution
// ---------------------------------------------------------------------------

ConstantDistribution::ConstantDistribution(double value) : value_(value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("ConstantDistribution: value must be finite");
  }
}

double ConstantDistribution::sample(util::RngStream&) const { return value_; }

double ConstantDistribution::pdf(double) const { return 0.0; }

double ConstantDistribution::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double ConstantDistribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("ConstantDistribution::quantile: p outside [0, 1]");
  }
  return value_;
}

std::string ConstantDistribution::describe() const {
  return "constant(" + detail::format_value(value_) + ")";
}

DistributionPtr ConstantDistribution::clone() const {
  return std::make_unique<ConstantDistribution>(*this);
}

// ---------------------------------------------------------------------------
// UniformDistribution
// ---------------------------------------------------------------------------

UniformDistribution::UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(std::isfinite(lo) && std::isfinite(hi) && hi > lo)) {
    throw std::invalid_argument("UniformDistribution: requires finite lo < hi");
  }
  inv_span_ = 1.0 / (hi_ - lo_);
}

double UniformDistribution::sample(util::RngStream& rng) const {
  return lo_ + (hi_ - lo_) * rng.uniform01();
}

double UniformDistribution::pdf(double x) const {
  return (x >= lo_ && x < hi_) ? inv_span_ : 0.0;
}

double UniformDistribution::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) * inv_span_;
}

double UniformDistribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("UniformDistribution::quantile: p outside [0, 1]");
  }
  return lo_ + (hi_ - lo_) * p;
}

std::string UniformDistribution::describe() const {
  return "uniform(" + detail::format_value(lo_) + ", " + detail::format_value(hi_) + ")";
}

DistributionPtr UniformDistribution::clone() const {
  return std::make_unique<UniformDistribution>(*this);
}

// ---------------------------------------------------------------------------
// ExponentialDistribution
// ---------------------------------------------------------------------------

ExponentialDistribution::ExponentialDistribution(double theta, double offset)
    : theta_(theta), offset_(offset) {
  if (!(std::isfinite(theta) && theta > 0.0)) {
    throw std::invalid_argument("ExponentialDistribution: theta must be > 0");
  }
  if (!std::isfinite(offset)) {
    throw std::invalid_argument("ExponentialDistribution: offset must be finite");
  }
  neg_theta_ = -theta_;
  inv_theta_ = 1.0 / theta_;
}

double ExponentialDistribution::sample(util::RngStream& rng) const {
  // Inverse transform; log1p(-u) is finite for u in [0, 1).
  return offset_ + neg_theta_ * std::log1p(-rng.uniform01());
}

double ExponentialDistribution::pdf(double x) const {
  const double y = x - offset_;
  if (y < 0.0) return 0.0;
  return inv_theta_ * std::exp(-y * inv_theta_);
}

double ExponentialDistribution::cdf(double x) const {
  const double y = x - offset_;
  if (y <= 0.0) return 0.0;
  return -std::expm1(-y * inv_theta_);
}

double ExponentialDistribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("ExponentialDistribution::quantile: p outside [0, 1]");
  }
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return offset_ + neg_theta_ * std::log1p(-p);
}

double ExponentialDistribution::upper_bound() const {
  return std::numeric_limits<double>::infinity();
}

std::string ExponentialDistribution::describe() const {
  if (offset_ == 0.0) return "exp(theta=" + detail::format_value(theta_) + ")";
  return "exp(theta=" + detail::format_value(theta_) + ", s=" + detail::format_value(offset_) + ")";
}

DistributionPtr ExponentialDistribution::clone() const {
  return std::make_unique<ExponentialDistribution>(*this);
}

}  // namespace wlgen::dist
