#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::dist {

/// A tabulated CDF — the artefact the paper's GDS hands to the FSC and USIM
/// ("Generate CDF tables", Figure 4.1).  Knots (x_i, F_i) define a
/// piecewise-linear CDF; sampling interpolates between knots.
///
/// Two sampling paths share the same distribution:
///
///  - sample()         — Walker/Vose alias fast path.  A precomputed alias
///    table over the size()-1 segments turns segment selection into one
///    array lookup + one comparison, so a draw costs O(1) regardless of
///    table resolution (16-bin and 4096-bin tables sample at the same
///    speed).  The single uniform draw is recycled: its scaled fractional
///    part selects the alias column, and the within-column remainder is
///    rescaled into the intra-segment position.
///  - sample_binary()  — classic O(log n) binary search over the F column;
///    kept as the reference path for correctness tests.
///
/// F values are normalised to [0, 1] at construction.
class CdfTable {
 public:
  /// Throws std::invalid_argument unless xs is strictly increasing, Fs is
  /// non-decreasing with Fs.front() < Fs.back(), and both have >= 2 entries
  /// of equal length.
  CdfTable(std::vector<double> xs, std::vector<double> Fs);

  /// Number of knots.
  std::size_t size() const { return xs_.size(); }

  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& Fs() const { return fs_; }

  /// O(1) alias-method draw (the default hot path).
  double sample(util::RngStream& rng) const;

  /// Batch alias-method draw: fills out[0..n) with the next n sample()
  /// values, bit-identical to n scalar calls.  The whole uniform block is
  /// drawn up front and the alias columns are resolved in a tight
  /// branch-free loop — the scalar path's accept/alias branch is
  /// data-random, so on large tables the misprediction dominates the draw;
  /// the select here compiles to conditional moves and the iterations
  /// pipeline independently.
  void sample_n(util::RngStream& rng, double* out, std::size_t n) const;

  /// O(log n) binary-search draw; statistically identical to sample().
  double sample_binary(util::RngStream& rng) const;

  /// Piecewise-linear inverse CDF; p in [0, 1].
  double quantile(double p) const;

  /// Piecewise-linear CDF (clamped to [0, 1] outside the knots).
  double cdf(double x) const;

  /// "x F" lines, one knot per line; parse() round-trips.
  std::string serialize() const;
  static CdfTable parse(const std::string& text);

 private:
  void build_alias_table();

  std::vector<double> xs_;
  std::vector<double> fs_;  ///< normalised to fs_.front()==0, fs_.back()==1

  // Walker/Vose alias table over the size()-1 inter-knot segments.
  std::vector<double> alias_prob_;         ///< acceptance threshold per column
  std::vector<std::uint32_t> alias_idx_;   ///< alias segment per column
};

/// Samples `points` quantiles of `d` (evenly spaced in probability, with the
/// unbounded tails clipped at 1e-6 / 1 - 1e-5) into a CdfTable.
/// Throws std::invalid_argument when points < 2.
CdfTable build_cdf_table(const Distribution& d, std::size_t points);

}  // namespace wlgen::dist
