#include "dist/cdf_table.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace wlgen::dist {

CdfTable::CdfTable(std::vector<double> xs, std::vector<double> Fs)
    : xs_(std::move(xs)), fs_(std::move(Fs)) {
  if (xs_.size() != fs_.size()) {
    throw std::invalid_argument("CdfTable: xs and Fs must have equal length");
  }
  if (xs_.size() < 2) {
    throw std::invalid_argument("CdfTable: at least two knots required");
  }
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (!std::isfinite(xs_[i]) || !std::isfinite(fs_[i])) {
      throw std::invalid_argument("CdfTable: knots must be finite");
    }
    if (i > 0 && !(xs_[i] > xs_[i - 1])) {
      throw std::invalid_argument("CdfTable: xs must be strictly increasing");
    }
    if (i > 0 && fs_[i] < fs_[i - 1]) {
      throw std::invalid_argument("CdfTable: Fs must be non-decreasing");
    }
  }
  const double f0 = fs_.front();
  const double span = fs_.back() - f0;
  if (!(span > 0.0)) {
    throw std::invalid_argument("CdfTable: Fs must increase from front to back");
  }
  for (double& f : fs_) f = (f - f0) / span;
  fs_.front() = 0.0;
  fs_.back() = 1.0;
  build_alias_table();
}

void CdfTable::build_alias_table() {
  // Walker/Vose over the m = size()-1 segments, segment i carrying
  // probability mass fs_[i+1] - fs_[i] (masses sum to exactly 1).
  const std::size_t m = xs_.size() - 1;
  alias_prob_.assign(m, 1.0);
  alias_idx_.resize(m);
  std::vector<double> scaled(m);
  std::vector<std::uint32_t> small, large;
  small.reserve(m);
  large.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    alias_idx_[i] = static_cast<std::uint32_t>(i);
    scaled[i] = (fs_[i + 1] - fs_[i]) * static_cast<double>(m);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    alias_prob_[s] = scaled[s];
    alias_idx_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Whatever is left (rounding residue) fills its own column completely —
  // alias_prob_ is already 1.0 there.
}

double CdfTable::sample(util::RngStream& rng) const {
  const std::size_t m = xs_.size() - 1;
  const double scaled_u = rng.uniform01() * static_cast<double>(m);
  std::size_t column = static_cast<std::size_t>(scaled_u);
  if (column >= m) column = m - 1;  // guards fp rounding at scaled_u == m
  const double frac = scaled_u - static_cast<double>(column);
  const double threshold = alias_prob_[column];
  // Recycle the fractional part: conditioned on the branch it is again a
  // uniform [0,1) variate, so one RNG draw covers both segment selection and
  // the intra-segment position.
  std::size_t segment;
  double v;
  if (frac < threshold) {
    segment = column;
    v = frac / threshold;
  } else {
    segment = alias_idx_[column];
    v = (frac - threshold) / (1.0 - threshold);
  }
  return xs_[segment] + (xs_[segment + 1] - xs_[segment]) * v;
}

void CdfTable::sample_n(util::RngStream& rng, double* out, std::size_t n) const {
  // Stage 1 consumes the stream exactly as n scalar sample() calls would;
  // stage 2 is pure arithmetic on the buffer.
  rng.fill_uniform01(out, n);
  const std::size_t m = xs_.size() - 1;
  const double md = static_cast<double>(m);
  for (std::size_t i = 0; i < n; ++i) {
    const double scaled_u = out[i] * md;
    std::size_t column = static_cast<std::size_t>(scaled_u);
    if (column >= m) column = m - 1;
    const double frac = scaled_u - static_cast<double>(column);
    const double threshold = alias_prob_[column];
    // Branch-free form of sample()'s accept/alias split: both candidate
    // positions are computed and a conditional move keeps the right one.
    // When threshold == 1.0 the alias division produces inf/NaN, but then
    // frac < threshold always holds and the value is discarded unselected.
    const bool accept = frac < threshold;
    const std::size_t segment = accept ? column : alias_idx_[column];
    const double v = accept ? frac / threshold : (frac - threshold) / (1.0 - threshold);
    out[i] = xs_[segment] + (xs_[segment + 1] - xs_[segment]) * v;
  }
}

double CdfTable::sample_binary(util::RngStream& rng) const {
  // Plain inverse-transform sampling; quantile() is the single copy of the
  // binary-search inversion both paths are validated against.
  return quantile(rng.uniform01());
}

double CdfTable::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("CdfTable::quantile: p outside [0, 1]");
  }
  if (p >= 1.0) return xs_.back();
  const auto it = std::upper_bound(fs_.begin(), fs_.end(), p);
  std::size_t hi = static_cast<std::size_t>(it - fs_.begin());
  if (hi >= fs_.size()) hi = fs_.size() - 1;
  const std::size_t lo = hi - 1;
  const double span = fs_[hi] - fs_[lo];
  if (span <= 0.0) return xs_[lo];
  return xs_[lo] + (xs_[hi] - xs_[lo]) * (p - fs_[lo]) / span;
}

double CdfTable::cdf(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) return 1.0;
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return fs_[lo] + (fs_[hi] - fs_[lo]) * t;
}

std::string CdfTable::serialize() const {
  std::ostringstream out;
  out.precision(17);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    out << xs_[i] << ' ' << fs_[i] << '\n';
  }
  return out.str();
}

CdfTable CdfTable::parse(const std::string& text) {
  std::istringstream in(text);
  std::vector<double> xs, fs;
  double x = 0.0, f = 0.0;
  while (in >> x >> f) {
    xs.push_back(x);
    fs.push_back(f);
  }
  if (!in.eof()) {
    throw std::invalid_argument("CdfTable::parse: malformed \"x F\" line");
  }
  return CdfTable(std::move(xs), std::move(fs));
}

CdfTable build_cdf_table(const Distribution& d, std::size_t points) {
  if (points < 2) {
    throw std::invalid_argument("build_cdf_table: at least two points required");
  }
  double p_lo = 0.0, p_hi = 1.0;
  double x_lo = d.lower_bound();
  double x_hi = d.upper_bound();
  if (!std::isfinite(x_lo)) {
    p_lo = 1e-6;
    x_lo = d.quantile(p_lo);
  }
  if (!std::isfinite(x_hi)) {
    p_hi = 1.0 - 1e-5;
    x_hi = d.quantile(p_hi);
  }
  std::vector<double> xs, fs;
  xs.reserve(points);
  fs.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const double p = p_lo + (p_hi - p_lo) * t;
    double x;
    if (i == 0) {
      x = x_lo;
    } else if (i + 1 == points) {
      x = x_hi;
    } else {
      x = d.quantile(p);
    }
    // Flat quantile stretches (atoms, empirical ties) collapse to one knot.
    if (!xs.empty() && !(x > xs.back())) continue;
    xs.push_back(x);
    fs.push_back(p);
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("build_cdf_table: distribution support is degenerate");
  }
  return CdfTable(std::move(xs), std::move(fs));
}

}  // namespace wlgen::dist
