#include "dist/fitting.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace wlgen::dist {

namespace {

constexpr double kTinyTheta = 1e-9;

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance_of(const std::vector<double>& v, double mean) {
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(v.size());
}

/// One-sample KS D of sorted data against d.  Deliberately local: dist is a
/// lower layer than stats (stats/tests.h consumes dist::Distribution), so
/// fit_best cannot call stats::ks_statistic without inverting the layering.
double ks_d(const std::vector<double>& sorted, const Distribution& d) {
  const double n = static_cast<double>(sorted.size());
  double D = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double F = d.cdf(sorted[i]);
    D = std::max(D, std::max(F - static_cast<double>(i) / n,
                             static_cast<double>(i + 1) / n - F));
  }
  return D;
}

}  // namespace

double sample_mean(const std::vector<double>& data) {
  if (data.empty()) throw std::invalid_argument("sample_mean: empty data");
  return mean_of(data);
}

double sample_variance(const std::vector<double>& data) {
  if (data.empty()) throw std::invalid_argument("sample_variance: empty data");
  return variance_of(data, mean_of(data));
}

Clustering kmeans_1d(const std::vector<double>& data, std::size_t k) {
  if (data.empty()) throw std::invalid_argument("kmeans_1d: empty data");
  if (k == 0) throw std::invalid_argument("kmeans_1d: k must be >= 1");

  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> distinct;
  std::unique_copy(sorted.begin(), sorted.end(), std::back_inserter(distinct));
  k = std::min(k, distinct.size());

  // Seed centroids at evenly spaced distinct values; in 1-D the optimal
  // clusters are contiguous runs of the sorted data, so Lloyd iterations
  // only move the cut points between consecutive centroids.
  std::vector<double> centroids(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = k == 1 ? distinct.size() / 2
                                   : i * (distinct.size() - 1) / (k - 1);
    centroids[i] = distinct[idx];
  }

  const std::size_t n = sorted.size();
  std::vector<std::size_t> cuts(k + 1, 0);
  for (int iter = 0; iter < 200; ++iter) {
    cuts.front() = 0;
    cuts.back() = n;
    for (std::size_t j = 1; j < k; ++j) {
      const double boundary = 0.5 * (centroids[j - 1] + centroids[j]);
      const auto it = std::lower_bound(sorted.begin(), sorted.end(), boundary);
      cuts[j] = std::max(cuts[j - 1], static_cast<std::size_t>(it - sorted.begin()));
    }
    bool changed = false;
    for (std::size_t j = 0; j < k; ++j) {
      if (cuts[j + 1] == cuts[j]) continue;  // empty run keeps its centroid
      double sum = 0.0;
      for (std::size_t i = cuts[j]; i < cuts[j + 1]; ++i) sum += sorted[i];
      const double c = sum / static_cast<double>(cuts[j + 1] - cuts[j]);
      if (std::fabs(c - centroids[j]) > 1e-12) changed = true;
      centroids[j] = c;
    }
    if (!changed) break;
  }

  Clustering out;
  for (std::size_t j = 0; j < k; ++j) {
    if (cuts[j + 1] == cuts[j]) continue;
    out.centroids.push_back(centroids[j]);
    out.groups.emplace_back(sorted.begin() + static_cast<std::ptrdiff_t>(cuts[j]),
                            sorted.begin() + static_cast<std::ptrdiff_t>(cuts[j + 1]));
  }
  return out;
}

ExponentialDistribution fit_exponential(const std::vector<double>& data) {
  if (data.empty()) throw std::invalid_argument("fit_exponential: empty data");
  return ExponentialDistribution(std::max(mean_of(data), kTinyTheta));
}

PhaseTypeExponential fit_phase_exponential(const std::vector<double>& data,
                                           std::size_t phases) {
  if (data.empty()) throw std::invalid_argument("fit_phase_exponential: empty data");
  const Clustering clusters = kmeans_1d(data, phases);
  const double n = static_cast<double>(data.size());
  std::vector<ExpPhase> out;
  out.reserve(clusters.groups.size());
  for (const auto& group : clusters.groups) {
    const double offset = group.front();  // groups are sorted runs
    const double theta = std::max(mean_of(group) - offset, kTinyTheta);
    out.push_back({static_cast<double>(group.size()) / n, theta, offset});
  }
  return PhaseTypeExponential(std::move(out));
}

MultiStageGamma fit_multistage_gamma(const std::vector<double>& data, std::size_t stages) {
  if (data.empty()) throw std::invalid_argument("fit_multistage_gamma: empty data");
  const Clustering clusters = kmeans_1d(data, stages);
  const double n = static_cast<double>(data.size());
  std::vector<GammaStage> out;
  out.reserve(clusters.groups.size());
  for (const auto& group : clusters.groups) {
    const double offset = group.front();
    const double m = std::max(mean_of(group) - offset, kTinyTheta);
    const double v = std::max(variance_of(group, mean_of(group)), m * m * 1e-6);
    out.push_back({static_cast<double>(group.size()) / n, m * m / v, v / m, offset});
  }
  return MultiStageGamma(std::move(out));
}

BestFit fit_best(const std::vector<double>& data, std::size_t max_components) {
  if (data.empty()) throw std::invalid_argument("fit_best: empty data");
  if (max_components == 0) {
    throw std::invalid_argument("fit_best: max_components must be >= 1");
  }
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  BestFit best;
  best.ks_statistic = std::numeric_limits<double>::infinity();
  const auto consider = [&](DistributionPtr candidate, const std::string& family) {
    const double D = ks_d(sorted, *candidate);
    if (D < best.ks_statistic) {
      best.distribution = std::move(candidate);
      best.family = family;
      best.ks_statistic = D;
    }
  };

  consider(std::make_unique<ExponentialDistribution>(fit_exponential(data)), "exponential");
  for (std::size_t c = 1; c <= max_components; ++c) {
    consider(std::make_unique<PhaseTypeExponential>(fit_phase_exponential(data, c)),
             "phase_exponential");
    consider(std::make_unique<MultiStageGamma>(fit_multistage_gamma(data, c)),
             "multistage_gamma");
  }
  return best;
}

}  // namespace wlgen::dist
