#pragma once

#include <string>
#include <vector>

#include "dist/basic.h"
#include "dist/distribution.h"
#include "dist/multistage_gamma.h"
#include "dist/phase_exponential.h"

namespace wlgen::dist {

/// Arithmetic mean of `data` (throws std::invalid_argument when empty).
double sample_mean(const std::vector<double>& data);

/// Population variance of `data` (throws std::invalid_argument when empty).
double sample_variance(const std::vector<double>& data);

/// Result of 1-D k-means: centroids ascending, groups[i] holding the data
/// points assigned to centroids[i] (every group non-empty).
struct Clustering {
  std::vector<double> centroids;
  std::vector<std::vector<double>> groups;
};

/// Lloyd's algorithm on the line.  k is clamped to the number of distinct
/// values; throws std::invalid_argument when data is empty or k == 0.
///
/// This is the preprocessing step of the paper's mixture fitting: each
/// cluster of the measured sample becomes one phase/stage of the fitted
/// family.
Clustering kmeans_1d(const std::vector<double>& data, std::size_t k);

/// Moment-matched exponential: theta = mean(data).
ExponentialDistribution fit_exponential(const std::vector<double>& data);

/// Phase-type exponential with `phases` phases: k-means clusters the data,
/// then each cluster becomes a phase with weight = cluster fraction,
/// s = cluster minimum and theta = cluster mean - s (method of moments on
/// the shifted cluster).
PhaseTypeExponential fit_phase_exponential(const std::vector<double>& data, std::size_t phases);

/// Multi-stage gamma with `stages` stages: per cluster, s = minimum and
/// (alpha, theta) from the shifted cluster's mean/variance
/// (alpha = m^2/v, theta = v/m).
MultiStageGamma fit_multistage_gamma(const std::vector<double>& data, std::size_t stages);

/// Winner of a fit tournament across the supported families.
struct BestFit {
  DistributionPtr distribution;
  std::string family;          ///< "exponential", "phase_exponential", "multistage_gamma"
  double ks_statistic = 0.0;   ///< one-sample KS D of the winner against the data
};

/// Fits a plain exponential plus phase-type/gamma mixtures with
/// 1..max_components components and returns the family with the smallest
/// Kolmogorov-Smirnov D against the empirical CDF.
BestFit fit_best(const std::vector<double>& data, std::size_t max_components = 3);

}  // namespace wlgen::dist
