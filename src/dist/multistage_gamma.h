#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::dist {

/// One stage of the paper's multi-stage gamma: weight w, shape alpha,
/// scale theta, horizontal shift s.
struct GammaStage {
  double weight = 1.0;
  double alpha = 1.0;
  double theta = 1.0;
  double offset = 0.0;
};

/// Multi-stage gamma mixture — the second parametric family of the paper's
/// GDS (section 4.1.1, Figure 5.2):
///
///   f(x) = sum_i w_i * g(alpha_i, theta_i, x - s_i)
///   g(a, t, y) = y^(a-1) e^(-y/t) / (Gamma(a) t^a)   for y >= 0
///
/// Weights are normalised at construction; the per-stage log-normaliser
/// log Gamma(a) + a log t and the cumulative weights are cached so pdf() is
/// one exp per stage and stage selection in sample() is a branchless scan.
class MultiStageGamma : public Distribution {
 public:
  /// Throws std::invalid_argument when stages is empty, or any
  /// weight/alpha/theta <= 0.
  explicit MultiStageGamma(std::vector<GammaStage> stages);

  /// Normalised stages (weights sum to 1).
  const std::vector<GammaStage>& stages() const { return stages_; }

  /// Figure 5.2 panel (a): a single unshifted gamma g(1.4, 12.4, x).
  static MultiStageGamma paper_example_a();

  /// Figure 5.2 panel (b): f(x) = g(1.5, 25.4, x - 12).
  static MultiStageGamma paper_example_b();

  /// Figure 5.2 panel (c):
  /// f(x) = 0.7 g(1.4,12.4,x) + 0.2 g(1.5,12.4,x-23) + 0.1 g(1.5,12.3,x-41).
  static MultiStageGamma paper_example_c();

  double sample(util::RngStream& rng) const override;
  /// Batch kernel.  A gamma draw consumes the engine directly (interleaved
  /// with the uniform block refills behind the stage-selection draw), so
  /// the per-element draw order must be kept exactly; the batch win here is
  /// hoisting the virtual dispatch and mixture bookkeeping out of the
  /// caller's loop.  Bit-identical to n scalar sample() calls.
  void sample_n(util::RngStream& rng, double* out, std::size_t n) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double lower_bound() const override { return lower_; }
  double upper_bound() const override;
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  std::vector<GammaStage> stages_;
  std::vector<double> cum_weights_;  ///< cached cumulative weights (last == 1)
  std::vector<double> log_norm_;     ///< cached log Gamma(a) + a log theta
  std::vector<double> inv_theta_;    ///< cached 1/theta_i
  double mean_ = 0.0;
  double variance_ = 0.0;
  double lower_ = 0.0;
};

}  // namespace wlgen::dist
