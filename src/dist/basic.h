#pragma once

#include <string>

#include "dist/distribution.h"

namespace wlgen::dist {

/// Degenerate point mass at `value` — used for "constant think time" style
/// workload knobs (e.g. the paper's 0 / 5000 / 20000 µs user classes).
class ConstantDistribution : public Distribution {
 public:
  explicit ConstantDistribution(double value);

  double value() const { return value_; }

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  double lower_bound() const override { return value_; }
  double upper_bound() const override { return value_; }
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  double value_;
};

/// Continuous uniform on [lo, hi).
class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi);

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override { return (hi_ - lo_) * (hi_ - lo_) / 12.0; }
  double lower_bound() const override { return lo_; }
  double upper_bound() const override { return hi_; }
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  double lo_, hi_;
  double inv_span_;  ///< precomputed 1 / (hi - lo)
};

/// Shifted exponential: X = offset + Exp(theta), the single-phase special
/// case of the paper's phase-type family (eq. 5.1 with one phase).
///
/// Sampling is the branch-free inverse transform offset - theta*log1p(-u)
/// with -theta precomputed, so a draw is one uniform + one log.
class ExponentialDistribution : public Distribution {
 public:
  /// theta > 0 (mean of the unshifted part); offset shifts the support.
  explicit ExponentialDistribution(double theta, double offset = 0.0);

  double theta() const { return theta_; }
  double offset() const { return offset_; }

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return offset_ + theta_; }
  double variance() const override { return theta_ * theta_; }
  double lower_bound() const override { return offset_; }
  double upper_bound() const override;
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  double theta_, offset_;
  double neg_theta_;  ///< precomputed -theta for the inverse transform
  double inv_theta_;  ///< precomputed 1 / theta for pdf/cdf
};

}  // namespace wlgen::dist
