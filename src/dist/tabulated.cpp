#include "dist/tabulated.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "dist/format.h"
#include "util/rng.h"

namespace wlgen::dist {

namespace {

void validate_grid(const std::vector<double>& xs, const std::vector<double>& vs,
                   const char* who) {
  if (xs.size() != vs.size()) {
    throw std::invalid_argument(std::string(who) + ": xs and values must have equal length");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument(std::string(who) + ": at least two knots required");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(vs[i])) {
      throw std::invalid_argument(std::string(who) + ": knots must be finite");
    }
    if (i > 0 && !(xs[i] > xs[i - 1])) {
      throw std::invalid_argument(std::string(who) + ": xs must be strictly increasing");
    }
  }
}

/// Locates the segment [xs[i], xs[i+1]] containing x (x within the grid).
std::size_t segment_of(const std::vector<double>& xs, double x) {
  std::size_t hi = static_cast<std::size_t>(std::upper_bound(xs.begin(), xs.end(), x) -
                                            xs.begin());
  if (hi >= xs.size()) hi = xs.size() - 1;
  if (hi == 0) hi = 1;
  return hi - 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// TabulatedPdf
// ---------------------------------------------------------------------------

TabulatedPdf::TabulatedPdf(std::vector<double> xs, std::vector<double> fs)
    : xs_(std::move(xs)), fs_(std::move(fs)) {
  validate_grid(xs_, fs_, "TabulatedPdf");
  for (double f : fs_) {
    if (f < 0.0) throw std::invalid_argument("TabulatedPdf: density values must be >= 0");
  }
  double mass = 0.0;
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    mass += 0.5 * (fs_[i] + fs_[i + 1]) * (xs_[i + 1] - xs_[i]);
  }
  if (!(mass > 0.0)) {
    throw std::invalid_argument("TabulatedPdf: total mass must be positive");
  }
  for (double& f : fs_) f /= mass;

  cum_.resize(xs_.size());
  cum_[0] = 0.0;
  double m1 = 0.0, m2 = 0.0;
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    const double x0 = xs_[i], x1 = xs_[i + 1];
    const double h = x1 - x0;
    cum_[i + 1] = cum_[i] + 0.5 * (fs_[i] + fs_[i + 1]) * h;
    // f(x) = c0 + c1 x on the segment; exact polynomial moments.
    const double c1 = (fs_[i + 1] - fs_[i]) / h;
    const double c0 = fs_[i] - c1 * x0;
    const double d2 = x1 * x1 - x0 * x0;
    const double d3 = x1 * x1 * x1 - x0 * x0 * x0;
    const double d4 = x1 * x1 * x1 * x1 - x0 * x0 * x0 * x0;
    m1 += c0 * d2 / 2.0 + c1 * d3 / 3.0;
    m2 += c0 * d3 / 3.0 + c1 * d4 / 4.0;
  }
  cum_.back() = 1.0;
  mean_ = m1;
  variance_ = std::max(0.0, m2 - m1 * m1);
}

double TabulatedPdf::sample(util::RngStream& rng) const { return quantile(rng.uniform01()); }

double TabulatedPdf::pdf(double x) const {
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const std::size_t i = segment_of(xs_, x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  return fs_[i] + (fs_[i + 1] - fs_[i]) * t;
}

double TabulatedPdf::cdf(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) return 1.0;
  const std::size_t i = segment_of(xs_, x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = x - xs_[i];
  const double c1 = (fs_[i + 1] - fs_[i]) / h;
  return std::min(1.0, cum_[i] + fs_[i] * t + 0.5 * c1 * t * t);
}

double TabulatedPdf::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("TabulatedPdf::quantile: p outside [0, 1]");
  }
  if (p <= 0.0) return xs_.front();
  if (p >= 1.0) return xs_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), p);
  std::size_t hi = static_cast<std::size_t>(it - cum_.begin());
  if (hi >= cum_.size()) hi = cum_.size() - 1;
  const std::size_t lo = hi - 1;
  const double seg_mass = cum_[hi] - cum_[lo];
  if (seg_mass <= 0.0) return xs_[lo];
  const double h = xs_[hi] - xs_[lo];
  const double target = p - cum_[lo];
  const double f0 = fs_[lo];
  const double c1 = (fs_[hi] - fs_[lo]) / h;
  // Stable quadratic root of 0.5 c1 t^2 + f0 t = target (exact for c1 -> 0).
  const double disc = std::sqrt(std::max(0.0, f0 * f0 + 2.0 * c1 * target));
  const double denom = f0 + disc;
  const double t = denom > 0.0 ? 2.0 * target / denom : 0.0;
  return xs_[lo] + std::clamp(t, 0.0, h);
}

std::string TabulatedPdf::describe() const {
  return "pdf_table(" + std::to_string(xs_.size()) + " knots on [" + detail::format_value(xs_.front()) +
         ", " + detail::format_value(xs_.back()) + "])";
}

DistributionPtr TabulatedPdf::clone() const { return std::make_unique<TabulatedPdf>(*this); }

// ---------------------------------------------------------------------------
// TabulatedCdf
// ---------------------------------------------------------------------------

TabulatedCdf::TabulatedCdf(std::vector<double> xs, std::vector<double> Fs)
    : xs_(std::move(xs)), fs_(std::move(Fs)) {
  validate_grid(xs_, fs_, "TabulatedCdf");
  for (std::size_t i = 1; i < fs_.size(); ++i) {
    if (fs_[i] < fs_[i - 1]) {
      throw std::invalid_argument("TabulatedCdf: CDF values must be non-decreasing");
    }
  }
  const double f0 = fs_.front();
  const double span = fs_.back() - f0;
  if (!(span > 0.0)) {
    throw std::invalid_argument("TabulatedCdf: CDF must increase from front to back");
  }
  for (double& f : fs_) f = (f - f0) / span;
  fs_.front() = 0.0;
  fs_.back() = 1.0;

  double m1 = 0.0, m2 = 0.0;
  for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
    const double x0 = xs_[i], x1 = xs_[i + 1];
    const double density = (fs_[i + 1] - fs_[i]) / (x1 - x0);
    m1 += density * (x1 * x1 - x0 * x0) / 2.0;
    m2 += density * (x1 * x1 * x1 - x0 * x0 * x0) / 3.0;
  }
  mean_ = m1;
  variance_ = std::max(0.0, m2 - m1 * m1);
}

double TabulatedCdf::sample(util::RngStream& rng) const { return quantile(rng.uniform01()); }

double TabulatedCdf::pdf(double x) const {
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const std::size_t i = segment_of(xs_, x);
  return (fs_[i + 1] - fs_[i]) / (xs_[i + 1] - xs_[i]);
}

double TabulatedCdf::cdf(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) return 1.0;
  const std::size_t i = segment_of(xs_, x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return fs_[i] + (fs_[i + 1] - fs_[i]) * t;
}

double TabulatedCdf::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("TabulatedCdf::quantile: p outside [0, 1]");
  }
  if (p >= 1.0) return xs_.back();
  const auto it = std::upper_bound(fs_.begin(), fs_.end(), p);
  std::size_t hi = static_cast<std::size_t>(it - fs_.begin());
  if (hi >= fs_.size()) hi = fs_.size() - 1;
  const std::size_t lo = hi - 1;
  const double span = fs_[hi] - fs_[lo];
  if (span <= 0.0) return xs_[lo];
  return xs_[lo] + (xs_[hi] - xs_[lo]) * (p - fs_[lo]) / span;
}

std::string TabulatedCdf::describe() const {
  return "cdf_table(" + std::to_string(xs_.size()) + " knots on [" + detail::format_value(xs_.front()) +
         ", " + detail::format_value(xs_.back()) + "])";
}

DistributionPtr TabulatedCdf::clone() const { return std::make_unique<TabulatedCdf>(*this); }

// ---------------------------------------------------------------------------
// EmpiricalDistribution
// ---------------------------------------------------------------------------

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> data)
    : sorted_(std::move(data)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalDistribution: data must be non-empty");
  }
  for (double v : sorted_) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("EmpiricalDistribution: data must be finite");
    }
  }
  std::sort(sorted_.begin(), sorted_.end());
  const double n = static_cast<double>(sorted_.size());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) / n;
  double ss = 0.0;
  for (double v : sorted_) ss += (v - mean_) * (v - mean_);
  variance_ = ss / n;
  fd_window_ = (sorted_.back() - sorted_.front()) / 200.0;
}

double EmpiricalDistribution::sample(util::RngStream& rng) const {
  return quantile(rng.uniform01());
}

double EmpiricalDistribution::pdf(double x) const {
  if (fd_window_ <= 0.0) return 0.0;  // degenerate (single point / all equal)
  const double lo = std::max(x - fd_window_, sorted_.front());
  const double hi = std::min(x + fd_window_, sorted_.back());
  if (hi <= lo) return 0.0;
  return (cdf(hi) - cdf(lo)) / (hi - lo);
}

double EmpiricalDistribution::cdf(double x) const {
  if (x < sorted_.front()) return 0.0;
  if (x >= sorted_.back()) return 1.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - sorted_.begin());
  const std::size_t lo = hi - 1;
  const double pos =
      static_cast<double>(lo) + (x - sorted_[lo]) / (sorted_[hi] - sorted_[lo]);
  return pos / static_cast<double>(sorted_.size() - 1);
}

double EmpiricalDistribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("EmpiricalDistribution::quantile: p outside [0, 1]");
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  std::size_t i = static_cast<std::size_t>(pos);
  if (i >= sorted_.size() - 1) i = sorted_.size() - 2;
  const double frac = pos - static_cast<double>(i);
  return sorted_[i] + frac * (sorted_[i + 1] - sorted_[i]);
}

std::string EmpiricalDistribution::describe() const {
  return "empirical(n=" + std::to_string(sorted_.size()) + ", mean=" + detail::format_value(mean_) + ")";
}

DistributionPtr EmpiricalDistribution::clone() const {
  return std::make_unique<EmpiricalDistribution>(*this);
}

}  // namespace wlgen::dist
