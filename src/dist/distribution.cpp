#include "dist/distribution.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wlgen::dist {

double Distribution::stddev() const { return std::sqrt(variance()); }

void Distribution::sample_n(util::RngStream& rng, double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = sample(rng);
}

double Distribution::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("Distribution::quantile: p outside [0, 1]");
  }
  const double lo_bound = lower_bound();
  const double hi_bound = upper_bound();
  if (p == 0.0) return lo_bound;
  if (p == 1.0) return hi_bound;

  // Bracket [lo, hi] with cdf(lo) <= p <= cdf(hi).
  double lo = lo_bound;
  if (!std::isfinite(lo)) {
    lo = mean() - 1.0;
    double step = std::max(1.0, stddev());
    while (cdf(lo) > p && std::isfinite(lo)) {
      lo -= step;
      step *= 2.0;
    }
  }
  double hi;
  if (std::isfinite(hi_bound)) {
    hi = hi_bound;
  } else {
    double step = std::max(1.0, stddev());
    hi = std::max(lo + step, mean());
    while (cdf(hi) < p) {
      hi += step;
      step *= 2.0;
      if (!std::isfinite(hi)) return std::numeric_limits<double>::infinity();
    }
  }

  for (int i = 0; i < 200 && hi - lo > 1e-13 * (1.0 + std::fabs(lo) + std::fabs(hi)); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace wlgen::dist
