#pragma once

#include <sstream>
#include <string>

namespace wlgen::dist::detail {

/// Shared number formatting for describe() strings (12 significant digits,
/// matching core::serialize_distribution's precision).
inline std::string format_value(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace wlgen::dist::detail
