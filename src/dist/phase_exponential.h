#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::dist {

/// One phase of the paper's phase-type exponential (eq. 5.1):
/// weight w, mean theta, horizontal shift s.
struct ExpPhase {
  double weight = 1.0;
  double theta = 1.0;
  double offset = 0.0;
};

/// Phase-type exponential mixture — the first of the two parametric families
/// the paper's GDS fits to measured data (section 4.1.1, Figure 5.1):
///
///   f(x) = sum_i w_i * (1/theta_i) * exp(-(x - s_i)/theta_i)   for x >= s_i
///
/// Weights are normalised at construction.  Sampling draws ONE uniform: the
/// integer part of its position in the cached cumulative-weight table picks
/// the phase via a branchless scan, and the within-phase remainder is
/// rescaled and pushed through the shifted-exponential inverse transform —
/// no per-call partial-sum scan, no extra RNG draws.
class PhaseTypeExponential : public Distribution {
 public:
  /// Throws std::invalid_argument when phases is empty, any theta <= 0 or
  /// any weight <= 0.
  explicit PhaseTypeExponential(std::vector<ExpPhase> phases);

  /// Normalised phases (weights sum to 1).
  const std::vector<ExpPhase>& phases() const { return phases_; }

  /// Figure 5.1 panel (a): f(x) = exp(22.1, x) — a single phase.
  static PhaseTypeExponential paper_example_a();

  /// Figure 5.1 panel (b): two phases, the second shifted to x = 18.
  static PhaseTypeExponential paper_example_b();

  /// Figure 5.1 panel (c):
  /// f(x) = 0.4 exp(12.7, x) + 0.3 exp(18.2, x-18) + 0.3 exp(15, x-40).
  static PhaseTypeExponential paper_example_c();

  double sample(util::RngStream& rng) const override;
  /// Batch kernel: one fill_uniform01 for the whole block, then the phase
  /// scan + shifted-exponential inverse transform resolved in a tight loop
  /// — bit-identical to n scalar sample() calls.
  void sample_n(util::RngStream& rng, double* out, std::size_t n) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  double lower_bound() const override { return lower_; }
  double upper_bound() const override;
  std::string describe() const override;
  DistributionPtr clone() const override;

 private:
  std::vector<ExpPhase> phases_;
  std::vector<double> cum_weights_;  ///< cached cumulative weights (last == 1)
  std::vector<double> inv_theta_;    ///< cached 1/theta_i for pdf/cdf
  double mean_ = 0.0;
  double variance_ = 0.0;
  double lower_ = 0.0;
};

}  // namespace wlgen::dist
