#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fsmodel/model.h"
#include "sim/simulation.h"

namespace wlgen::traffic {

/// Server slowdown: every stage the model plans inside [begin_us, end_us)
/// has its service time scaled by `factor` (via
/// fsmodel::FileSystemModel::set_service_scale).
struct SlowdownWindow {
  double begin_us = 0.0;
  double end_us = 0.0;
  double factor = 1.0;
};

/// User-population churn: inside [begin_us, end_us) a deterministic
/// `fraction` of users is away; their session starts are postponed to the
/// window end.  Membership is a pure hash of (seed, user, window index), so
/// it is identical for every shard/thread partition.
struct ChurnWindow {
  double begin_us = 0.0;
  double end_us = 0.0;
  double fraction = 0.0;
};

/// The full perturbation schedule for one run: slowdown windows, cache-flush
/// instants and churn windows, all on the simulated timeline.
struct FaultPlan {
  std::vector<SlowdownWindow> slowdowns;
  std::vector<double> flush_times_us;
  std::vector<ChurnWindow> churns;

  bool any() const {
    return !slowdowns.empty() || !flush_times_us.empty() || !churns.empty();
  }

  /// Throws std::invalid_argument on inverted or overlapping slowdown
  /// windows, non-positive factors, negative flush times, or churn
  /// fractions outside [0, 1].
  void validate() const;

  /// Identity string folded into runner fingerprints and spill tags
  /// ("" when the plan is empty).
  std::string tag() const;
};

/// Posts the plan's slowdown and flush events on the DES timeline against
/// `model`.  Call after sim.reset() and before the workload runs; churn is
/// consumed by the user simulator, not scheduled here.  Events at equal
/// timestamps fire in scheduling order (the Simulation contract), so the
/// posting order here is part of the determinism contract.
void install_faults(sim::Simulation& sim, fsmodel::FileSystemModel& model,
                    const FaultPlan& plan);

/// True when `user` sits out churn window `window_index`: a pure function
/// of the arguments (splitmix64 mix), identical across shards and threads.
bool churned_out(std::uint64_t seed, std::size_t user, std::size_t window_index,
                 double fraction);

/// Postpones a session start at absolute time `t_us` past every churn
/// window that covers it and excludes `user`; returns the adjusted time
/// (>= t_us).  Draws nothing from any RNG stream.
double churn_adjusted(const std::vector<ChurnWindow>& churns, std::uint64_t seed,
                      std::size_t user, double t_us);

}  // namespace wlgen::traffic
