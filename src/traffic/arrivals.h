#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace wlgen::traffic {

/// One knot of a piecewise-linear intensity profile: at simulated time
/// `t_us` the base arrival rate is scaled by `multiplier`.
struct ProfilePoint {
  double t_us = 0.0;
  double multiplier = 1.0;
};

/// Time-varying intensity multiplier applied to a base arrival rate —
/// the "diurnal load" half of ROADMAP's open-system item.  Composes a
/// piecewise-linear diurnal shape (the knots) with a multiplicative
/// flash-crowd step (rate jumps by `flash_magnitude` for
/// `flash_duration_us` starting at `flash_at_us`).  A default-constructed
/// profile is the constant 1 and generation takes the unthinned fast path.
class IntensityProfile {
 public:
  /// Piecewise-linear knots, strictly increasing in t; the multiplier is
  /// held flat before the first and after the last knot.  Empty = 1.
  std::vector<ProfilePoint> points;

  double flash_at_us = 0.0;
  double flash_duration_us = 0.0;
  double flash_magnitude = 1.0;  ///< 1 = no flash crowd

  /// True when the profile is identically 1 (no thinning needed).
  bool constant() const;

  /// Multiplier at simulated time `t_us` (>= 0).
  double multiplier(double t_us) const;

  /// Supremum of multiplier() — the Lewis-Shedler thinning bound.
  double peak() const;

  /// Exact integral of multiplier() over [t0_us, t1_us] (piecewise
  /// analytic; used by the statistical tests to predict arrival counts).
  double integral(double t0_us, double t1_us) const;

  /// Throws std::invalid_argument on unsorted knots, negative multipliers,
  /// an all-zero profile, or a non-positive flash magnitude.
  void validate() const;

  /// Identity string for run fingerprints ("" when constant).
  std::string tag() const;
};

/// Which stochastic process generates session arrivals.
enum class ArrivalKind {
  poisson,  ///< homogeneous/inhomogeneous Poisson (exponential interarrivals)
  mmpp,     ///< 2-state Markov-modulated Poisson (bursty)
  heavy,    ///< heavy-tailed Pareto interarrivals (self-similar load)
};

const char* to_string(ArrivalKind kind);

/// Open-loop session arrival process: `sessions` login sessions arrive at
/// base rate `rate_per_sec`, modulated by `profile`, and are dealt to users
/// by an independent uniform split (which preserves the Poisson property
/// per user).  Replaces the closed-loop inter-session gap when configured.
struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::poisson;
  double rate_per_sec = 1.0;  ///< base session arrival rate (whole system)
  std::size_t sessions = 1;   ///< total sessions to generate
  IntensityProfile profile;

  // MMPP parameters: the burst state multiplies the base rate by
  // `burst_ratio`; state holding times are exponential with the given means.
  double burst_ratio = 8.0;
  double mean_burst_us = 2e6;
  double mean_idle_us = 8e6;

  // Heavy-tailed parameters: Pareto shape (> 1 so the mean interarrival
  // exists and matches 1 / rate_per_sec).
  double pareto_alpha = 1.5;

  /// Throws std::invalid_argument on a non-positive rate, zero sessions,
  /// bad MMPP/Pareto parameters, or an invalid profile.
  void validate() const;

  /// Identity string folded into runner fingerprints and spill tags.
  std::string tag() const;
};

/// Pareto distribution (shape `alpha`, scale `xm`): the heavy-tailed
/// interarrival family, implemented on the dist:: engine so the statistical
/// tests can KS-check samples against its exact CDF.
class ParetoDistribution final : public dist::Distribution {
 public:
  ParetoDistribution(double alpha, double xm);

  double sample(util::RngStream& rng) const override;
  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  double lower_bound() const override { return xm_; }
  double upper_bound() const override;
  std::string describe() const override;
  dist::DistributionPtr clone() const override;

  double alpha() const { return alpha_; }
  double xm() const { return xm_; }

 private:
  double alpha_;
  double xm_;
};

/// Generates the global arrival timeline (µs, ascending): a pure function
/// of (config, seed), independent of shard/thread count.  The RNG stream is
/// labelled "traffic/arrivals" so it never collides with user streams.
std::vector<double> generate_arrivals(const ArrivalConfig& config, std::uint64_t seed);

/// Generates and deals the timeline to `num_users` users (uniform split via
/// the "traffic/assign" stream).  Element u holds user u's session start
/// times, ascending — the value core::UsimConfig::arrival_times_us carries.
std::vector<std::vector<double>> assign_arrivals(const ArrivalConfig& config,
                                                 std::size_t num_users, std::uint64_t seed);

}  // namespace wlgen::traffic
