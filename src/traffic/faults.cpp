#include "traffic/faults.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/rng.h"

namespace wlgen::traffic {

namespace {

std::string fmt(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

}  // namespace

void FaultPlan::validate() const {
  std::vector<SlowdownWindow> sorted = slowdowns;
  std::sort(sorted.begin(), sorted.end(),
            [](const SlowdownWindow& a, const SlowdownWindow& b) { return a.begin_us < b.begin_us; });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const SlowdownWindow& w = sorted[i];
    if (w.begin_us < 0.0) {
      throw std::invalid_argument("FaultPlan: slowdown window begins before t=0");
    }
    if (!(w.end_us > w.begin_us)) {
      throw std::invalid_argument("FaultPlan: slowdown window is inverted or empty");
    }
    if (!(w.factor > 0.0)) {
      throw std::invalid_argument("FaultPlan: slowdown factor must be > 0");
    }
    if (i > 0 && w.begin_us < sorted[i - 1].end_us) {
      throw std::invalid_argument("FaultPlan: slowdown windows overlap");
    }
  }
  for (const double t : flush_times_us) {
    if (t < 0.0) throw std::invalid_argument("FaultPlan: flush time before t=0");
  }
  for (const ChurnWindow& w : churns) {
    if (w.begin_us < 0.0) {
      throw std::invalid_argument("FaultPlan: churn window begins before t=0");
    }
    if (!(w.end_us > w.begin_us)) {
      throw std::invalid_argument("FaultPlan: churn window is inverted or empty");
    }
    if (w.fraction < 0.0 || w.fraction > 1.0) {
      throw std::invalid_argument("FaultPlan: churn fraction must be in [0, 1]");
    }
  }
}

std::string FaultPlan::tag() const {
  if (!any()) return "";
  std::string out = "faults=";
  for (std::size_t i = 0; i < slowdowns.size(); ++i) {
    out += (i == 0 ? "slow:" : "|");
    out += fmt(slowdowns[i].begin_us) + '-' + fmt(slowdowns[i].end_us) + 'x' +
           fmt(slowdowns[i].factor);
  }
  if (!flush_times_us.empty()) {
    if (!slowdowns.empty()) out += ' ';
    out += "flush:";
    for (std::size_t i = 0; i < flush_times_us.size(); ++i) {
      if (i > 0) out += '|';
      out += fmt(flush_times_us[i]);
    }
  }
  if (!churns.empty()) {
    if (!slowdowns.empty() || !flush_times_us.empty()) out += ' ';
    out += "churn:";
    for (std::size_t i = 0; i < churns.size(); ++i) {
      if (i > 0) out += '|';
      out += fmt(churns[i].begin_us) + '-' + fmt(churns[i].end_us) + '@' +
             fmt(churns[i].fraction);
    }
  }
  return out;
}

void install_faults(sim::Simulation& sim, fsmodel::FileSystemModel& model,
                    const FaultPlan& plan) {
  for (const SlowdownWindow& w : plan.slowdowns) {
    const double factor = w.factor;
    sim.schedule_at(w.begin_us, [&model, factor]() { model.set_service_scale(factor); });
    sim.schedule_at(w.end_us, [&model]() { model.set_service_scale(1.0); });
  }
  for (const double t : plan.flush_times_us) {
    sim.schedule_at(t, [&model]() { model.flush_caches(); });
  }
}

bool churned_out(std::uint64_t seed, std::size_t user, std::size_t window_index,
                 double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  std::uint64_t state = seed;
  state ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(user) + 1);
  state ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(window_index) + 1);
  const std::uint64_t mixed = util::splitmix64(state);
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < fraction;
}

double churn_adjusted(const std::vector<ChurnWindow>& churns, std::uint64_t seed,
                      std::size_t user, double t_us) {
  double adjusted = t_us;
  bool moved = true;
  while (moved) {  // overlapping windows can cascade; iterate to a fixed point
    moved = false;
    for (std::size_t i = 0; i < churns.size(); ++i) {
      const ChurnWindow& w = churns[i];
      if (adjusted >= w.begin_us && adjusted < w.end_us &&
          churned_out(seed, user, i, w.fraction)) {
        adjusted = w.end_us;
        moved = true;
      }
    }
  }
  return adjusted;
}

}  // namespace wlgen::traffic
