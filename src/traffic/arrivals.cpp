#include "traffic/arrivals.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace wlgen::traffic {

namespace {

std::string fmt(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

/// Linear part of the profile (knots only), held flat outside the knot range.
double linear_multiplier(const std::vector<ProfilePoint>& points, double t) {
  if (points.empty()) return 1.0;
  if (t <= points.front().t_us) return points.front().multiplier;
  if (t >= points.back().t_us) return points.back().multiplier;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (t <= points[i].t_us) {
      const ProfilePoint& a = points[i - 1];
      const ProfilePoint& b = points[i];
      const double span = b.t_us - a.t_us;
      const double frac = span > 0.0 ? (t - a.t_us) / span : 1.0;
      return a.multiplier + frac * (b.multiplier - a.multiplier);
    }
  }
  return points.back().multiplier;
}

/// Exact integral of the linear part over [t0, t1] (t0 <= t1): trapezoid on
/// every sub-segment between consecutive breakpoints.
double linear_integral(const std::vector<ProfilePoint>& points, double t0, double t1) {
  if (points.empty()) return t1 - t0;
  std::vector<double> cuts{t0, t1};
  for (const ProfilePoint& p : points) {
    if (p.t_us > t0 && p.t_us < t1) cuts.push_back(p.t_us);
  }
  std::sort(cuts.begin(), cuts.end());
  double total = 0.0;
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    const double a = cuts[i - 1];
    const double b = cuts[i];
    total += 0.5 * (linear_multiplier(points, a) + linear_multiplier(points, b)) * (b - a);
  }
  return total;
}

}  // namespace

bool IntensityProfile::constant() const {
  if (flash_magnitude != 1.0 && flash_duration_us > 0.0) return false;
  for (const ProfilePoint& p : points) {
    if (p.multiplier != 1.0) return false;
  }
  return true;
}

double IntensityProfile::multiplier(double t_us) const {
  double m = linear_multiplier(points, t_us);
  if (flash_duration_us > 0.0 && t_us >= flash_at_us && t_us < flash_at_us + flash_duration_us) {
    m *= flash_magnitude;
  }
  return m;
}

double IntensityProfile::peak() const {
  // The linear part is held flat outside the knot range, so its supremum is
  // the largest knot multiplier (1 when there are no knots).
  double linear_peak = points.empty() ? 1.0 : points.front().multiplier;
  for (const ProfilePoint& p : points) linear_peak = std::max(linear_peak, p.multiplier);
  double m = linear_peak;
  if (flash_duration_us > 0.0 && flash_magnitude > 1.0) m *= flash_magnitude;
  return m;
}

double IntensityProfile::integral(double t0_us, double t1_us) const {
  if (t1_us <= t0_us) return 0.0;
  double total = linear_integral(points, t0_us, t1_us);
  if (flash_duration_us > 0.0 && flash_magnitude != 1.0) {
    // Add (magnitude - 1) x the linear integral over the flash overlap: the
    // flash multiplies the linear shape inside its window.
    const double lo = std::max(t0_us, flash_at_us);
    const double hi = std::min(t1_us, flash_at_us + flash_duration_us);
    if (hi > lo) total += (flash_magnitude - 1.0) * linear_integral(points, lo, hi);
  }
  return total;
}

void IntensityProfile::validate() const {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].multiplier < 0.0) {
      throw std::invalid_argument("IntensityProfile: knot multipliers must be >= 0");
    }
    if (i > 0 && points[i].t_us <= points[i - 1].t_us) {
      throw std::invalid_argument("IntensityProfile: knot times must be strictly increasing");
    }
  }
  if (flash_magnitude <= 0.0) {
    throw std::invalid_argument("IntensityProfile: flash magnitude must be > 0");
  }
  if (flash_duration_us < 0.0) {
    throw std::invalid_argument("IntensityProfile: flash duration must be >= 0");
  }
  if (peak() <= 0.0) {
    throw std::invalid_argument("IntensityProfile: profile is zero everywhere");
  }
}

std::string IntensityProfile::tag() const {
  if (constant()) return "";
  std::string out;
  if (!points.empty()) {
    out += " diurnal=";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out += '|';
      out += fmt(points[i].t_us) + ':' + fmt(points[i].multiplier);
    }
  }
  if (flash_duration_us > 0.0 && flash_magnitude != 1.0) {
    out += " flash=" + fmt(flash_at_us) + '+' + fmt(flash_duration_us) + 'x' +
           fmt(flash_magnitude);
  }
  return out;
}

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::poisson: return "poisson";
    case ArrivalKind::mmpp: return "mmpp";
    case ArrivalKind::heavy: return "heavy";
  }
  return "unknown";
}

void ArrivalConfig::validate() const {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: arrival rate must be > 0");
  }
  if (sessions == 0) {
    throw std::invalid_argument("ArrivalConfig: need >= 1 session");
  }
  if (kind == ArrivalKind::mmpp) {
    if (!(burst_ratio > 0.0)) {
      throw std::invalid_argument("ArrivalConfig: MMPP burst_ratio must be > 0");
    }
    if (!(mean_burst_us > 0.0) || !(mean_idle_us > 0.0)) {
      throw std::invalid_argument("ArrivalConfig: MMPP state holding times must be > 0");
    }
  }
  if (kind == ArrivalKind::heavy && !(pareto_alpha > 1.0)) {
    throw std::invalid_argument(
        "ArrivalConfig: Pareto alpha must be > 1 so the mean interarrival exists");
  }
  profile.validate();
}

std::string ArrivalConfig::tag() const {
  std::string out = "arrivals=";
  out += to_string(kind);
  out += " rate=" + fmt(rate_per_sec);
  out += " sessions=" + std::to_string(sessions);
  if (kind == ArrivalKind::mmpp) {
    out += " burst=" + fmt(burst_ratio) + '/' + fmt(mean_burst_us) + '/' + fmt(mean_idle_us);
  }
  if (kind == ArrivalKind::heavy) out += " alpha=" + fmt(pareto_alpha);
  out += profile.tag();
  return out;
}

ParetoDistribution::ParetoDistribution(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  if (!(alpha > 0.0)) throw std::invalid_argument("ParetoDistribution: alpha must be > 0");
  if (!(xm > 0.0)) throw std::invalid_argument("ParetoDistribution: xm must be > 0");
}

double ParetoDistribution::sample(util::RngStream& rng) const {
  return quantile(rng.uniform01());
}

double ParetoDistribution::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double ParetoDistribution::cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double ParetoDistribution::quantile(double p) const {
  if (p <= 0.0) return xm_;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double ParetoDistribution::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDistribution::variance() const {
  if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
  const double m = xm_ / (alpha_ - 1.0);
  return alpha_ * m * m / (alpha_ - 2.0);
}

double ParetoDistribution::upper_bound() const {
  return std::numeric_limits<double>::infinity();
}

std::string ParetoDistribution::describe() const {
  return "pareto(alpha=" + fmt(alpha_) + ", xm=" + fmt(xm_) + ")";
}

dist::DistributionPtr ParetoDistribution::clone() const {
  return std::make_unique<ParetoDistribution>(alpha_, xm_);
}

std::vector<double> generate_arrivals(const ArrivalConfig& config, std::uint64_t seed) {
  config.validate();
  util::RngStream rng(seed, "traffic/arrivals");
  std::vector<double> out;
  out.reserve(config.sessions);

  const double mean_us = 1e6 / config.rate_per_sec;  // base mean interarrival
  const double peak = config.profile.peak();
  const bool flat = config.profile.constant();
  double t = 0.0;

  switch (config.kind) {
    case ArrivalKind::poisson: {
      // Lewis-Shedler thinning: candidates at the peak rate, each kept with
      // probability multiplier(t) / peak.  A constant profile degenerates to
      // the plain homogeneous process without the acceptance draw.
      while (out.size() < config.sessions) {
        t += rng.exponential(mean_us / peak);
        if (flat || rng.uniform01() * peak <= config.profile.multiplier(t)) out.push_back(t);
      }
      break;
    }
    case ArrivalKind::mmpp: {
      // 2-state Markov-modulated Poisson: idle at the base rate, burst at
      // burst_ratio x base.  Candidates run at the joint supremum
      // (max state multiplier x profile peak); the acceptance test folds
      // the current state and the intensity profile in one draw.  The state
      // trajectory advances lazily but independently of acceptance, so the
      // thinning stays exact.
      const double cap = std::max(config.burst_ratio, 1.0) * peak;
      bool burst = false;
      double next_switch = rng.exponential(config.mean_idle_us);
      while (out.size() < config.sessions) {
        t += rng.exponential(mean_us / cap);
        while (t >= next_switch) {
          burst = !burst;
          next_switch += rng.exponential(burst ? config.mean_burst_us : config.mean_idle_us);
        }
        const double state_mult = burst ? config.burst_ratio : 1.0;
        if (rng.uniform01() * cap <= state_mult * config.profile.multiplier(t)) out.push_back(t);
      }
      break;
    }
    case ArrivalKind::heavy: {
      // Renewal process with Pareto interarrivals whose mean matches the
      // base rate; the profile modulates by inverse-scaling each gap (a
      // renewal process has no thinning identity to exploit).
      const double xm = mean_us * (config.pareto_alpha - 1.0) / config.pareto_alpha;
      const ParetoDistribution pareto(config.pareto_alpha, xm);
      while (out.size() < config.sessions) {
        const double gap = pareto.sample(rng);
        const double local = std::max(config.profile.multiplier(t), 1e-12);
        t += gap / local;
        out.push_back(t);
      }
      break;
    }
  }
  return out;
}

std::vector<std::vector<double>> assign_arrivals(const ArrivalConfig& config,
                                                 std::size_t num_users, std::uint64_t seed) {
  if (num_users == 0) throw std::invalid_argument("assign_arrivals: need >= 1 user");
  const std::vector<double> times = generate_arrivals(config, seed);
  std::vector<std::vector<double>> per_user(num_users);
  util::RngStream pick(seed, "traffic/assign");
  for (const double t : times) {
    const auto user = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(num_users) - 1));
    per_user[user].push_back(t);
  }
  return per_user;
}

}  // namespace wlgen::traffic
