#pragma once

#include <optional>
#include <string>

#include "traffic/arrivals.h"
#include "traffic/faults.h"

namespace wlgen::traffic {

/// Everything the open-system traffic engine adds to a run: an optional
/// open-loop arrival process and a (possibly empty) fault plan.  Carried by
/// runner configs and scenario specs; a default-constructed TrafficConfig
/// is inert and leaves every closed-loop code path byte-identical.
struct TrafficConfig {
  std::optional<ArrivalConfig> arrivals;
  FaultPlan faults;

  bool any() const { return arrivals.has_value() || faults.any(); }

  /// Throws std::invalid_argument on an invalid arrival config or fault
  /// plan; a default config validates trivially.
  void validate() const {
    if (arrivals) arrivals->validate();
    faults.validate();
  }

  /// Identity string for runner fingerprints and spill config tags ("" when
  /// inert).  Any change to the traffic setup must change this string — it
  /// is what makes checkpoint/resume reject a mismatched traffic config.
  std::string tag() const {
    if (!any()) return "";
    std::string out;
    if (arrivals) out += arrivals->tag();
    const std::string faults_tag = faults.tag();
    if (!faults_tag.empty()) {
      if (!out.empty()) out += ' ';
      out += faults_tag;
    }
    return out;
  }
};

}  // namespace wlgen::traffic
