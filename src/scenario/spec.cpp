#include "scenario/spec.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/presets.h"
#include "core/spec.h"
#include "util/strings.h"
#include "util/svg.h"

namespace wlgen::scenario {

namespace {

[[noreturn]] void fail(const util::Config& config, const std::string& key,
                       const std::string& message) {
  throw std::invalid_argument(config.origin() + ":" + std::to_string(config.line_of(key)) +
                              ": key '" + key + "' " + message);
}

RunMode parse_mode(const util::Config& config) {
  const std::string mode = config.get_string("scenario.mode", "contended");
  if (mode == "sharded") return RunMode::sharded;
  if (mode == "contended") return RunMode::contended;
  if (mode == "replay") return RunMode::replay;
  fail(config, "scenario.mode",
       "expects sharded | contended | replay, got '" + mode + "'");
}

core::AccessPattern parse_pattern(const util::Config& config) {
  const std::string pattern = config.get_string("workload.pattern", "seq");
  if (pattern == "seq") return core::AccessPattern::sequential;
  if (pattern == "random") return core::AccessPattern::uniform_random;
  if (pattern == "zipf") return core::AccessPattern::zipf_block;
  fail(config, "workload.pattern", "expects seq | random | zipf, got '" + pattern + "'");
}

/// Keys that are only meaningful under one mode: naming one under another
/// mode is almost certainly a mistaken scenario, so it fails loudly.
const std::map<std::string, RunMode>& mode_scoped_keys() {
  static const std::map<std::string, RunMode> keys = {
      {"sharded.shards", RunMode::sharded},
      {"sharded.collect_log", RunMode::sharded},
      {"sharded.resume", RunMode::sharded},
      {"log.spill", RunMode::sharded},
      {"log.spool_dir", RunMode::sharded},
      {"log.checkpoint", RunMode::sharded},
      {"contended.replications", RunMode::contended},
      {"contended.confidence", RunMode::contended},
      {"replay.trace", RunMode::replay},
      {"replay.closed_loop", RunMode::replay},
      {"replay.time_scale", RunMode::replay},
      {"replay.synthetic_users", RunMode::replay},
  };
  return keys;
}

std::vector<ModelChoice> parse_models(const util::Config& config) {
  if (config.has("model.name") && config.has("model.names")) {
    fail(config, "model.names", "conflicts with model.name; pick one");
  }
  std::vector<std::string> names;
  if (config.has("model.names")) {
    names = config.get_list("model.names");
    if (names.empty()) fail(config, "model.names", "expects at least one model name");
  } else {
    names.push_back(config.get_string("model.name", "nfs"));
  }

  const std::string name_key = config.has("model.names") ? "model.names" : "model.name";
  std::vector<ModelChoice> models;
  for (const auto& name : names) {
    try {
      (void)runner::model_param_keys(name);  // validates the backend name
    } catch (const std::invalid_argument& e) {
      fail(config, name_key, std::string("names an ") + e.what());
    }
    if (std::count(names.begin(), names.end(), name) > 1) {
      fail(config, name_key, "lists model '" + name + "' more than once");
    }
    models.push_back({name, {}});
  }

  // Overrides: every dotted key under [model] must be "<chosen model>.<param>".
  for (const auto& key : config.keys_with_prefix("model.")) {
    if (key == "model.name" || key == "model.names") continue;
    const std::string body = key.substr(std::string("model.").size());
    const std::size_t dot = body.find('.');
    if (dot == std::string::npos) {
      fail(config, key, "is not a recognised key (overrides are <model>.<parameter>)");
    }
    const std::string model_name = body.substr(0, dot);
    const std::string param = body.substr(dot + 1);
    const auto it = std::find_if(models.begin(), models.end(),
                                 [&](const ModelChoice& m) { return m.name == model_name; });
    if (it == models.end()) {
      fail(config, key, "overrides model '" + model_name +
                            "', which this scenario does not run (see model.name/names)");
    }
    const double value = config.get_double(key, 0.0);
    it->overrides.push_back({param, value});
    // Validate key + value domain now, so a bad scenario fails at parse
    // time with the file's line number instead of mid-run.
    try {
      (void)runner::model_factory_by_name(it->name, it->overrides);
    } catch (const std::invalid_argument& e) {
      fail(config, key, std::string("is invalid: ") + e.what());
    }
  }
  return models;
}

/// Parses a "A:B[:C]" colon tuple of doubles from one comma-list element;
/// fails on the owning key with the element echoed.
std::vector<double> parse_tuple(const util::Config& config, const std::string& key,
                                const std::string& element, std::size_t arity) {
  const std::vector<std::string> parts = util::split(element, ':');
  if (parts.size() != arity) {
    fail(config, key, "expects " + std::to_string(arity) +
                          " colon-separated numbers per entry, got '" + element + "'");
  }
  std::vector<double> values;
  for (const auto& part : parts) {
    const auto v = util::parse_double(util::trim(part));
    if (!v) fail(config, key, "has a non-numeric component in '" + element + "'");
    values.push_back(*v);
  }
  return values;
}

/// [arrivals] + [faults] — the open-system traffic engine (src/traffic/).
/// Scenario times are seconds; TrafficConfig carries µs.
traffic::TrafficConfig parse_traffic(const util::Config& config,
                                     std::size_t default_sessions) {
  traffic::TrafficConfig traffic;

  const bool arrivals_on = !config.keys_with_prefix("arrivals.").empty();
  if (arrivals_on) {
    traffic::ArrivalConfig arrivals;
    const std::string process = config.get_string("arrivals.process", "poisson");
    if (process == "poisson") {
      arrivals.kind = traffic::ArrivalKind::poisson;
    } else if (process == "mmpp") {
      arrivals.kind = traffic::ArrivalKind::mmpp;
    } else if (process == "heavy") {
      arrivals.kind = traffic::ArrivalKind::heavy;
    } else {
      fail(config, "arrivals.process",
           "expects poisson | mmpp | heavy, got '" + process + "'");
    }
    arrivals.rate_per_sec = config.get_double("arrivals.rate", 1.0);
    if (arrivals.rate_per_sec <= 0.0) {
      fail(config, "arrivals.rate", "expects a positive session arrival rate per second");
    }
    arrivals.sessions = config.get_size("arrivals.sessions", default_sessions);
    if (arrivals.sessions == 0) fail(config, "arrivals.sessions", "expects at least 1 session");

    for (const auto& element : config.get_list("arrivals.diurnal")) {
      const std::vector<double> knot = parse_tuple(config, "arrivals.diurnal", element, 2);
      arrivals.profile.points.push_back({knot[0] * 1e6, knot[1]});
    }
    arrivals.profile.flash_at_us = config.get_double("arrivals.flash_at", 0.0) * 1e6;
    arrivals.profile.flash_duration_us =
        config.get_double("arrivals.flash_duration", 0.0) * 1e6;
    arrivals.profile.flash_magnitude = config.get_double("arrivals.flash_magnitude", 1.0);
    if ((config.has("arrivals.flash_at") || config.has("arrivals.flash_magnitude")) &&
        !config.has("arrivals.flash_duration")) {
      fail(config, "arrivals.flash_at",
           "needs arrivals.flash_duration (seconds) to bound the flash crowd");
    }

    arrivals.burst_ratio = config.get_double("arrivals.burst_ratio", 8.0);
    arrivals.mean_burst_us = config.get_double("arrivals.mean_burst", 2.0) * 1e6;
    arrivals.mean_idle_us = config.get_double("arrivals.mean_idle", 8.0) * 1e6;
    arrivals.pareto_alpha = config.get_double("arrivals.pareto_alpha", 1.5);
    traffic.arrivals = std::move(arrivals);
  }

  // Each fault group validates right after parsing so the error names the
  // key (and line) that introduced it — the scenario fail() contract.
  auto check = [&config](const char* key, const traffic::FaultPlan& plan) {
    try {
      plan.validate();
    } catch (const std::invalid_argument& e) {
      fail(config, key, std::string("is invalid: ") + e.what());
    }
  };
  for (const auto& element : config.get_list("faults.slowdown")) {
    const std::vector<double> w = parse_tuple(config, "faults.slowdown", element, 3);
    traffic.faults.slowdowns.push_back({w[0] * 1e6, w[1] * 1e6, w[2]});
  }
  check("faults.slowdown", {traffic.faults.slowdowns, {}, {}});
  for (const auto& element : config.get_list("faults.flush")) {
    const auto t = util::parse_double(util::trim(element));
    if (!t) fail(config, "faults.flush", "has a non-numeric flush time '" + element + "'");
    traffic.faults.flush_times_us.push_back(*t * 1e6);
  }
  check("faults.flush", {{}, traffic.faults.flush_times_us, {}});
  for (const auto& element : config.get_list("faults.churn")) {
    const std::vector<double> w = parse_tuple(config, "faults.churn", element, 3);
    traffic.faults.churns.push_back({w[0] * 1e6, w[1] * 1e6, w[2]});
  }
  check("faults.churn", {{}, {}, traffic.faults.churns});

  if (traffic.arrivals) {
    try {
      traffic.arrivals->validate();
    } catch (const std::invalid_argument& e) {
      fail(config, "arrivals.rate", std::string("is invalid: ") + e.what());
    }
  }
  return traffic;
}

}  // namespace

const char* to_string(RunMode mode) {
  switch (mode) {
    case RunMode::sharded: return "sharded";
    case RunMode::contended: return "contended";
    case RunMode::replay: return "replay";
  }
  return "?";
}

runner::ModelFactory ModelChoice::factory() const {
  return runner::model_factory_by_name(name, overrides);
}

ScenarioSpec ScenarioSpec::parse(const util::Config& config) {
  ScenarioSpec spec;
  spec.origin = config.origin();

  spec.mode = parse_mode(config);
  spec.name = config.get_string("scenario.name", "unnamed");
  spec.description = config.get_string("scenario.description", "");
  spec.seed = static_cast<std::uint64_t>(config.get_size("scenario.seed", 1991));
  spec.threads = config.get_size("scenario.threads", 0);

  // Mode-scoped keys first: a clearer error than "unknown key".
  for (const auto& [key, mode] : mode_scoped_keys()) {
    if (config.has(key) && spec.mode != mode) {
      fail(config, key,
           std::string("is only meaningful when scenario.mode = ") + to_string(mode) +
               " (this scenario is " + to_string(spec.mode) + ")");
    }
  }

  static const std::set<std::string> known = {
      "scenario.name", "scenario.description", "scenario.mode", "scenario.seed",
      "scenario.threads",
      "workload.users", "workload.sessions", "workload.heavy_fraction", "workload.pattern",
      "workload.markov", "workload.windows", "workload.draw_batch", "workload.think_time",
      "workload.access_size", "workload.gds",
      "model.name", "model.names",
      "sharded.shards", "sharded.collect_log", "sharded.resume",
      "log.spill", "log.spool_dir", "log.checkpoint",
      "contended.replications", "contended.confidence",
      "replay.trace", "replay.closed_loop", "replay.time_scale", "replay.synthetic_users",
      "arrivals.process", "arrivals.rate", "arrivals.sessions", "arrivals.diurnal",
      "arrivals.flash_at", "arrivals.flash_duration", "arrivals.flash_magnitude",
      "arrivals.burst_ratio", "arrivals.mean_burst", "arrivals.mean_idle",
      "arrivals.pareto_alpha",
      "faults.slowdown", "faults.flush", "faults.churn",
      "obs.metrics", "obs.trace", "obs.trace_events", "obs.progress",
      "output.log", "output.stats",
  };
  config.require_known(known, {"model."});

  // Traffic keys run on both generated-workload paths but are meaningless
  // under replay (a recorded trace fixes its own timeline), so that mode
  // rejects them explicitly rather than via the single-mode scoping table.
  if (spec.mode == RunMode::replay) {
    for (const char* prefix : {"arrivals.", "faults."}) {
      const auto keys = config.keys_with_prefix(prefix);
      if (!keys.empty()) {
        fail(config, keys.front(),
             "is not meaningful under scenario.mode = replay (the trace fixes the "
             "timeline); use a sharded or contended scenario");
      }
    }
  }

  // [workload]
  const std::string users = config.get_string("workload.users", "1");
  try {
    spec.user_points = parse_user_sweep(users);
  } catch (const std::invalid_argument& e) {
    fail(config, "workload.users", std::string("is invalid: ") + e.what());
  }
  if (spec.user_points.size() > 1 && spec.mode != RunMode::contended) {
    fail(config, "workload.users",
         "sweeps (A:B:STEP) require scenario.mode = contended; sharded and replay "
         "scenarios take a single user count");
  }
  spec.sessions = config.get_size("workload.sessions", 50);
  if (spec.sessions == 0) fail(config, "workload.sessions", "expects at least 1 session");
  spec.heavy_fraction = config.get_double("workload.heavy_fraction", 1.0);
  if (spec.heavy_fraction < 0.0 || spec.heavy_fraction > 1.0) {
    fail(config, "workload.heavy_fraction", "expects a fraction in [0, 1]");
  }
  spec.pattern = parse_pattern(config);
  spec.markov = config.get_double("workload.markov", -1.0);
  if (spec.markov >= 1.0) {
    fail(config, "workload.markov", "expects a persistence < 1 (negative = independent)");
  }
  spec.windows = config.get_size("workload.windows", 1);
  if (spec.windows == 0) fail(config, "workload.windows", "expects at least 1 window");
  spec.draw_batch = config.get_size("workload.draw_batch", 1);
  if (spec.draw_batch == 0) {
    fail(config, "workload.draw_batch",
         "expects at least 1 draw per refill (1 = the unbatched historical sequence)");
  }
  spec.think_time = config.get_string("workload.think_time", "");
  spec.access_size = config.get_string("workload.access_size", "");
  spec.gds_file = config.get_string("workload.gds", "");
  for (const char* key : {"workload.think_time", "workload.access_size"}) {
    const std::string expr = config.get_string(key, "");
    if (expr.empty()) continue;
    try {
      (void)core::parse_distribution(expr);
    } catch (const std::invalid_argument& e) {
      fail(config, key, std::string("is invalid: ") + e.what());
    }
  }

  spec.models = parse_models(config);

  // [sharded]
  spec.shards = config.get_size("sharded.shards", 1);
  if (spec.mode == RunMode::sharded && spec.shards == 0) {
    fail(config, "sharded.shards", "expects at least 1 shard");
  }
  spec.collect_log = config.get_bool("sharded.collect_log", true);

  // [log] — the streaming spill pipeline (docs/SCENARIOS.md "[log]").
  spec.log_spill = config.get_bool("log.spill", false);
  spec.log_spool_dir = config.get_string("log.spool_dir", "");
  if (!spec.log_spool_dir.empty() && !spec.log_spill) {
    fail(config, "log.spool_dir", "is only meaningful with log.spill = true");
  }
  if (spec.log_spill && !spec.collect_log) {
    fail(config, "log.spill",
         "conflicts with sharded.collect_log = false (spilling streams the log to "
         "disk; collect_log = false means no log at all); drop one");
  }
  spec.log_checkpoint = config.get_bool("log.checkpoint", false);
  if (spec.log_checkpoint && !spec.log_spill) {
    fail(config, "log.checkpoint",
         "requires log.spill = true (checkpoints persist the spilled runs)");
  }
  spec.resume = config.get_bool("sharded.resume", false);
  if (spec.resume && !spec.log_checkpoint) {
    fail(config, "sharded.resume",
         "requires log.checkpoint = true (there is nothing to resume from without "
         "checkpoints)");
  }
  if (spec.log_spill && spec.log_spool_dir.empty()) {
    spec.log_spool_dir = ".wlgen-spool/" + util::slugify(spec.name);
  }

  // [contended]
  spec.replications = config.get_size("contended.replications", 3);
  if (spec.mode == RunMode::contended && spec.replications == 0) {
    fail(config, "contended.replications", "expects at least 1 replication");
  }
  spec.confidence = config.get_double("contended.confidence", 0.95);

  // [replay]
  spec.trace_file = config.get_string("replay.trace", "");
  if (!spec.trace_file.empty() && config.has("workload.users")) {
    fail(config, "workload.users",
         "conflicts with replay.trace (the trace fixes the recorded population; drop "
         "one)");
  }
  spec.closed_loop = config.get_bool("replay.closed_loop", true);
  spec.time_scale = config.get_double("replay.time_scale", 1.0);
  if (spec.time_scale <= 0.0) fail(config, "replay.time_scale", "expects a positive factor");
  spec.synthetic_users = config.get_size("replay.synthetic_users", 0);

  // [arrivals] + [faults].  Default total session count preserves the
  // closed-loop volume: workload.sessions x the (largest) user point.
  spec.traffic = parse_traffic(
      config,
      spec.sessions * *std::max_element(spec.user_points.begin(), spec.user_points.end()));
  if (spec.traffic.arrivals && spec.windows != 1) {
    fail(config, "workload.windows",
         "conflicts with [arrivals] (open-loop sessions queue per user; "
         "windows_per_user must stay 1)");
  }

  // [obs]
  spec.obs_metrics = config.get_string("obs.metrics", "");
  spec.obs_trace = config.get_string("obs.trace", "");
  spec.obs_trace_events = config.get_size("obs.trace_events", 65536);
  if (config.has("obs.trace_events") && spec.obs_trace_events == 0) {
    fail(config, "obs.trace_events", "expects a positive trace-ring budget");
  }
  spec.obs_progress = config.get_bool("obs.progress", false);

  // [output]
  spec.log_file = config.get_string("output.log", "");
  spec.stats_file = config.get_string("output.stats", "");
  if (!spec.log_file.empty() && spec.mode == RunMode::contended) {
    fail(config, "output.log",
         "contended runs collect cross-replication aggregates only (no merged usage "
         "log); use output.stats or a sharded scenario");
  }
  if (!spec.log_file.empty() && spec.models.size() > 1) {
    fail(config, "output.log", "needs a single-model scenario (one log per run)");
  }
  if (!spec.log_file.empty() && spec.mode == RunMode::sharded && !spec.collect_log) {
    fail(config, "output.log",
         "conflicts with sharded.collect_log = false (the run would write an empty "
         "log); drop one");
  }

  return spec;
}

ScenarioSpec ScenarioSpec::parse_text(const std::string& text, const std::string& origin) {
  return parse(util::Config::parse_text(text, origin));
}

ScenarioSpec ScenarioSpec::parse_file(const std::string& path) {
  return parse(util::Config::parse_file(path));
}

core::Population ScenarioSpec::population() const {
  core::Population population = core::mixed_population(heavy_fraction);
  core::DistributionSpecifier gds;
  if (!gds_file.empty()) gds.load_spec_text(util::read_text_file(gds_file));
  // Inline expressions win over the GDS file.
  if (!think_time.empty()) gds.set("think_time", core::parse_distribution(think_time));
  if (!access_size.empty()) gds.set("access_size", core::parse_distribution(access_size));
  core::apply_gds_overrides(population, gds);
  return population;
}

core::UsimConfig ScenarioSpec::usim_config() const {
  core::UsimConfig config;
  config.sessions_per_user = sessions;
  config.pattern = pattern;
  config.markov_persistence = markov;
  config.windows_per_user = windows;
  config.draw_batch = draw_batch;
  return config;
}

std::string ScenarioSpec::summary() const {
  std::ostringstream out;
  out << "scenario: " << name << "\n";
  if (!description.empty()) out << "  " << description << "\n";
  out << "  mode: " << to_string(mode) << "  seed: " << seed << "  threads: "
      << (threads == 0 ? std::string("hardware") : std::to_string(threads)) << "\n";
  out << "  users:";
  for (const std::size_t users : user_points) out << " " << users;
  out << "  sessions/user: " << sessions << "  heavy fraction: " << heavy_fraction
      << "  windows: " << windows << "\n";
  if (draw_batch != 1) out << "  draw batch: " << draw_batch << "\n";
  if (!think_time.empty()) out << "  think_time override: " << think_time << "\n";
  if (!access_size.empty()) out << "  access_size override: " << access_size << "\n";
  if (!gds_file.empty()) out << "  gds file: " << gds_file << "\n";
  for (const auto& model : models) {
    out << "  model: " << model.name;
    for (const auto& o : model.overrides) out << "  " << o.key << "=" << o.value;
    out << "\n";
  }
  switch (mode) {
    case RunMode::sharded:
      out << "  sharded: " << shards << " shard(s), collect_log="
          << (collect_log ? "true" : "false") << "\n";
      if (log_spill) {
        out << "  log: spill -> " << log_spool_dir
            << (log_checkpoint ? ", checkpointed" : "") << (resume ? ", resume" : "")
            << "\n";
      }
      break;
    case RunMode::contended:
      out << "  contended: " << replications << " replication(s), confidence " << confidence
          << "\n";
      break;
    case RunMode::replay:
      out << "  replay: " << (trace_file.empty() ? "record synthetically" : trace_file)
          << ", " << (closed_loop ? "closed" : "open") << " loop, time scale " << time_scale;
      if (synthetic_users > 0) out << ", synthetic comparison at " << synthetic_users
                                   << " user(s)";
      out << "\n";
      break;
  }
  if (traffic.arrivals) {
    out << "  arrivals: " << traffic::to_string(traffic.arrivals->kind) << " rate "
        << traffic.arrivals->rate_per_sec << "/s, " << traffic.arrivals->sessions
        << " session(s)";
    if (!traffic.arrivals->profile.constant()) out << ", time-varying";
    out << "\n";
  }
  if (traffic.faults.any()) {
    out << "  faults: " << traffic.faults.slowdowns.size() << " slowdown, "
        << traffic.faults.flush_times_us.size() << " flush, "
        << traffic.faults.churns.size() << " churn\n";
  }
  if (!obs_metrics.empty()) out << "  obs metrics: " << obs_metrics << "\n";
  if (!obs_trace.empty()) {
    out << "  obs trace: " << obs_trace << " (ring " << obs_trace_events << " events)\n";
  }
  if (obs_progress) out << "  obs progress: on\n";
  if (!log_file.empty()) out << "  output log: " << log_file << "\n";
  if (!stats_file.empty()) out << "  output stats: " << stats_file << "\n";
  return out.str();
}

std::vector<std::size_t> parse_user_sweep(const std::string& spec) {
  const std::vector<std::string> parts = util::split(spec, ':');
  auto part = [&](std::size_t i) -> std::size_t {
    const auto v = util::parse_int(parts[i]);
    if (!v || *v < 0) {
      throw std::invalid_argument("user sweep expects A:B:STEP of non-negative integers, "
                                  "got '" + spec + "'");
    }
    return static_cast<std::size_t>(*v);
  };
  if (parts.empty() || parts.size() > 3) {
    throw std::invalid_argument("user sweep expects N, A:B or A:B:STEP, got '" + spec + "'");
  }
  const std::size_t lo = part(0);
  const std::size_t hi = parts.size() >= 2 ? part(1) : lo;
  const std::size_t step = parts.size() == 3 ? part(2) : 1;
  if (lo == 0 || hi < lo || step == 0) {
    throw std::invalid_argument("user sweep needs 1 <= A <= B and STEP >= 1, got '" + spec +
                                "'");
  }
  std::vector<std::size_t> points;
  for (std::size_t users = lo; users <= hi; users += step) points.push_back(users);
  return points;
}

std::vector<std::string> scenario_files(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::invalid_argument("scenario_files: '" + dir + "' is not a directory");
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace wlgen::scenario
