#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/log_sink.h"
#include "core/usage_log.h"
#include "obs/obs.h"
#include "runner/stats.h"
#include "scenario/spec.h"
#include "stats/sketch.h"
#include "stats/summary.h"

namespace wlgen::scenario {

/// Execution knobs that belong to the invocation, not the scenario file.
struct RunOptions {
  /// Overrides ScenarioSpec::threads when set (the CLI --threads flag).
  /// Purely an execution knob: results are bit-identical either way.
  std::optional<std::size_t> threads;

  /// CLI overrides for the spec's [obs] keys (--metrics/--trace/
  /// --trace-events/--progress).  Like every obs switch, they never change
  /// results or digests.
  std::string metrics_file;                ///< non-empty overrides obs.metrics
  std::string trace_file;                  ///< non-empty overrides obs.trace
  std::optional<std::size_t> trace_events; ///< overrides obs.trace_events
  std::optional<bool> progress;            ///< overrides obs.progress
};

/// Merged statistics of one measured point (one load point of a contended
/// sweep, the whole population of a sharded run, or one leg of a replay
/// A/B).  All fields follow the runners' merge contracts: bit-identical for
/// any thread/shard count.
struct PointOutcome {
  std::string label;    ///< "" for plain points; "trace replay", "synthetic" for replay legs
  std::size_t users = 0;
  runner::RunnerStats stats;
  /// Cross-replication mean/CI of response-per-byte (contended mode;
  /// half_width 0 elsewhere, mean = pooled level).
  stats::MeanCi response_per_byte;
  std::uint64_t ops = 0;
  std::uint64_t sessions = 0;
};

/// Everything one model backend produced.
struct ModelOutcome {
  std::string model;
  std::vector<PointOutcome> points;
  /// Merged usage log (sharded with collect_log) or replayed log (replay);
  /// empty otherwise — and empty when the run spilled (see spilled_runs).
  core::UsageLog log;

  /// Sorted on-disk runs when the scenario spilled (log.spill); the merged
  /// stream is core::open_spilled_log(spilled_runs).
  std::vector<core::SpillRun> spilled_runs;

  /// Response-time quantile sketch (sharded mode only; empty elsewhere).
  /// Bit-identical across shard/thread counts AND spill on/off, so its
  /// quantiles are part of the stats digest.
  stats::QuantileSketch response_sketch;

  /// Per-model observability outputs (empty when obs is off).  The stable
  /// registry metrics follow the owning runner's merge contract.
  obs::Registry registry;
  obs::RunTrace trace;
};

/// Result of compiling and executing one scenario.
struct ScenarioOutcome {
  std::vector<ModelOutcome> models;  ///< model order of the spec
  double wall_ms = 0.0;
  /// Rendered human-readable report (per-model tables plus a comparison
  /// table for multi-model scenarios).
  std::string report;
  /// Deterministic text serialization of every merged statistic — the
  /// artifact `output.stats` writes, and the value tests pin to prove
  /// thread-count invariance (%.17g doubles: equal bits => equal text).
  std::string stats_digest;

  /// Obs artifacts ("" when the corresponding switch is off).  metrics_json
  /// is the full `--metrics` report; trace_json the Chrome trace document;
  /// obs_text the exact text of every *stable* metric, model by model — the
  /// determinism tests pin obs_text across shard/thread counts exactly like
  /// stats_digest.
  std::string metrics_json;
  std::string trace_json;
  std::string obs_text;
};

/// Compiles `spec` onto ShardedRunner / ContendedRunner / TraceReplayer and
/// executes it.  Writes `output.log` / `output.stats` artifacts when the
/// spec names them.  Throws std::invalid_argument / std::runtime_error on
/// unreadable trace/GDS inputs or unwritable outputs.
ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunOptions& options = {});

}  // namespace wlgen::scenario
