#include "scenario/run.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "core/fsc.h"
#include "core/log_sink.h"
#include "core/presets.h"
#include "core/replay.h"
#include "core/usim.h"
#include "fs/filesystem.h"
#include "obs/progress.h"
#include "runner/contended_runner.h"
#include "runner/pool.h"
#include "runner/sharded_runner.h"
#include "util/svg.h"
#include "util/table.h"

namespace wlgen::scenario {

namespace {

/// Shortest exact decimal text of a double: equal bits => equal text, so
/// digests built from it inherit the runners' bit-identical merge
/// guarantee.
std::string exact(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

runner::RunnerStats stats_of_log(const core::UsageLog& log) {
  runner::RunnerStats stats;
  for (const auto& record : log.records()) stats.add(record);
  return stats;
}

/// Effective obs switches of one invocation: the spec's [obs] keys with the
/// CLI overrides applied on top.
obs::ObsConfig resolve_obs(const ScenarioSpec& spec, const RunOptions& options) {
  obs::ObsConfig obs;
  obs.metrics_file = options.metrics_file.empty() ? spec.obs_metrics : options.metrics_file;
  obs.trace_file = options.trace_file.empty() ? spec.obs_trace : options.trace_file;
  obs.trace_events = options.trace_events.value_or(spec.obs_trace_events);
  obs.progress = options.progress.value_or(spec.obs_progress);
  obs.label = spec.name;
  return obs;
}

/// One serial shared-machine USIM run — the classic single-Simulation path,
/// used by replay mode both to record the trace and to generate the
/// synthetic comparison leg.  `sample`, when non-null, receives the run's
/// sim/RNG observability counters (op tallies are the caller's job — it
/// owns the returned log).
core::UsageLog generate_shared(const ScenarioSpec& spec, const ModelChoice& model,
                               std::size_t users, std::uint64_t& sessions_out,
                               obs::SimSample* sample = nullptr) {
  sim::Simulation simulation;
  fs::SimulatedFileSystem fsys;
  fsys.set_clock([&simulation] { return simulation.now(); });
  auto fsmodel = model.factory()(simulation);

  core::FscConfig fsc_config;
  fsc_config.num_users = users;
  fsc_config.seed = spec.seed;
  core::FileSystemCreator fsc(fsys, core::di86_file_profiles(), fsc_config);
  const core::CreatedFileSystem manifest = fsc.create();

  core::UsimConfig config = spec.usim_config();
  config.num_users = users;
  config.seed = spec.seed;
  core::UserSimulator usim(simulation, fsys, *fsmodel, manifest, spec.population(), config);
  usim.run();
  sessions_out = usim.sessions_completed();
  if (sample != nullptr) {
    sample->sim_events = simulation.events_processed();
    sample->heap_high_water = simulation.arena_high_water();
    sample->rng_draws = usim.rng_draws();
    sample->sessions = sessions_out;
  }
  return usim.take_log();
}

/// Scenario-level identity folded into checkpoint fingerprints: everything
/// that shapes the record streams but is invisible to RunnerConfig's own
/// fingerprint fields (model + overrides, population shape, behaviour
/// switches).  Single line — the checkpoint format is line-based.
std::string spill_config_tag(const ScenarioSpec& spec, const ModelChoice& model) {
  std::ostringstream tag;
  tag << "model=" << model.name;
  for (const auto& o : model.overrides) tag << "," << o.key << "=" << exact(o.value);
  tag << " heavy=" << exact(spec.heavy_fraction)
      << " pattern=" << static_cast<int>(spec.pattern) << " markov=" << exact(spec.markov)
      << " think=" << spec.think_time << " access=" << spec.access_size
      << " gds=" << spec.gds_file;
  // Traffic identity (arrivals + faults): appended only when configured so
  // pre-traffic checkpoints keep validating.
  if (spec.traffic.any()) tag << " " << spec.traffic.tag();
  return tag.str();
}

ModelOutcome run_sharded(const ScenarioSpec& spec, const ModelChoice& model,
                         std::size_t threads, const obs::ObsConfig& obs) {
  runner::RunnerConfig config;
  config.num_users = spec.user_points.front();
  config.shards = spec.shards;
  config.threads = threads;
  config.seed = spec.seed;
  config.usim = spec.usim_config();
  config.population = spec.population();
  config.collect_log = spec.collect_log;
  config.model_factory = model.factory();
  config.obs = obs;
  config.traffic = spec.traffic;
  if (spec.log_spill) {
    config.spill.enabled = true;
    // Multi-model scenarios get one spool subdirectory per backend so their
    // run/checkpoint files never collide.
    config.spill.spool_dir = spec.models.size() > 1
                                 ? spec.log_spool_dir + "/" + model.name
                                 : spec.log_spool_dir;
    config.spill.checkpoint = spec.log_checkpoint;
    config.spill.resume = spec.resume;
    config.spill.config_tag = spill_config_tag(spec, model);
  }

  runner::ShardedRunner run(std::move(config));
  runner::RunnerResult result = run.run();

  ModelOutcome outcome;
  outcome.model = model.name;
  PointOutcome point;
  point.users = spec.user_points.front();
  point.stats = result.stats;
  point.response_per_byte = {result.stats.response_per_byte_us(), 0.0, 1};
  point.ops = result.total_ops;
  point.sessions = result.sessions_completed;
  outcome.points.push_back(std::move(point));
  outcome.log = std::move(result.log);
  outcome.spilled_runs = std::move(result.spilled_runs);
  outcome.response_sketch = result.response_sketch;
  outcome.registry = std::move(result.registry);
  outcome.trace = std::move(result.trace);
  return outcome;
}

ModelOutcome run_contended(const ScenarioSpec& spec, const ModelChoice& model,
                           std::size_t threads, const obs::ObsConfig& obs) {
  runner::ContendedConfig config;
  config.user_points = spec.user_points;
  config.replications = spec.replications;
  config.threads = threads;
  config.seed = spec.seed;
  config.confidence = spec.confidence;
  config.usim = spec.usim_config();
  config.population = spec.population();
  config.model_factory = model.factory();
  config.obs = obs;
  config.traffic = spec.traffic;

  runner::ContendedRunner run(std::move(config));
  runner::ContendedResult result = run.run();

  ModelOutcome outcome;
  outcome.model = model.name;
  for (const auto& p : result.points) {
    PointOutcome point;
    point.users = p.users;
    point.stats = p.stats;
    point.response_per_byte = p.response_per_byte;
    point.ops = p.total_ops;
    point.sessions = p.sessions_completed;
    outcome.points.push_back(std::move(point));
  }
  outcome.registry = std::move(result.registry);
  outcome.trace = std::move(result.trace);
  return outcome;
}

ModelOutcome run_replay(const ScenarioSpec& spec, const ModelChoice& model,
                        const core::UsageLog& trace, std::size_t trace_users,
                        std::uint64_t trace_sessions, const obs::ObsConfig& obs) {
  ModelOutcome outcome;
  outcome.model = model.name;

  const bool collect = obs.collect();
  const bool trace_on = obs.trace();
  if (trace_on) {
    const std::size_t share = obs::ring_share(obs.trace_events / 2, 1);
    outcome.trace.ops = obs::TraceRing(share);
    outcome.trace.stages = obs::TraceRing(share);
  }
  // Replay is serial: the model-stage ring can stay installed for both legs.
  obs::ScopedStageTrace stage_trace(trace_on ? &outcome.trace.stages : nullptr);

  sim::Simulation simulation;
  auto fsmodel = model.factory()(simulation);
  core::TraceReplayer replayer(simulation, *fsmodel, trace);
  core::TraceReplayer::Options options;
  options.preserve_timing = !spec.closed_loop;
  options.time_scale = spec.time_scale;
  core::UsageLog replayed = replayer.run(options);

  obs::SimSample merged;
  if (collect) {
    obs::SimSample sample;
    sample.sim_events = simulation.events_processed();
    sample.heap_high_water = simulation.arena_high_water();
    sample.sessions = trace_sessions;
    for (const auto& record : replayed.records()) {
      sample.ops.add(record);
      if (trace_on) obs::record_op(outcome.trace.ops, record);
    }
    merged.merge(sample);
  }

  PointOutcome replay_point;
  replay_point.label = spec.closed_loop ? "trace replay (closed loop)"
                                        : "trace replay (open loop)";
  replay_point.users = trace_users;
  replay_point.stats = stats_of_log(replayed);
  replay_point.response_per_byte = {replay_point.stats.response_per_byte_us(), 0.0, 1};
  replay_point.ops = replayer.ops_replayed();
  replay_point.sessions = trace_sessions;
  outcome.points.push_back(std::move(replay_point));
  outcome.log = std::move(replayed);

  if (spec.synthetic_users > 0) {
    // The paper's section 2.1 contrast: the generator can answer the
    // "what about N users?" question the trace cannot.
    std::uint64_t sessions = 0;
    obs::SimSample synthetic_sample;
    const core::UsageLog synthetic = generate_shared(
        spec, model, spec.synthetic_users, sessions, collect ? &synthetic_sample : nullptr);
    if (collect) {
      for (const auto& record : synthetic.records()) {
        synthetic_sample.ops.add(record);
        if (trace_on) obs::record_op(outcome.trace.ops, record);
      }
      merged.merge(synthetic_sample);
    }
    PointOutcome point;
    point.label = "synthetic";
    point.users = spec.synthetic_users;
    point.stats = stats_of_log(synthetic);
    point.response_per_byte = {point.stats.response_per_byte_us(), 0.0, 1};
    point.ops = synthetic.size();
    point.sessions = sessions;
    outcome.points.push_back(std::move(point));
  }
  if (collect) merged.export_into(outcome.registry);
  return outcome;
}

void append_digest(std::ostringstream& out, const ModelOutcome& model) {
  out << "model " << model.model << "\n";
  for (const auto& p : model.points) {
    out << "point users=" << p.users;
    if (!p.label.empty()) out << " label=\"" << p.label << "\"";
    out << " ops=" << p.ops << " sessions=" << p.sessions << " bytes="
        << p.stats.bytes_moved() << "\n";
    const auto& r = p.stats.response_us();
    out << "  response_us count=" << r.count() << " mean=" << exact(r.mean())
        << " stddev=" << exact(r.stddev()) << " min=" << exact(r.min())
        << " max=" << exact(r.max()) << "\n";
    const auto& a = p.stats.access_size();
    out << "  access_size count=" << a.count() << " mean=" << exact(a.mean())
        << " stddev=" << exact(a.stddev()) << "\n";
    out << "  response_per_byte pooled=" << exact(p.stats.response_per_byte_us())
        << " mean=" << exact(p.response_per_byte.mean)
        << " ci_half=" << exact(p.response_per_byte.half_width) << "\n";
  }
  // Sharded runs also pin the bounded-memory sketch: integer bucket counts,
  // so the quantiles are exact and identical for every shard/thread count
  // and for spill on vs off.
  if (model.response_sketch.count() > 0) {
    const auto& sketch = model.response_sketch;
    out << "  response_sketch count=" << sketch.count()
        << " p50=" << exact(sketch.quantile(0.50)) << " p90=" << exact(sketch.quantile(0.90))
        << " p99=" << exact(sketch.quantile(0.99)) << "\n";
  }
}

std::string render_report(const ScenarioSpec& spec, const std::vector<ModelOutcome>& models) {
  std::ostringstream out;
  out << "scenario: " << spec.name << "  (mode: " << to_string(spec.mode) << ", seed: "
      << spec.seed << ")\n";
  if (!spec.description.empty()) out << spec.description << "\n";
  out << "\n";

  // Label the interval with the level the scenario configured (0.90/0.95/0.99).
  const std::string ci_header =
      "mean +/- ci" + std::to_string(static_cast<int>(spec.confidence * 100.0 + 0.5));
  for (const auto& model : models) {
    out << "--- model: " << model.model << " ---\n";
    util::TextTable table({"point", "users", "us/byte", ci_header,
                           "response us mean(std)", "syscalls", "sessions"});
    for (const auto& p : model.points) {
      table.add_row({p.label.empty() ? "-" : p.label, std::to_string(p.users),
                     util::TextTable::num(p.stats.response_per_byte_us(), 4),
                     util::TextTable::num(p.response_per_byte.mean, 4) + " +/- " +
                         util::TextTable::num(p.response_per_byte.half_width, 4),
                     p.stats.response_us().mean_std_string(), std::to_string(p.ops),
                     std::to_string(p.sessions)});
    }
    out << table.render() << "\n";
  }

  if (models.size() > 1) {
    // Cross-backend comparison over the last (largest) point — the paper's
    // section 5.3 "compare" step.
    util::TextTable compare({"model", "us/byte", "mean resp us", "syscalls"});
    for (const auto& model : models) {
      const auto& p = model.points.back();
      compare.add_row({model.model, util::TextTable::num(p.stats.response_per_byte_us(), 4),
                       util::TextTable::num(p.stats.response_us().mean(), 0),
                       std::to_string(p.ops)});
    }
    out << "--- comparison (final point) ---\n" << compare.render();
  }
  return out.str();
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
  const std::size_t threads = options.threads.value_or(spec.threads);

  ScenarioOutcome outcome;

  // Per-model obs slices: each backend gets a labelled copy with an equal
  // share of the trace-ring budget (the shares sum to the run budget, so
  // merging never evicts).
  const obs::ObsConfig effective_obs = resolve_obs(spec, options);
  std::vector<obs::ObsConfig> model_obs(spec.models.size(), effective_obs);
  for (std::size_t m = 0; m < spec.models.size(); ++m) {
    model_obs[m].label = spec.name + "/" + spec.models[m].name;
    model_obs[m].trace_events =
        obs::ring_share(effective_obs.trace_events, spec.models.size());
  }

  // Replay mode shares one trace across every backend: record it on the
  // first model (or load it) so the comparison replays identical input.
  core::UsageLog trace;
  std::size_t trace_users = 0;
  std::uint64_t trace_sessions = 0;
  if (spec.mode == RunMode::replay) {
    if (spec.trace_file.empty()) {
      trace_users = spec.user_points.front();
      trace = generate_shared(spec, spec.models.front(), trace_users, trace_sessions);
    } else {
      trace = core::UsageLog::parse(util::read_text_file(spec.trace_file));
      // Recover the recorded population/session shape from the trace itself.
      std::set<std::pair<std::uint32_t, std::uint32_t>> sessions;
      for (const auto& record : trace.records()) {
        trace_users = std::max<std::size_t>(trace_users, record.user + 1);
        sessions.insert({record.user, record.session});
      }
      trace_sessions = sessions.size();
    }
  }

  // Independent backends fan out over the worker pool.  Each job writes its
  // ModelOutcome to a per-index slot and the digest is folded in spec order
  // below, so the digest is bit-identical for any --threads: every backend's
  // own result is already thread-invariant (the runners' merge contracts),
  // and the fold order never depends on completion order.  The thread budget
  // splits across the two levels — `outer` backends in flight, each running
  // its internal runner pool with an equal share of the remainder — so a
  // multi-model scenario never oversubscribes the requested thread count.
  outcome.models.resize(spec.models.size());
  const std::size_t total_threads =
      runner::resolve_pool_threads(threads, std::numeric_limits<std::size_t>::max());
  const std::size_t outer = std::min(total_threads, spec.models.size());
  const std::size_t inner = std::max<std::size_t>(1, total_threads / std::max<std::size_t>(1, outer));
  runner::drain_pool(spec.models.size(), outer, [&]() -> runner::PoolJob {
    return [&](std::size_t index, const std::atomic<bool>& /*cancelled*/) {
      const ModelChoice& model = spec.models[index];
      switch (spec.mode) {
        case RunMode::sharded:
          outcome.models[index] = run_sharded(spec, model, inner, model_obs[index]);
          break;
        case RunMode::contended:
          outcome.models[index] = run_contended(spec, model, inner, model_obs[index]);
          break;
        case RunMode::replay:
          outcome.models[index] = run_replay(spec, model, trace, trace_users,
                                             trace_sessions, model_obs[index]);
          break;
      }
    };
  });

  std::ostringstream digest;
  digest << "scenario " << spec.name << " mode=" << to_string(spec.mode) << " seed="
         << spec.seed << "\n";
  for (const auto& model : outcome.models) append_digest(digest, model);
  outcome.stats_digest = digest.str();
  outcome.report = render_report(spec, outcome.models);

  if (!spec.log_file.empty()) {
    // Stream through a reader so a spilled run writes the identical text
    // without ever materializing the merged log in RAM.
    const ModelOutcome& first = outcome.models.front();
    if (!first.spilled_runs.empty()) {
      std::ostringstream text;
      auto reader = core::open_spilled_log(first.spilled_runs);
      core::write_log_text(*reader, text);
      util::write_text_file(spec.log_file, text.str());
    } else {
      util::write_text_file(spec.log_file, first.log.serialize());
    }
  }
  if (!spec.stats_file.empty()) {
    util::write_text_file(spec.stats_file, outcome.stats_digest);
  }

  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
                        .count();

  // Observability artifacts, assembled in spec model order so the documents
  // — like the digest — never depend on completion order.
  if (effective_obs.collect()) {
    std::ostringstream obs_text;
    for (const auto& model : outcome.models) {
      obs_text << "model " << model.model << "\n" << model.registry.stable_text();
    }
    outcome.obs_text = obs_text.str();
  }
  if (effective_obs.metrics()) {
    util::JsonValue doc = obs::metrics_document(spec.name, outcome.wall_ms);
    for (const auto& model : outcome.models) {
      obs::add_metrics_group(doc, model.model, model.registry);
    }
    outcome.metrics_json = doc.dump();
    util::write_text_file(effective_obs.metrics_file, outcome.metrics_json);
  }
  if (effective_obs.trace()) {
    std::vector<obs::TraceGroup> groups;
    for (const auto& model : outcome.models) {
      for (auto& group : obs::run_trace_groups(model.model, model.trace)) {
        groups.push_back(std::move(group));
      }
    }
    outcome.trace_json = obs::chrome_trace_json(groups);
    util::write_text_file(effective_obs.trace_file, outcome.trace_json);
  }
  return outcome;
}

}  // namespace wlgen::scenario
