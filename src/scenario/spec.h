#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/usim.h"
#include "core/workload.h"
#include "runner/model_factory.h"
#include "traffic/traffic.h"
#include "util/config.h"

namespace wlgen::scenario {

/// Which execution path a scenario compiles onto (see DESIGN.md "Scenario
/// subsystem" and docs/SCENARIOS.md):
///
/// * `sharded`   — runner::ShardedRunner: every user an independent
///                 workstation universe, merged deterministically.
/// * `contended` — runner::ContendedRunner: all users of a load point share
///                 one machine (the Figures 5.6–5.11 physics), load points ×
///                 replications fanned over the worker pool.
/// * `replay`    — core::TraceReplayer: record (or load) a trace, replay it
///                 on the target model(s), optionally generate a synthetic
///                 counterpart at a different population size — the paper's
///                 section 2.1 trace-vs-generator A/B.
enum class RunMode { sharded, contended, replay };

const char* to_string(RunMode mode);

/// One model backend a scenario runs against, with its parameter overrides
/// (validated against runner::model_param_keys at parse time).
struct ModelChoice {
  std::string name;  ///< "nfs" | "local" | "wholefile"
  std::vector<runner::ModelParamOverride> overrides;

  runner::ModelFactory factory() const;
};

/// A parsed, validated scenario — the declarative description of one
/// workload experiment: population, behaviour overrides, model backends,
/// run mode and outputs.  Compiled onto the runners by
/// scenario::run_scenario (scenario/run.h).
struct ScenarioSpec {
  // [scenario]
  std::string name;
  std::string description;
  RunMode mode = RunMode::contended;
  std::uint64_t seed = 1991;
  std::size_t threads = 0;  ///< 0 = hardware concurrency (never affects results)

  // [workload]
  std::vector<std::size_t> user_points;  ///< one point, or a sweep (contended only)
  std::size_t sessions = 50;
  double heavy_fraction = 1.0;
  core::AccessPattern pattern = core::AccessPattern::sequential;
  double markov = -1.0;  ///< <0 = the paper's independent stream
  std::size_t windows = 1;
  std::size_t draw_batch = 1;  ///< draws prefetched per characteristic (>= 1)
  std::string think_time;   ///< distribution expression, "" = preset
  std::string access_size;  ///< distribution expression, "" = preset
  std::string gds_file;     ///< optional GDS spec file with named overrides

  // [model]
  std::vector<ModelChoice> models;  ///< at least one

  // [sharded]
  std::size_t shards = 1;
  bool collect_log = true;
  bool resume = false;  ///< skip shards with valid checkpoints (needs log.checkpoint)

  // [log] — streaming log pipeline (sharded mode; docs/SCENARIOS.md "[log]").
  bool log_spill = false;       ///< stream per-shard records to sorted disk runs
  std::string log_spool_dir;    ///< resolved at parse ("" key = .wlgen-spool/<name>)
  bool log_checkpoint = false;  ///< persist per-shard checkpoints for resume

  // [contended]
  std::size_t replications = 3;
  double confidence = 0.95;

  // [replay]
  std::string trace_file;         ///< "" = record the trace synthetically first
  bool closed_loop = true;
  double time_scale = 1.0;
  std::size_t synthetic_users = 0;  ///< >0 adds the synthetic comparison run

  // [arrivals] + [faults] — open-system traffic (docs/SCENARIOS.md).  An
  // inert TrafficConfig (no [arrivals]/[faults] keys) leaves every run
  // byte-identical with pre-traffic builds.  Times in the file are seconds;
  // they are converted to µs here at parse time.
  traffic::TrafficConfig traffic;

  // [obs] — observability (docs/SCENARIOS.md "Observability keys").  All
  // off by default; none of them ever changes results or digests.
  std::string obs_metrics;  ///< metrics JSON report file ("" = off)
  std::string obs_trace;    ///< Chrome trace JSON file ("" = off)
  std::size_t obs_trace_events = 65536;  ///< trace ring budget (events)
  bool obs_progress = false;             ///< heartbeat lines on stderr

  // [output]
  std::string log_file;    ///< merged/replayed usage log (not contended)
  std::string stats_file;  ///< deterministic merged-stats digest

  std::string origin;  ///< file path or "<scenario>", for error messages

  /// Parses + validates a Config.  Throws std::invalid_argument with
  /// "origin:line:"-prefixed messages on unknown keys, mode mismatches,
  /// bad values, or unknown model parameters.
  static ScenarioSpec parse(const util::Config& config);
  static ScenarioSpec parse_text(const std::string& text,
                                 const std::string& origin = "<scenario>");
  static ScenarioSpec parse_file(const std::string& path);

  /// The user population this scenario drives: mixed_population(heavy_fraction)
  /// with the [workload] distribution overrides applied (file first, inline
  /// expressions second — inline wins; see docs/SCENARIOS.md "Precedence").
  core::Population population() const;

  /// Per-user behaviour shared by every compile target.
  core::UsimConfig usim_config() const;

  /// Human-readable echo of the resolved spec (`wlgen scenario --print`).
  std::string summary() const;
};

/// "N", "A:B" (step 1) or "A:B:STEP" → the sweep points; throws
/// std::invalid_argument on malformed or empty sweeps.  Shared by the
/// scenario parser and `wlgen run --users-sweep`.
std::vector<std::size_t> parse_user_sweep(const std::string& spec);

/// Sorted paths of the `*.scn` files directly under `dir`; throws
/// std::invalid_argument when `dir` is not a directory.
std::vector<std::string> scenario_files(const std::string& dir);

}  // namespace wlgen::scenario
