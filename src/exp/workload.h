#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/fsc.h"
#include "core/presets.h"
#include "core/usim.h"
#include "fsmodel/model.h"
#include "stats/summary.h"
#include "traffic/traffic.h"

namespace wlgen::exp {

/// Which performance model a workload runs against.
enum class ModelKind { nfs, local, wholefile };

/// One full paper-style workload: FSC builds the file system, USIM runs the
/// population, the analyzer digests the log.  Every registered experiment
/// goes through this so results stay comparable (formerly
/// bench/common/experiment.h).
struct WorkloadConfig {
  std::size_t num_users = 1;
  std::size_t sessions_per_user = 50;  ///< paper: "mean value during 50 login sessions"
  std::uint64_t seed = 1991;
  ModelKind model = ModelKind::nfs;
  core::Population population;
  core::UsimConfig usim;  ///< num_users/sessions/seed are overwritten from above
  std::function<void(fsmodel::FileSystemModel&)> tune_model;  ///< optional

  /// Open-system traffic (src/traffic/): when `traffic.arrivals` is set the
  /// run is open-loop (session starts follow the arrival process instead of
  /// think-time gaps) and `traffic.faults` perturbations are installed on
  /// the DES timeline.  Inert by default.
  traffic::TrafficConfig traffic;
};

/// Everything an experiment needs to build its figure/table series.
struct WorkloadOutput {
  double response_per_byte_us = 0.0;
  stats::RunningSummary access_size;
  stats::RunningSummary response_us;
  std::vector<core::SessionSummary> sessions;
  std::map<std::string, core::CategoryUsage> per_category;
  std::map<fsmodel::FsOpType, core::OpTypeStats> per_op;
  std::uint64_t total_ops = 0;
  double simulated_us = 0.0;
  std::string model_stats;
  core::UsageLog log;  ///< full log (for figure histograms)
};

/// Runs one workload to completion.
WorkloadOutput run_workload(const WorkloadConfig& config);

/// Configuration of a contended response sweep (the paper's Figures
/// 5.6–5.11): response time per byte for 1..max_users simultaneous users of
/// one population, each load point replicated `replications` times with
/// independent seeds and executed on runner::ContendedRunner's
/// (point x replication) worker pool.
struct ContendedSweepConfig {
  std::size_t max_users = 6;           ///< sweep points are 1..max_users
  std::size_t sessions_per_user = 50;  ///< paper: mean over 50 login sessions
  std::size_t replications = 1;
  std::size_t threads = 0;  ///< worker threads (0 = hardware concurrency)
  std::uint64_t seed = 1991;
  ModelKind model = ModelKind::nfs;
  core::Population population;  ///< empty = core::default_population()
  std::function<void(fsmodel::FileSystemModel&)> tune_model;  ///< optional
};

/// One sweep point's merged outcome.
struct ContendedSweepPoint {
  std::size_t users = 0;

  /// Response per byte pooled over the point's replications (total response
  /// over total bytes — the same estimator the single-run path reports).
  double response_per_byte_us = 0.0;

  /// Cross-replication mean/95% CI of the per-replication levels.
  stats::MeanCi ci;
};

/// Runs the contended sweep.  Deterministic: results are a pure function of
/// the config, independent of `threads` (the ContendedRunner merge
/// contract).
std::vector<ContendedSweepPoint> contended_response_sweep(const ContendedSweepConfig& config);

/// The paper's section-5.1 characterisation workload (600 login sessions at
/// full scale); Figures 5.3–5.5 are different projections of one run, so the
/// result is memoised per (sessions, seed) — safe under the parallel harness.
const WorkloadOutput& characterisation_run(std::size_t sessions, std::uint64_t seed);

}  // namespace wlgen::exp
