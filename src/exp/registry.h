#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/expectation.h"
#include "exp/result.h"

namespace wlgen::exp {

/// Session-count profile handed to every experiment.  `scale == 1` is the
/// paper profile; smaller values shrink every session count proportionally
/// (CI runs a reduced profile) and mark the run so the expectation checker
/// demotes absolute-level failures to warnings.
struct RunContext {
  std::uint64_t seed = 1991;  ///< base seed; experiments add their own offsets
  double scale = 1.0;         ///< session-count multiplier in (0, 1]

  /// Independent replications for contended (shared-machine) sweeps — the
  /// runner::ContendedRunner hook behind Figures 5.6–5.11.  Each replication
  /// reruns the whole sweep point under its own derived seed; the reported
  /// level pools them and carries a cross-replication mean/CI.
  std::size_t replications = 3;

  /// Worker threads a contended sweep may use for its (point x replication)
  /// jobs (0 = hardware concurrency).  The harness already parallelises
  /// across experiments, so this stays an explicit knob rather than a
  /// hard-wired fan-out.  Never affects results, only wall time.
  std::size_t contended_threads = 0;

  /// Scales a paper session count, never below 4 (per-session statistics
  /// need a handful of sessions to mean anything).
  std::size_t sessions(std::size_t paper_sessions) const;

  bool reduced() const { return scale < 1.0; }
};

/// One registered paper experiment: identity, the paper artefact it
/// reproduces, the declarative expectations, and the run function.
struct Experiment {
  std::string id;        ///< registry key, e.g. "fig5_6" (also `--only` target)
  std::string artifact;  ///< paper artefact name, e.g. "Figure 5.6"; empty = id
  std::string title;
  std::string paper_claim;  ///< the published curve shape, for reports
  std::vector<Expectation> expectations;
  std::function<ExperimentResult(const RunContext&)> run;

  /// Slugified artifact base name: "Figure 5.6" -> "figure_5_6".
  std::string artifact_slug() const;
};

/// Ordered collection of experiments.  The global instance is what
/// `wlgen experiments` runs; tests build private registries.
class Registry {
 public:
  /// Adds an experiment; throws std::invalid_argument on a duplicate id or a
  /// missing run function.
  void add(Experiment experiment);

  /// Lookup by id; nullptr when unknown.
  const Experiment* find(const std::string& id) const;

  /// All experiments in registration order.
  const std::vector<Experiment>& all() const { return experiments_; }

  std::size_t size() const { return experiments_.size(); }

  /// The process-wide registry the CLI uses.
  static Registry& global();

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace wlgen::exp
