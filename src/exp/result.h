#pragma once

#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "util/json.h"

namespace wlgen::exp {

/// One named curve of an experiment: the (x, y) points of a paper figure
/// series or a table column plotted against its row index.
struct ResultSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  std::string color;  ///< SVG hint; empty = harness palette
};

/// Structured outcome of one experiment run: ordered named series plus
/// ordered named scalars — everything the expectation checker grades and the
/// artifact writer serializes.  Insertion order is preserved end to end so
/// emitted JSON is byte-stable (the determinism test relies on it).
struct ExperimentResult {
  std::vector<ResultSeries> series;
  std::vector<std::pair<std::string, double>> scalars;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> notes;  ///< human commentary, carried into reports

  /// Appends (or overwrites) one series / scalar.
  ResultSeries& add_series(const std::string& name, std::vector<double> xs,
                           std::vector<double> ys);
  void set_scalar(const std::string& name, double value);

  /// Lookup; nullptr when absent.
  const ResultSeries* find_series(const std::string& name) const;
  const double* find_scalar(const std::string& name) const;

  /// JSON round-trip.  from_json throws std::runtime_error on malformed or
  /// schema-violating documents.
  util::JsonValue to_json() const;
  static ExperimentResult from_json(const util::JsonValue& doc);
};

/// Builds the Figures 5.3–5.5 style series pair from a histogram: counts at
/// bin centres "before", plus a moving-average-smoothed "after" (odd window).
void add_histogram_series(ExperimentResult& result, const stats::Histogram& histogram,
                          std::size_t smooth_window = 3);

}  // namespace wlgen::exp
