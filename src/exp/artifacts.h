#pragma once

#include <string>

namespace wlgen::exp {

/// Resolves the artifact output directory: `explicit_dir` when non-empty,
/// else $WLGEN_OUT, else "artifacts".
std::string artifact_dir(const std::string& explicit_dir = {});

/// Writes one artifact under `dir`, slugifying the file name
/// ("Figure 5.6.svg" -> "figure_5_6.svg") and creating the directory first
/// (std::filesystem::create_directories).  Returns the path written, or an
/// empty string on failure — and, unlike the old bench/common helper, a
/// failure is reported on stderr instead of being swallowed (a missing
/// artifacts/ directory used to silently drop every SVG).
std::string write_artifact(const std::string& dir, const std::string& name,
                           const std::string& content);

/// Same, but keeps the file name verbatim — for fixed-case artifacts like
/// EXPERIMENTS.md.
std::string write_artifact_verbatim(const std::string& dir, const std::string& name,
                                    const std::string& content);

}  // namespace wlgen::exp
