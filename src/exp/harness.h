#pragma once

#include <string>
#include <vector>

#include "exp/expectation.h"
#include "exp/registry.h"

namespace wlgen::exp {

/// Options for one harness run (the `wlgen experiments` flags).
struct HarnessOptions {
  std::vector<std::string> only;  ///< experiment ids to run; empty = all
  std::string out_dir;            ///< empty = $WLGEN_OUT or "artifacts"
  bool check = true;              ///< grade expectations (off = run + artifacts only)
  bool write_artifacts = true;    ///< emit JSON/SVG/EXPERIMENTS.md
  double scale = 1.0;             ///< session-count scale, (0, 1]
  std::uint64_t seed = 1991;
  std::size_t threads = 0;        ///< worker threads (0 = hardware concurrency)
  std::size_t replications = 3;   ///< contended-sweep replications per load point
  bool verbose = false;           ///< print every check, not just violations
  bool progress = false;          ///< live heartbeat on stderr (obs::ProgressReporter)
};

/// One experiment's graded outcome.
struct ExperimentReport {
  std::string id;
  std::string artifact;  ///< paper artefact display name
  std::string title;
  Verdict verdict = Verdict::pass;
  std::vector<CheckOutcome> checks;
  ExperimentResult result;
  std::string json_path;  ///< empty when artifact writing failed or was off
  std::string svg_path;
  std::string error;  ///< non-empty = the run threw; verdict is fail
  double wall_ms = 0.0;
};

/// Whole-run summary.
struct HarnessSummary {
  std::vector<ExperimentReport> reports;  ///< registration order
  std::size_t passed = 0, warned = 0, failed = 0;
  std::string out_dir;
  std::string experiments_md_path;  ///< empty when not written

  bool any_fail() const { return failed > 0; }
};

/// Runs the selected experiments on a worker pool (runner::drain_pool; the
/// same pool that drains ShardedRunner shards), grades each result against
/// its expectations, writes per-experiment JSON + SVG artifacts plus an
/// EXPERIMENTS.md summary into the output directory, and prints a verdict
/// table.  Deterministic: reports come back in registration order and every
/// experiment is seeded from options.seed regardless of scheduling.
///
/// Throws std::invalid_argument when an `only` id is unknown.
HarnessSummary run_experiments(const Registry& registry, const HarnessOptions& options);

/// Renders the EXPERIMENTS.md summary document for a finished run.
std::string render_experiments_md(const HarnessSummary& summary, const HarnessOptions& options);

}  // namespace wlgen::exp
