#include "exp/harness.h"

#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/artifacts.h"
#include "obs/progress.h"
#include "runner/pool.h"
#include "util/svg.h"
#include "util/table.h"

namespace wlgen::exp {

namespace {

/// Default series palette (matplotlib tab colors, as the old benches used).
const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"};

std::string render_svg(const Experiment& experiment, const ExperimentResult& result) {
  std::vector<util::SvgSeries> series;
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const ResultSeries& s = result.series[i];
    util::SvgSeries one;
    one.xs = s.xs;
    one.ys = s.ys;
    one.label = s.name;
    one.color = !s.color.empty() ? s.color : kPalette[i % (sizeof kPalette / sizeof *kPalette)];
    series.push_back(std::move(one));
  }
  util::SvgOptions options;
  options.title = experiment.artifact.empty()
                      ? experiment.title
                      : experiment.artifact + ": " + experiment.title;
  options.x_label = result.x_label;
  options.y_label = result.y_label;
  return util::svg_plot(series, options);
}

util::JsonValue report_json(const ExperimentReport& report, const HarnessOptions& options) {
  using util::JsonValue;
  JsonValue doc = JsonValue::make_object();
  doc.set("id", report.id);
  doc.set("artifact", report.artifact);
  doc.set("title", report.title);
  doc.set("seed", static_cast<double>(options.seed));
  doc.set("scale", options.scale);
  if (options.check) doc.set("verdict", to_string(report.verdict));
  if (!report.error.empty()) doc.set("error", report.error);
  JsonValue checks = JsonValue::make_array();
  for (const auto& c : report.checks) {
    JsonValue one = JsonValue::make_object();
    one.set("verdict", to_string(c.verdict));
    one.set("check", c.description);
    checks.push_back(std::move(one));
  }
  doc.set("checks", std::move(checks));
  doc.set("result", report.result.to_json());
  return doc;
}

/// {verdict, checks} display cells, shared by the stdout table and
/// EXPERIMENTS.md: "-" when nothing was graded, "run failed" on a throw.
std::pair<std::string, std::string> verdict_cells(const ExperimentReport& report, bool check);

std::string check_counts(const ExperimentReport& report) {
  std::size_t pass = 0, warn = 0, fail = 0;
  for (const auto& c : report.checks) {
    if (c.verdict == Verdict::pass) ++pass;
    else if (c.verdict == Verdict::warn) ++warn;
    else ++fail;
  }
  std::ostringstream out;
  out << pass << " pass";
  if (warn > 0) out << ", " << warn << " warn";
  if (fail > 0) out << ", " << fail << " fail";
  return out.str();
}

std::pair<std::string, std::string> verdict_cells(const ExperimentReport& report, bool check) {
  if (!report.error.empty()) return {to_string(Verdict::fail), "run failed"};
  if (check) return {to_string(report.verdict), check_counts(report)};
  return {"-", "-"};
}

}  // namespace

HarnessSummary run_experiments(const Registry& registry, const HarnessOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0) {
    throw std::invalid_argument("run_experiments: --scale must be in (0, 1]");
  }

  std::vector<const Experiment*> selected;
  if (options.only.empty()) {
    for (const auto& e : registry.all()) selected.push_back(&e);
  } else {
    for (const auto& id : options.only) {
      const Experiment* e = registry.find(id);
      if (e == nullptr) {
        throw std::invalid_argument("unknown experiment id '" + id +
                                    "' (see `wlgen experiments --list`)");
      }
      selected.push_back(e);
    }
  }

  HarnessSummary summary;
  summary.out_dir = artifact_dir(options.out_dir);
  summary.reports.resize(selected.size());

  if (options.replications == 0) {
    throw std::invalid_argument("run_experiments: --replications must be >= 1");
  }

  RunContext context;
  context.seed = options.seed;
  context.scale = options.scale;
  context.replications = options.replications;
  // The harness pool already spreads experiments over the cores, so when
  // several experiments run, each contended sweep stays single-threaded —
  // nesting pools would multiply the thread count, not the budget.  A
  // single selected experiment (--only fig5_6) has no outer parallelism, so
  // the sweep gets the whole requested budget.  Results are thread-count
  // invariant either way.
  context.contended_threads = selected.size() > 1 ? 1 : options.threads;

  std::unique_ptr<obs::ProgressReporter> progress;
  if (options.progress) {
    obs::ProgressReporter::Options popt;
    popt.label = "experiments";
    popt.unit = "experiments";
    popt.total_units = selected.size();
    progress = std::make_unique<obs::ProgressReporter>(std::move(popt));
  }

  // Independent experiments drain over the shared worker pool; each report
  // lands in its own slot, so the summary order is registration order no
  // matter which thread ran what.
  runner::drain_pool(selected.size(), options.threads, [&]() -> runner::PoolJob {
    return [&](std::size_t index, const std::atomic<bool>&) {
      const Experiment& experiment = *selected[index];
      ExperimentReport& report = summary.reports[index];
      report.id = experiment.id;
      report.artifact = experiment.artifact.empty() ? experiment.id : experiment.artifact;
      report.title = experiment.title;
      const auto start = std::chrono::steady_clock::now();  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
      try {
        report.result = experiment.run(context);
        report.verdict = options.check
                             ? grade(experiment.expectations, report.result, context.scale,
                                     &report.checks)
                             : Verdict::pass;
      } catch (const std::exception& e) {
        report.error = e.what();
        report.verdict = Verdict::fail;
      }
      report.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)  // wlgen-lint: allow(wall-clock): reported wall_ms only; never enters the sim
                           .count();
      if (progress) progress->advance(1, 0, 0.0);
    };
  });
  if (progress) progress->stop();

  for (std::size_t i = 0; i < summary.reports.size(); ++i) {
    ExperimentReport& report = summary.reports[i];
    if (options.write_artifacts && report.error.empty()) {
      const std::string slug = selected[i]->artifact_slug();
      report.json_path = write_artifact(summary.out_dir, slug + ".json",
                                        report_json(report, options).dump());
      if (!report.result.series.empty()) {
        report.svg_path = write_artifact(summary.out_dir, slug + ".svg",
                                         render_svg(*selected[i], report.result));
      }
    }
    if (report.verdict == Verdict::pass) ++summary.passed;
    else if (report.verdict == Verdict::warn) ++summary.warned;
    else ++summary.failed;
  }

  if (options.write_artifacts) {
    summary.experiments_md_path = write_artifact_verbatim(
        summary.out_dir, "EXPERIMENTS.md", render_experiments_md(summary, options));
  }

  // Verdict table, registration order.  Without --check there is nothing to
  // grade, so the verdict/check columns show "-" instead of a hollow PASS.
  util::TextTable table({"experiment", "paper artefact", "verdict", "checks", "wall ms"});
  for (const auto& report : summary.reports) {
    const auto [verdict, checks] = verdict_cells(report, options.check);
    table.add_row(
        {report.id, report.artifact, verdict, checks, util::TextTable::num(report.wall_ms, 0)});
  }
  std::cout << table.render() << "\n";

  for (const auto& report : summary.reports) {
    if (!report.error.empty()) {
      std::cout << report.id << " FAIL: " << report.error << "\n";
      continue;
    }
    for (const auto& check : report.checks) {
      if (options.verbose || check.verdict != Verdict::pass) {
        std::cout << report.id << " " << to_string(check.verdict) << ": " << check.description
                  << "\n";
      }
    }
  }

  std::cout << "\n" << summary.reports.size() << " experiments";
  if (options.check) {
    std::cout << ": " << summary.passed << " pass, " << summary.warned << " warn, "
              << summary.failed << " fail";
  } else {
    std::cout << " run (expectations not graded; pass --check)";
  }
  if (!summary.experiments_md_path.empty()) {
    std::cout << "  (artifacts in " << summary.out_dir << ", summary "
              << summary.experiments_md_path << ")";
  }
  std::cout << "\n";
  return summary;
}

std::string render_experiments_md(const HarnessSummary& summary,
                                  const HarnessOptions& options) {
  std::ostringstream out;
  out << "# EXPERIMENTS — paper-expectation run\n\n";
  out << "Generated by `wlgen experiments" << (options.check ? " --check" : "");
  if (options.scale != 1.0) out << " --scale " << options.scale;
  if (options.seed != 1991) out << " --seed " << options.seed;
  if (options.replications != 3) out << " --replications " << options.replications;
  out << "`: every registered figure/table experiment of Kao & Iyer (ICDCS '92), graded\n"
         "against the paper's described curve shapes (PASS / WARN / FAIL).  WARN means\n"
         "the shape holds but an absolute level differs from the 1992 testbed's; FAIL\n"
         "means a shape invariant or sanity band was violated.\n\n";
  out << "| experiment | paper artefact | title | verdict | checks | artifacts |\n";
  out << "|---|---|---|---|---|---|\n";
  for (const auto& report : summary.reports) {
    const auto [verdict, checks] = verdict_cells(report, options.check);
    out << "| " << report.id << " | " << report.artifact << " | " << report.title << " | "
        << verdict << " | " << checks << " | ";
    const std::string json_name =
        report.json_path.empty() ? "" : report.json_path.substr(report.json_path.rfind('/') + 1);
    const std::string svg_name =
        report.svg_path.empty() ? "" : report.svg_path.substr(report.svg_path.rfind('/') + 1);
    if (!json_name.empty()) out << "[json](" << json_name << ")";
    if (!svg_name.empty()) out << " [svg](" << svg_name << ")";
    out << " |\n";
  }
  if (options.check) {
    out << "\n**Totals:** " << summary.passed << " pass, " << summary.warned << " warn, "
        << summary.failed << " fail over " << summary.reports.size() << " experiments.\n";
  } else {
    out << "\n**Totals:** " << summary.reports.size()
        << " experiments run; expectations not graded (pass `--check`).\n";
  }

  for (const auto& report : summary.reports) {
    out << "\n## " << report.id << " — " << report.title << "\n\n";
    if (!report.error.empty()) {
      out << "**FAIL:** run threw: " << report.error << "\n";
      continue;
    }
    for (const auto& check : report.checks) {
      out << "- **" << to_string(check.verdict) << "** " << check.description << "\n";
    }
    if (!report.result.scalars.empty()) {
      out << "\n| scalar | value |\n|---|---|\n";
      for (const auto& [k, v] : report.result.scalars) {
        out << "| " << k << " | " << util::TextTable::num(v, 4) << " |\n";
      }
    }
    for (const auto& note : report.result.notes) out << "\n" << note << "\n";
  }
  return out.str();
}

}  // namespace wlgen::exp
