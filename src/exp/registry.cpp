#include "exp/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace wlgen::exp {

std::size_t RunContext::sessions(std::size_t paper_sessions) const {
  const double scaled = std::round(static_cast<double>(paper_sessions) * scale);
  return std::max<std::size_t>(4, static_cast<std::size_t>(std::max(0.0, scaled)));
}

std::string Experiment::artifact_slug() const {
  return util::slugify(artifact.empty() ? id : artifact);
}

void Registry::add(Experiment experiment) {
  if (experiment.id.empty()) throw std::invalid_argument("Registry::add: empty id");
  if (!experiment.run) {
    throw std::invalid_argument("Registry::add: experiment '" + experiment.id +
                                "' has no run function");
  }
  if (find(experiment.id) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate experiment id '" + experiment.id +
                                "'");
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(const std::string& id) const {
  for (const auto& e : experiments_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace wlgen::exp
