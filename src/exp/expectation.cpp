#include "exp/expectation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wlgen::exp {

namespace {

std::string num(double v) {
  std::ostringstream out;
  out.precision(4);
  out << v;
  return out.str();
}

const char* kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::monotonic_up: return "monotonic-up";
    case CheckKind::monotonic_down: return "monotonic-down";
    case CheckKind::approx_linear: return "approx-linear";
    case CheckKind::final_in_range: return "final-in-range";
    case CheckKind::scalar_in_range: return "scalar-in-range";
  }
  return "?";
}

CheckOutcome missing_target(const Expectation& e, const char* what) {
  return {Verdict::fail, std::string(kind_name(e.kind)) + " '" + e.target + "': " + what +
                             " not produced by the experiment"};
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::pass: return "PASS";
    case Verdict::warn: return "WARN";
    case Verdict::fail: return "FAIL";
  }
  return "?";
}

Verdict worst(Verdict a, Verdict b) { return static_cast<int>(a) >= static_cast<int>(b) ? a : b; }

Expectation expect_monotonic_up(std::string series, double tol, Verdict on_violation,
                                std::string note) {
  return {CheckKind::monotonic_up, std::move(series), 0, 0, tol, on_violation, std::move(note)};
}

Expectation expect_monotonic_down(std::string series, double tol, Verdict on_violation,
                                  std::string note) {
  return {CheckKind::monotonic_down, std::move(series), 0, 0, tol, on_violation,
          std::move(note)};
}

Expectation expect_approx_linear(std::string series, double tol, Verdict on_violation,
                                 std::string note) {
  return {CheckKind::approx_linear, std::move(series), 0, 0, tol, on_violation,
          std::move(note)};
}

Expectation expect_final_in_range(std::string series, double lo, double hi,
                                  Verdict on_violation, std::string note) {
  return {CheckKind::final_in_range, std::move(series), lo, hi, 0, on_violation,
          std::move(note)};
}

Expectation expect_scalar_in_range(std::string scalar, double lo, double hi,
                                   Verdict on_violation, std::string note) {
  return {CheckKind::scalar_in_range, std::move(scalar), lo, hi, 0, on_violation,
          std::move(note)};
}

CheckOutcome check_expectation(const Expectation& e, const ExperimentResult& result,
                               double scale) {
  const bool reduced_profile = scale < 1.0;
  const bool is_range_check =
      e.kind == CheckKind::final_in_range || e.kind == CheckKind::scalar_in_range;
  Verdict on_violation = e.on_violation;
  if (reduced_profile && is_range_check && on_violation == Verdict::fail) {
    on_violation = Verdict::warn;
  }
  // Session means get noisier as 1/sqrt(sessions): widen shape tolerances
  // accordingly so a reduced profile grades the same underlying shape.
  const double tol = reduced_profile && scale > 0.0 ? e.tol / std::sqrt(scale) : e.tol;

  bool violated = false;
  std::string detail;

  switch (e.kind) {
    case CheckKind::monotonic_up:
    case CheckKind::monotonic_down: {
      const ResultSeries* s = result.find_series(e.target);
      if (s == nullptr) return missing_target(e, "series");
      if (s->ys.size() < 2) return missing_target(e, "a >= 2 point series");
      const auto [lo_it, hi_it] = std::minmax_element(s->ys.begin(), s->ys.end());
      const double slack = tol * (*hi_it - *lo_it);
      double worst_step = 0.0;
      for (std::size_t i = 1; i < s->ys.size(); ++i) {
        const double step = s->ys[i] - s->ys[i - 1];
        const double against = e.kind == CheckKind::monotonic_up ? -step : step;
        worst_step = std::max(worst_step, against);
      }
      violated = worst_step > slack;
      detail = "worst counter-step " + num(worst_step) + " vs slack " + num(slack);
      break;
    }
    case CheckKind::approx_linear: {
      const ResultSeries* s = result.find_series(e.target);
      if (s == nullptr) return missing_target(e, "series");
      if (s->ys.size() < 3) return missing_target(e, "a >= 3 point series");
      const double x0 = s->xs.front(), x1 = s->xs.back();
      const double y0 = s->ys.front(), y1 = s->ys.back();
      const double y_scale = std::max(std::fabs(y1), 1e-12);
      double max_dev = 0.0;
      for (std::size_t i = 0; i < s->ys.size(); ++i) {
        const double t = x1 != x0 ? (s->xs[i] - x0) / (x1 - x0) : 0.0;
        max_dev = std::max(max_dev, std::fabs(s->ys[i] - (y0 + t * (y1 - y0))));
      }
      violated = max_dev / y_scale > tol;
      detail = "max deviation from the endpoint chord " + num(100.0 * max_dev / y_scale) +
               "% vs " + num(100.0 * tol) + "% allowed";
      break;
    }
    case CheckKind::final_in_range: {
      const ResultSeries* s = result.find_series(e.target);
      if (s == nullptr) return missing_target(e, "series");
      if (s->ys.empty()) return missing_target(e, "a non-empty series");
      const double v = s->ys.back();
      violated = v < e.lo || v > e.hi;
      detail = "final value " + num(v) + " vs [" + num(e.lo) + ", " + num(e.hi) + "]";
      break;
    }
    case CheckKind::scalar_in_range: {
      const double* v = result.find_scalar(e.target);
      if (v == nullptr) return missing_target(e, "scalar");
      violated = *v < e.lo || *v > e.hi;
      detail = "value " + num(*v) + " vs [" + num(e.lo) + ", " + num(e.hi) + "]";
      break;
    }
  }

  CheckOutcome out;
  out.verdict = violated ? on_violation : Verdict::pass;
  out.description = std::string(kind_name(e.kind)) + " '" + e.target + "': " + detail;
  if (violated && reduced_profile && is_range_check && e.on_violation == Verdict::fail) {
    out.description += " (fail demoted to warn: reduced session profile)";
  }
  if (!e.note.empty()) out.description += " — " + e.note;
  return out;
}

Verdict grade(const std::vector<Expectation>& expectations, const ExperimentResult& result,
              double scale, std::vector<CheckOutcome>* outcomes) {
  Verdict verdict = Verdict::pass;
  for (const auto& e : expectations) {
    const CheckOutcome outcome = check_expectation(e, result, scale);
    verdict = worst(verdict, outcome.verdict);
    if (outcomes != nullptr) outcomes->push_back(outcome);
  }
  return verdict;
}

}  // namespace wlgen::exp
