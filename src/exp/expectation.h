#pragma once

#include <string>
#include <vector>

#include "exp/result.h"

namespace wlgen::exp {

/// Verdict ladder; an experiment's verdict is the worst of its checks.
enum class Verdict { pass, warn, fail };

const char* to_string(Verdict v);
Verdict worst(Verdict a, Verdict b);

/// What a single expectation asserts about an ExperimentResult.
enum class CheckKind {
  monotonic_up,     ///< series never steps down by more than tol x range
  monotonic_down,   ///< series never steps up by more than tol x range
  approx_linear,    ///< max deviation from the endpoint chord <= tol x |last|
  final_in_range,   ///< last series value in [lo, hi]
  scalar_in_range,  ///< named scalar in [lo, hi]
};

/// One declarative check against the paper's described curve shape, e.g.
/// "climbs to ~10-15 us/byte at 6 users" becomes
///   {final_in_range, "response", 10, 15, 0, Verdict::warn, "paper: ..."}.
///
/// `on_violation` is the verdict when the check fails: use Verdict::warn for
/// the paper's quantitative levels (a reproduction tracks shapes more
/// faithfully than absolute 1992 hardware numbers) and Verdict::fail for
/// shape invariants and sanity bands that must hold.
struct Expectation {
  CheckKind kind = CheckKind::scalar_in_range;
  std::string target;  ///< series name (shape/final checks) or scalar name
  double lo = 0.0;     ///< range checks
  double hi = 0.0;
  double tol = 0.0;    ///< monotonic: allowed counter-step as fraction of the
                       ///< series range; approx_linear: max relative deviation
  Verdict on_violation = Verdict::fail;
  std::string note;    ///< the paper claim being encoded, quoted in reports
};

/// Convenience constructors — the registration DSL the bench files use.
Expectation expect_monotonic_up(std::string series, double tol, Verdict on_violation,
                                std::string note);
Expectation expect_monotonic_down(std::string series, double tol, Verdict on_violation,
                                  std::string note);
Expectation expect_approx_linear(std::string series, double tol, Verdict on_violation,
                                 std::string note);
Expectation expect_final_in_range(std::string series, double lo, double hi,
                                  Verdict on_violation, std::string note);
Expectation expect_scalar_in_range(std::string scalar, double lo, double hi,
                                   Verdict on_violation, std::string note);

/// Outcome of checking one expectation.
struct CheckOutcome {
  Verdict verdict = Verdict::pass;
  std::string description;  ///< what was checked, with measured numbers
};

/// Grades one expectation against a result.  A missing target is always a
/// fail (the experiment did not produce what it promised).  `scale` is the
/// run's session-count scale; when it is below 1 (a reduced profile, e.g.
/// CI), two adjustments keep the checks meaningful:
///   - violated *range* checks are demoted from fail to warn — absolute
///     levels drift with session count;
///   - shape tolerances (monotonic/linear `tol`) are widened by 1/sqrt(scale)
///     — the standard error of an n-session mean grows as 1/sqrt(n) — but
///     the checks themselves stay hard.
CheckOutcome check_expectation(const Expectation& e, const ExperimentResult& result,
                               double scale = 1.0);

/// Worst verdict over all expectations (pass when the list is empty).
Verdict grade(const std::vector<Expectation>& expectations, const ExperimentResult& result,
              double scale = 1.0, std::vector<CheckOutcome>* outcomes = nullptr);

}  // namespace wlgen::exp
